"""Proposition 1: filters on all non-sink merge nodes remove all redundancy.

``minimal_perfect_filter_set`` must achieve ``FR = 1`` (equivalently
``F(A) = F(V)``) on every graph, and the pruned variant must stay perfect
while never being larger.
"""

from __future__ import annotations

import pytest

from conftest import random_dag
from repro.core.objective import (
    filter_ratio,
    max_objective,
    minimal_perfect_filter_set,
    objective_value,
)
from repro.datasets.citation import citation_like_graph
from repro.datasets.synthetic import sparse_synthetic
from repro.datasets.toy import (
    fig1_graph,
    fig2_like_graph,
    fig3_like_graph,
    fig10_sketch_graph,
)

GRAPHS = {
    "fig1": fig1_graph,
    "fig2": fig2_like_graph,
    "fig3": fig3_like_graph,
    "fig10": fig10_sketch_graph,
    "synthetic": lambda: sparse_synthetic(seed=1, scale=0.08),
    "citation": lambda: citation_like_graph(seed=1, scale=0.01),
    "random": lambda: random_dag(3),
}


@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_merge_node_set_is_perfect(name):
    graph = GRAPHS[name]()
    perfect = minimal_perfect_filter_set(graph)
    assert objective_value(graph, perfect) == max_objective(graph)
    assert filter_ratio(graph, perfect) == 1.0


@pytest.mark.parametrize("name", ["fig1", "fig10", "random"])
def test_pruned_set_stays_perfect_and_no_larger(name):
    graph = GRAPHS[name]()
    full = minimal_perfect_filter_set(graph)
    pruned = minimal_perfect_filter_set(graph, prune=True)
    assert pruned <= full
    assert filter_ratio(graph, pruned) == 1.0


def test_fig1_unique_useful_filter(fig1):
    # The worked Section 2 example: z2 is the only merge node, and the
    # perfect set is exactly {z2}.
    assert minimal_perfect_filter_set(fig1) == frozenset({"z2"})
