"""Process-parallel world sampling: determinism, failure, and gating.

The contract of :mod:`repro.propagation.parallel`: sharding a sampled
evaluation over a process pool is an *implementation detail* — results,
placements and SAA estimates are bit-identical to the serial loop for
every worker count and for either shard submit/reduce order (integer
shard sums are associative and commutative, so order genuinely cannot
matter; these tests hold the code to it).

Also pinned here:

* a crash inside a worker surfaces as a clean
  :class:`~repro.propagation.parallel.WorldShardError` in the caller —
  never a hang — and the pool recovers for subsequent calls;
* evaluations below the world-count threshold, or already scoped to an
  explicit ``trial_range`` (i.e. running *inside* a worker), never
  touch the pool at all.
"""

from __future__ import annotations

import pytest

from strategies import DagCase
from repro.core.registry import get_algorithm
from repro.propagation import parallel
from repro.propagation.model import PropagationModel
from repro.propagation.sampling import (
    sampled_marginal_gains_ids_exact,
    sampled_simplified_impacts_ids_exact,
    sampled_total_receipts_exact,
)

WORKER_COUNTS = (1, 2, 4)

CASE = DagCase(
    name="parallel", seed=424242, n=28, density=0.3, sources=3
)


@pytest.fixture(scope="module")
def graph():
    return CASE.build()


@pytest.fixture(scope="module")
def model():
    return PropagationModel(
        mechanism="live-edge",
        probabilities=CASE.edge_probabilities(),
        trials=16,
        seed=7,
    )


def serial_results(graph, model, filter_ids):
    # Worker count 1 never passes should_shard, so these are the plain
    # in-process loops.
    return (
        list(
            sampled_marginal_gains_ids_exact(
                graph, filter_ids, model=model
            )
        ),
        list(
            sampled_simplified_impacts_ids_exact(
                graph, filter_ids, model=model
            )
        ),
        sampled_total_receipts_exact(
            graph,
            graph.compiled().to_nodes(filter_ids),
            model=model,
        ),
    )


@pytest.mark.parametrize("workers", (2, 4))
@pytest.mark.parametrize("order", ("forward", "reverse"))
def test_sharded_evaluations_bit_identical_to_serial(
    graph, model, workers, order
):
    filter_ids = graph.compiled().to_ids(CASE.filter_pool(2))
    gains, impacts, total = serial_results(graph, model, filter_ids)
    assert (
        list(
            parallel.evaluate_sharded(
                "marginal_gains",
                graph,
                filter_ids,
                model,
                "bitpack",
                workers=workers,
                order=order,
            )
        )
        == gains
    )
    assert (
        list(
            parallel.evaluate_sharded(
                "simplified_impacts",
                graph,
                filter_ids,
                model,
                "bitpack",
                workers=workers,
                order=order,
            )
        )
        == impacts
    )
    assert (
        parallel.evaluate_sharded(
            "total_receipts",
            graph,
            filter_ids,
            model,
            "bitpack",
            workers=workers,
            order=order,
        )
        == total
    )


def test_placements_and_saa_estimates_identical_across_worker_counts(
    graph, model
):
    from repro.backends.registry import get_backend

    backend = get_backend("python")
    outcomes = []
    for workers in WORKER_COUNTS:
        with parallel.use_world_workers(workers):
            instance = get_algorithm(
                "G_All", backend=backend, model=model
            )
            result = instance.place(graph, 3)
            objective = backend.sampled_total_receipts(
                graph, (), model=model
            ) - backend.sampled_total_receipts(
                graph, result.filters, model=model
            )
            estimate = backend.expected_total_receipts(
                graph, result.filters, model=model
            )
        outcomes.append((result.filters, objective, estimate))
    assert outcomes[0] == outcomes[1] == outcomes[2], (
        "placements or SAA estimates drifted across worker counts: "
        f"{outcomes}"
    )


def test_worker_crash_surfaces_cleanly_and_pool_recovers(graph, model):
    filter_ids: list = []
    with pytest.raises(parallel.WorldShardError):
        parallel.evaluate_sharded(
            "__crash__", graph, filter_ids, model, "bitpack", workers=2
        )
    # The pool is not poisoned: the very next dispatch succeeds and
    # still matches the serial loop.
    expected = sampled_total_receipts_exact(graph, (), model=model)
    assert (
        parallel.evaluate_sharded(
            "total_receipts", graph, filter_ids, model, "bitpack", workers=2
        )
        == expected
    )


def test_pool_skipped_below_world_threshold(graph):
    small = PropagationModel(
        mechanism="live-edge",
        probabilities=CASE.edge_probabilities(),
        trials=parallel.MIN_WORLDS_FOR_POOL - 1,
        seed=7,
    )
    before = parallel.pool_dispatches()
    with parallel.use_world_workers(4):
        sampled_marginal_gains_ids_exact(graph, [], model=small)
    assert parallel.pool_dispatches() == before, (
        "an evaluation below MIN_WORLDS_FOR_POOL went to the pool"
    )


def test_pool_skipped_for_explicit_trial_ranges(graph, model):
    # An explicit trial_range means the caller *is* a shard; dispatching
    # again would fork pools from worker processes.
    before = parallel.pool_dispatches()
    with parallel.use_world_workers(4):
        partial = sampled_marginal_gains_ids_exact(
            graph, [], model=model, trial_range=(0, 4)
        )
    assert parallel.pool_dispatches() == before
    assert any(partial) or True  # result shape exercised; no dispatch


def test_should_shard_gating():
    assert not parallel.should_shard(100, (0, 10))
    with parallel.use_world_workers(1):
        assert not parallel.should_shard(100, None)
    with parallel.use_world_workers(2):
        assert parallel.should_shard(parallel.MIN_WORLDS_FOR_POOL, None)
        assert not parallel.should_shard(
            parallel.MIN_WORLDS_FOR_POOL - 1, None
        )


def test_shard_ranges_partition_exactly():
    for trials in (1, 7, 8, 16, 33):
        for workers in (1, 2, 4, 7):
            ranges = parallel.shard_ranges(trials, workers)
            assert ranges[0][0] == 0 and ranges[-1][1] == trials
            assert all(lo < hi for lo, hi in ranges)
            assert all(
                prev[1] == nxt[0]
                for prev, nxt in zip(ranges, ranges[1:])
            )
