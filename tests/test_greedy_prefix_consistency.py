"""Greedy prefix-consistency.

Every algorithm that advertises ``prefix_consistent = True`` must return,
for budget ``k``, a sequence whose first ``j`` picks equal its budget-``j``
result — the property the FR sweep machinery relies on to draw a whole
curve from a single run.  Checked for the greedy family on toy and
synthetic graphs, plus the ``PlacementResult.prefix`` accessor itself.
"""

from __future__ import annotations

import pytest

from conftest import random_dag
from repro.core.registry import get_algorithm
from repro.datasets.synthetic import sparse_synthetic
from repro.datasets.toy import fig3_like_graph, fig10_sketch_graph

ALGORITHMS = ("G_All", "G_All_lazy", "G_Max", "G_1", "G_L")

GRAPHS = {
    "fig3": fig3_like_graph,
    "fig10": fig10_sketch_graph,
    "synthetic": lambda: sparse_synthetic(seed=2, scale=0.08),
    "random": lambda: random_dag(7),
}


@pytest.mark.parametrize("name", sorted(GRAPHS))
@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
def test_prefixes_match_smaller_budgets(name, algorithm_name):
    graph = GRAPHS[name]()
    algorithm = get_algorithm(algorithm_name)
    assert algorithm.prefix_consistent
    k = 6
    full = algorithm.place(graph, k)
    for j in range(k + 1):
        smaller = get_algorithm(algorithm_name).place(graph, j)
        assert smaller.filters == full.filters[: len(smaller.filters)], (
            f"{algorithm_name} budget {j} diverges from prefix"
        )
        assert full.prefix(len(smaller.filters)) == smaller.filter_set()


def test_lazy_matches_eager_selections():
    graph = fig10_sketch_graph()
    eager = get_algorithm("G_All").place(graph, 8)
    lazy = get_algorithm("G_All_lazy").place(graph, 8)
    assert eager.filters == lazy.filters
    assert [s.gain for s in eager.steps] == [s.gain for s in lazy.steps]
