"""The probabilistic relaying layer: model axis, SAA engine, estimation.

Covers the Section 3 extension end to end:

* ``p ≡ 1`` reduces *exactly* to the deterministic engine — on every
  built-in dataset the summed sampled gains are ``trials ×`` the exact
  deterministic gains, and the model axis normalizes unit probabilities
  onto the deterministic fast path (bit-identical placements).
* The exact linear-expectation formula matches Monte-Carlo means within
  confidence bounds, for both mechanisms, and the two mechanisms agree
  in expectation without filters.
* Seeded runs are byte-reproducible, worlds are shared (common random
  numbers), and both backends produce identical SAA integers.
* CELF-under-SAA selects the same filters as eager SAA greedy on both
  backends — the lazy upper-bound argument under sample averaging.
* The :class:`~repro.exceptions.MissingEdgeError` bugfix: an unknown
  *edge* in a probability mapping is reported as a missing edge, not a
  missing node.

The module runs without NumPy: backend-dependent cases iterate
``available_backends()``, everything else exercises the pure-Python
sampling layer directly (the no-numpy CI job runs this file explicitly).
"""

from __future__ import annotations

import math

import pytest

from conftest import random_dag
from repro.backends.registry import available_backends, get_backend
from repro.core.registry import get_algorithm
from repro.datasets.registry import DATASET_NAMES, get_dataset
from repro.exceptions import MissingEdgeError, ParameterError
from repro.propagation.model import (
    PropagationModel,
    build_model,
    use_model,
)
from repro.propagation.probabilistic import (
    ProbabilisticModel,
    estimate_total_receipts,
    expected_receipts_without_filters,
)
from repro.propagation.sampling import get_worlds

#: Every built-in dataset, scaled test-size (matches the compiled
#: equivalence suite's convention).
DATASET_SPECS: dict[str, dict] = {
    "synthetic-sparse": {"seed": 0, "scale": 0.25},
    "synthetic-dense": {"seed": 0, "scale": 0.2},
    "quote": {"seed": 0, "scale": 0.3},
    "twitter": {"seed": 0, "scale": 0.02},
    "citation": {"seed": 0, "scale": 0.1},
    "scale-dag": {"seed": 0, "scale": 0.001},
    "fig1": {},
    "fig2": {},
    "fig3": {},
    "fig10": {},
}

_graphs: dict[str, object] = {}


def dataset_graph(name: str):
    if name not in _graphs:
        _graphs[name] = get_dataset(name, **DATASET_SPECS[name])
    return _graphs[name]


def test_every_builtin_dataset_is_covered():
    assert set(DATASET_SPECS) == set(DATASET_NAMES)


# ----------------------------------------------------------------------
# Satellite bugfix: missing edges are missing *edges*
# ----------------------------------------------------------------------


def test_unknown_edge_raises_missing_edge_error(fig1):
    with pytest.raises(MissingEdgeError) as exc:
        ProbabilisticModel(fig1, {("s", "nope"): 0.5})
    assert "edge" in str(exc.value)
    assert "'s'" in str(exc.value) and "'nope'" in str(exc.value)
    assert exc.value.edge == ("s", "nope")


def test_unknown_edge_raises_on_compiled_path(fig1):
    with pytest.raises(MissingEdgeError):
        fig1.compiled().edge_probabilities({("x", "s"): 0.5})  # reversed


def test_out_of_range_probability_rejected(fig1):
    with pytest.raises(ParameterError):
        ProbabilisticModel(fig1, 1.5)
    with pytest.raises(ParameterError):
        ProbabilisticModel(fig1, {("s", "x"): -0.1})
    with pytest.raises(ParameterError):
        PropagationModel("live-edge", probabilities=2.0)


def test_model_axis_validation():
    with pytest.raises(ParameterError):
        PropagationModel("osmosis")
    with pytest.raises(ParameterError):
        PropagationModel("live-edge", trials=0)
    with pytest.raises(ParameterError):
        build_model("nonsense")
    with pytest.raises(ParameterError):
        use_model("live-edge").__enter__()  # names need build_model


# ----------------------------------------------------------------------
# p ≡ 1 reduces exactly to the deterministic engine
# ----------------------------------------------------------------------


def test_unit_probabilities_resolve_to_deterministic_fast_path():
    assert build_model("deterministic") is None
    assert build_model("live-edge", edge_prob=1.0) is None
    assert build_model("per-copy", edge_prob=1.0) is None
    assert build_model("live-edge", edge_prob=0.5) is not None


@pytest.mark.parametrize("dataset", sorted(DATASET_SPECS))
@pytest.mark.parametrize("backend", available_backends())
def test_unit_model_gains_are_trials_times_deterministic(dataset, backend):
    """With every edge live, each sampled world *is* the full graph."""
    graph = dataset_graph(dataset)
    impl = get_backend(backend)
    # Constructed directly (build_model would normalize it away): the
    # sampler must still handle the degenerate all-live spec exactly.
    model = PropagationModel("live-edge", probabilities=1.0, trials=7)
    exact = impl.marginal_gains_ids(graph, ())
    sampled = impl.sampled_marginal_gains_ids(graph, (), model=model)
    assert list(sampled) == [7 * g for g in exact]
    exact_simple = impl.simplified_impacts_ids(graph, ())
    sampled_simple = impl.sampled_simplified_impacts_ids(
        graph, (), model=model
    )
    assert list(sampled_simple) == [7 * s for s in exact_simple]
    assert impl.sampled_total_receipts(
        graph, (), model=model
    ) == 7 * impl.total_receipts(graph, ())


@pytest.mark.parametrize("dataset", sorted(DATASET_SPECS))
def test_unit_model_placements_bit_identical(dataset):
    graph = dataset_graph(dataset)
    plain = get_algorithm("G_All").place(graph, 4)
    unit = get_algorithm(
        "G_All", model=build_model("live-edge", edge_prob=1.0)
    ).place(graph, 4)
    assert unit.filters == plain.filters
    assert unit.steps == plain.steps


# ----------------------------------------------------------------------
# Exact expectation vs Monte-Carlo; mechanism agreement
# ----------------------------------------------------------------------


def _mc_ci(estimate, sigmas: float = 5.0) -> float:
    """A wide (≈5σ) confidence half-width for the Monte-Carlo mean."""
    return sigmas * estimate.std / math.sqrt(estimate.trials) + 1e-9


@pytest.mark.parametrize("mechanism", ["live-edge", "per-copy"])
def test_exact_expectation_matches_monte_carlo(fig1, mechanism):
    model = ProbabilisticModel(fig1, 0.7)
    exact_total = sum(
        sum(expected_receipts_without_filters(model, s).values())
        for s in fig1.sources
    )
    estimate = estimate_total_receipts(
        model, trials=400, seed=3, mechanism=mechanism
    )
    assert abs(estimate.mean - exact_total) <= _mc_ci(estimate)


def test_live_edge_and_per_copy_agree_in_expectation_without_filters():
    graph = random_dag(11, n=16, p=0.35, sources=2)
    model = ProbabilisticModel(graph, 0.6)
    live = estimate_total_receipts(
        model, trials=400, seed=5, mechanism="live-edge"
    )
    copy = estimate_total_receipts(
        model, trials=400, seed=6, mechanism="per-copy"
    )
    exact_total = sum(
        sum(expected_receipts_without_filters(model, s).values())
        for s in graph.sources
    )
    assert abs(live.mean - exact_total) <= _mc_ci(live)
    assert abs(copy.mean - exact_total) <= _mc_ci(copy)


def test_per_edge_mapping_expectations(fig1):
    """Mapping probabilities: absent edges default to deterministic."""
    model = ProbabilisticModel(fig1, {("s", "x"): 0.0})
    expected = expected_receipts_without_filters(model, "s")
    assert expected["x"] == 0.0  # the dead edge is x's only supply
    assert expected["y"] == 1.0  # untouched edges relay surely


# ----------------------------------------------------------------------
# Reproducibility and common random numbers
# ----------------------------------------------------------------------


def test_seeded_estimates_are_byte_reproducible(fig1):
    model = ProbabilisticModel(fig1, 0.5)
    for mechanism in ("live-edge", "per-copy"):
        a = estimate_total_receipts(
            model, ("x",), trials=50, seed=9, mechanism=mechanism
        )
        b = estimate_total_receipts(
            model, ("x",), trials=50, seed=9, mechanism=mechanism
        )
        assert a == b
    diff = estimate_total_receipts(model, ("x",), trials=50, seed=10)
    base = estimate_total_receipts(model, ("x",), trials=50, seed=9)
    assert diff != base  # seed actually steers the draw


def test_worlds_are_cached_and_shared(fig1):
    model = build_model("live-edge", edge_prob=0.4, trials=8, seed=1)
    assert get_worlds(fig1, model) is get_worlds(fig1, model)
    # Mechanism does not fork the worlds: both score through the same
    # live-edge coupling.
    per_copy = build_model("per-copy", edge_prob=0.4, trials=8, seed=1)
    assert get_worlds(fig1, per_copy) is get_worlds(fig1, model)
    other = build_model("live-edge", edge_prob=0.4, trials=8, seed=2)
    assert get_worlds(fig1, other) is not get_worlds(fig1, model)


@pytest.mark.parametrize("backend", available_backends())
def test_seeded_sampled_gains_reproducible(backend):
    graph = dataset_graph("quote")
    impl = get_backend(backend)
    model = build_model("live-edge", edge_prob=0.6, trials=16, seed=4)
    first = list(impl.sampled_marginal_gains_ids(graph, (), model=model))
    second = list(impl.sampled_marginal_gains_ids(graph, (), model=model))
    assert first == second


# ----------------------------------------------------------------------
# Cross-backend equality and CELF-under-SAA
# ----------------------------------------------------------------------


@pytest.mark.skipif(
    len(available_backends()) < 2, reason="needs both backends"
)
@pytest.mark.parametrize(
    "dataset", ["fig10", "quote", "citation", "synthetic-sparse"]
)
def test_backends_agree_on_sampled_integers(dataset):
    graph = dataset_graph(dataset)
    py = get_backend("python")
    np_backend = get_backend("numpy")
    model = build_model("live-edge", edge_prob=0.55, trials=12, seed=2)
    gains = list(py.sampled_marginal_gains_ids(graph, (), model=model))
    assert gains == list(
        np_backend.sampled_marginal_gains_ids(graph, (), model=model)
    )
    top = sorted(range(len(gains)), key=lambda v: -gains[v])[:3]
    for impl_pair in (
        "sampled_marginal_gains_ids",
        "sampled_simplified_impacts_ids",
    ):
        assert list(getattr(py, impl_pair)(graph, top, model=model)) == list(
            getattr(np_backend, impl_pair)(graph, top, model=model)
        )
    assert py.sampled_total_receipts(
        graph, (), model=model
    ) == np_backend.sampled_total_receipts(graph, (), model=model)


@pytest.mark.parametrize("dataset", ["fig10", "quote", "synthetic-sparse"])
@pytest.mark.parametrize("backend", available_backends())
def test_celf_saa_equals_eager_saa(dataset, backend):
    """Acceptance bar: fixed (seed, trials) ⇒ CELF == eager under SAA."""
    graph = dataset_graph(dataset)
    model = build_model("live-edge", edge_prob=0.5, trials=16, seed=7)
    eager = get_algorithm("G_All", model=model, backend=backend).place(
        graph, 6
    )
    lazy = get_algorithm(
        "G_All", strategy="lazy", model=model, backend=backend
    ).place(graph, 6)
    assert lazy.filters == eager.filters
    assert [s.gain for s in lazy.steps] == [s.gain for s in eager.steps]


@pytest.mark.skipif(
    len(available_backends()) < 2, reason="needs both backends"
)
def test_saa_placements_identical_across_backends():
    graph = dataset_graph("citation")
    model = build_model("live-edge", edge_prob=0.6, trials=16, seed=3)
    results = {
        backend: get_algorithm("G_All", model=model, backend=backend).place(
            graph, 5
        )
        for backend in available_backends()
    }
    filters = {r.filters for r in results.values()}
    assert len(filters) == 1


# ----------------------------------------------------------------------
# The SAA gain session (CELF's substrate)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", available_backends())
def test_sampled_session_tracks_batched_gains(backend):
    graph = dataset_graph("fig10")
    impl = get_backend(backend)
    model = build_model("live-edge", edge_prob=0.7, trials=8, seed=0)
    session = impl.sampled_gain_session(graph, (), model=model)
    compiled = graph.compiled()
    placed: list[int] = []
    for _ in range(3):
        gains = session.gains_ids()
        assert list(gains) == list(
            impl.sampled_marginal_gains_ids(graph, placed, model=model)
        )
        best = max(range(compiled.n), key=lambda v: (gains[v], -v))
        if gains[best] <= 0:
            break
        changed = set(session.add_filter_id(best))
        placed.append(best)
        after = impl.sampled_marginal_gains_ids(graph, placed, model=model)
        # The changed set is exact: everything that moved, nothing that
        # did not (spot-check via full recomputation).
        for v in range(compiled.n):
            moved = after[v] != gains[v]
            assert (v in changed) == moved
        assert session.gain_id(best) == 0
    assert session.filters == frozenset(compiled.to_nodes(placed))


def test_sampled_session_rejects_bad_ids(fig1):
    impl = get_backend(available_backends()[0])
    model = build_model("live-edge", edge_prob=0.5, trials=4, seed=0)
    session = impl.sampled_gain_session(fig1, (), model=model)
    from repro.exceptions import MissingNodeError

    with pytest.raises(MissingNodeError):
        session.add_filter_id(-1)
    session.add_filter("x")
    with pytest.raises(ParameterError):
        session.add_filter("x")


# ----------------------------------------------------------------------
# Registry / scoping wiring
# ----------------------------------------------------------------------


def test_get_algorithm_pins_model():
    model = build_model("live-edge", edge_prob=0.5, trials=4)
    algorithm = get_algorithm("G_All", model=model)
    assert algorithm.model is model
    # Sweep-free heuristics accept the axis and ignore it.
    assert get_algorithm("G_1", model=model).model is model


def test_use_model_scopes_the_default(fig1):
    model = build_model("live-edge", edge_prob=0.5, trials=8, seed=1)
    plain = get_algorithm("G_All").place(fig1, 2)
    with use_model(model):
        scoped = get_algorithm("G_All").place(fig1, 2)
        explicit = get_algorithm("G_All", model=model).place(fig1, 2)
    after = get_algorithm("G_All").place(fig1, 2)
    assert scoped.filters == explicit.filters
    assert after.filters == plain.filters
    assert [s.gain for s in after.steps] == [s.gain for s in plain.steps]


def test_model_describe_and_keys():
    model = build_model("live-edge", edge_prob=0.25, trials=10, seed=3)
    doc = model.describe()
    assert doc == {
        "name": "live-edge",
        "edge_prob": 0.25,
        "trials": 10,
        "seed": 3,
    }
    mapped = PropagationModel(
        "per-copy", probabilities={("a", "b"): 0.5}, trials=10, seed=3
    )
    assert mapped.describe()["edge_prob"] == "per-edge(1)"
    assert model.worlds_key() != mapped.worlds_key()


# ----------------------------------------------------------------------
# Compiled substrate
# ----------------------------------------------------------------------


def test_edge_probabilities_aligned_and_cached(fig1):
    compiled = fig1.compiled()
    probs = compiled.edge_probabilities({("s", "x"): 0.25})
    assert probs is compiled.edge_probabilities({("s", "x"): 0.25})
    assert not probs.unit
    # Forward alignment: position of edge (s, x) in the out-CSR.
    s = compiled.to_id("s")
    x = compiled.to_id("x")
    pos = compiled.out_offsets[s] + compiled.succ_ids[s].index(x)
    assert probs.out_probs[pos] == 0.25
    # Reverse alignment via the cached position map.
    in_pos = compiled.in_pos_of_out()[pos]
    assert probs.in_probs[in_pos] == 0.25
    assert sum(1 for p in probs.out_probs if p != 1.0) == 1
    # Cached probability tables are charged to the compiled footprint.
    assert compiled.nbytes() > 0


def test_probabilistic_model_compiled_path(fig1):
    model = ProbabilisticModel(fig1, 0.5)
    probs = model.compiled()
    assert probs.uniform == 0.5
    assert probs is model.compiled()  # cached on the compiled view
    axis = model.to_model("per-copy", trials=5, seed=2)
    assert axis.mechanism == "per-copy"
    assert axis.trials == 5 and axis.seed == 2


@pytest.mark.skipif(
    "numpy" not in available_backends(), reason="needs the numpy backend"
)
def test_int32_eligibility_consults_psi_bound():
    """Stored ψ entries accumulate across levels: a node whose parents
    span several levels can exceed every per-level sum, so the compact
    dtype must respect ``psi_bound``, not just the level-sum bounds."""
    from repro.graphs.cgraph import CGraph

    # A chain whose every node also feeds one shared sink: each level's
    # emission total stays tiny, while ψ(sink) accumulates one copy per
    # level — the accumulation-across-levels shape.
    k = 12
    edges = [(i, i + 1) for i in range(k)] + [(i, "sink") for i in range(k)]
    graph = CGraph(edges)
    backend = get_backend("numpy")
    plan = backend.plan_for(graph)
    # The forward level-sum bound is lazy (the flattened plan probe
    # defers it to the sampled path); the accessor computes and caches.
    assert plan.psi_bound > max(
        backend._fwd_levelsum(plan) / k, 1
    )  # sanity: the shape exercises multi-level fan-in
    model = build_model("live-edge", edge_prob=0.9, trials=6, seed=0)
    state = backend._sampled_state(graph, plan, model)
    import numpy as np

    assert state.dtype is np.int32  # small graph: compact dtype fine
    # Equality with the per-trial exact path on this shape.
    assert list(
        backend.sampled_marginal_gains_ids(graph, (), model=model)
    ) == list(
        get_backend("python").sampled_marginal_gains_ids(
            graph, (), model=model
        )
    )
    # Force ψ beyond int32 range while the level sums stay small: the
    # dtype decision must fall back to int64 on psi_bound alone.
    plan.psi_bound = float(2**31)
    assert backend._fwd_levelsum(plan) < 2**30
    wide = backend._build_sampled_state(graph, plan, model)
    assert wide.dtype is np.int64
    assert not wide.exact_only
