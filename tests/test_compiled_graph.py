"""CompiledGraph structural properties + derived-graph regressions.

Covers the compile-once layer itself: index↔node round-trips, CSR/tuple
adjacency agreement with the dict API, topological/level invariants, and
the derived-graph constructor audit (explicit-source preservation and
compiled-cache freshness on ``subgraph`` / ``reversed`` /
``without_edges`` / ``with_edges`` / ``with_sources``).
"""

from __future__ import annotations

import pytest

from conftest import random_dag
from repro.datasets.registry import get_dataset
from repro.exceptions import CyclicGraphError
from repro.graphs import CGraph, CompiledGraph


def property_graphs():
    yield "fig1", get_dataset("fig1")
    yield "fig2", get_dataset("fig2")
    yield "fig3", get_dataset("fig3")
    yield "fig10", get_dataset("fig10")
    yield "quote@0.3", get_dataset("quote", seed=0, scale=0.3)
    yield "random_dag", random_dag(7)
    yield "single", CGraph(nodes=["only"])
    yield "empty", CGraph()


@pytest.mark.parametrize(
    "name,graph", list(property_graphs()), ids=lambda x: x if isinstance(x, str) else ""
)
def test_index_node_round_trip(name, graph):
    cg = graph.compiled()
    assert cg.nodes == graph.nodes()
    assert cg.n == graph.number_of_nodes()
    assert cg.m == graph.number_of_edges()
    for i, v in enumerate(cg.nodes):
        assert cg.index[v] == i
        assert cg.to_id(v) == i
        assert cg.to_node(i) == v
    assert cg.to_nodes(cg.to_ids(graph.nodes())) == list(graph.nodes())


@pytest.mark.parametrize(
    "name,graph", list(property_graphs()), ids=lambda x: x if isinstance(x, str) else ""
)
def test_adjacency_agrees_with_dict_api(name, graph):
    cg = graph.compiled()
    for i, v in enumerate(cg.nodes):
        succ_nodes = tuple(cg.nodes[j] for j in cg.succ_ids[i])
        assert succ_nodes == graph.successors(v)
        pred_nodes = sorted(map(repr, (cg.nodes[j] for j in cg.pred_ids[i])))
        assert pred_nodes == sorted(map(repr, graph.predecessors(v)))
        # CSR slices carry exactly the tuple adjacency.
        assert (
            tuple(cg.out_targets[cg.out_offsets[i]:cg.out_offsets[i + 1]])
            == cg.succ_ids[i]
        )
        assert (
            tuple(cg.in_sources[cg.in_offsets[i]:cg.in_offsets[i + 1]])
            == cg.pred_ids[i]
        )
        assert cg.out_degree[i] == graph.out_degree(v)
        assert cg.in_degree[i] == graph.in_degree(v)


@pytest.mark.parametrize(
    "name,graph", list(property_graphs()), ids=lambda x: x if isinstance(x, str) else ""
)
def test_node_families_match(name, graph):
    cg = graph.compiled()
    assert set(cg.to_nodes(cg.source_ids)) == set(graph.sources)
    assert list(cg.source_ids) == sorted(cg.source_ids)
    assert tuple(cg.to_nodes(cg.sink_ids)) == graph.sinks()
    assert tuple(cg.to_nodes(cg.merge_ids)) == graph.merge_nodes()


@pytest.mark.parametrize(
    "name,graph", list(property_graphs()), ids=lambda x: x if isinstance(x, str) else ""
)
def test_topological_and_level_invariants(name, graph):
    cg = graph.compiled()
    assert cg.is_dag
    assert sorted(cg.topo_order) == list(range(cg.n))
    for u in range(cg.n):
        for child in cg.succ_ids[u]:
            assert cg.topo_index[u] < cg.topo_index[child]
            assert cg.depth[u] < cg.depth[child]  # edges cross levels upward
    # The level partition tiles the topo order; members ascend within a
    # level, and depth equals the longest path from any root.
    offsets = cg.level_offsets
    assert offsets[0] == 0 and offsets[-1] == cg.n
    assert cg.num_levels == len(offsets) - 1
    for lvl in range(cg.num_levels):
        members = cg.level_members(lvl)
        assert list(members) == sorted(members)
        for v in members:
            assert cg.depth[v] == lvl
            preds = cg.pred_ids[v]
            expected = max((cg.depth[p] for p in preds), default=-1) + 1
            assert cg.depth[v] == expected


def test_cyclic_graph_compiles_but_topo_raises():
    cyc = CGraph([("a", "b"), ("b", "c"), ("c", "a")], sources=["a"])
    cg = cyc.compiled()
    assert not cg.is_dag
    assert cg.m == 3
    for attr in ("topo_order", "topo_index", "depth", "level_offsets"):
        with pytest.raises(CyclicGraphError):
            getattr(cg, attr)


def test_compiled_is_cached_per_graph():
    g = get_dataset("fig1")
    assert g.compiled() is g.compiled()
    assert isinstance(g.compiled(), CompiledGraph)
    assert g.compiled().graph is g


def test_nbytes_positive_and_monotone():
    small = get_dataset("fig1").compiled()
    large = get_dataset("quote", seed=0, scale=0.5).compiled()
    assert 0 < small.nbytes() < large.nbytes()


def test_reach_counts_do_not_pin_reach_masks():
    # Regression: deriving the counts used to cache the full O(n·S/8)
    # mask list as a side effect, pinning it resident forever.  Counting
    # must stay blocked — only reach_masks() callers pay for masks.
    cg = get_dataset("quote", seed=0, scale=0.3).compiled()
    baseline = cg.nbytes_split()["resident"]
    counts = cg.reach_counts()
    assert cg._reach_masks is None
    grown = cg.nbytes_split()["resident"] - baseline
    import sys

    # The legitimate growth: the counts list itself plus the n-byte
    # source-mark the sweep materializes.  Nothing mask-shaped.
    assert grown <= (
        sys.getsizeof(counts)
        + sum(sys.getsizeof(c) for c in set(counts))
        + sys.getsizeof(cg.source_mark())
    )
    # Masks cached first are legitimately chargeable — and the counts
    # derived from them must agree with the blocked sweep's.
    fresh = get_dataset("quote", seed=0, scale=0.3).compiled()
    fresh.reach_masks()
    assert fresh.nbytes_split()["resident"] > grown + baseline
    assert fresh.reach_counts() == counts


# ----------------------------------------------------------------------
# Derived-graph constructor audit: explicit-source preservation and
# compiled-cache freshness (one regression test per constructor).
# ----------------------------------------------------------------------


def chain_with_side_edge():
    return CGraph([("a", "b"), ("b", "c"), ("a", "c")])


def test_subgraph_redefaults_defaulted_sources_and_recompiles():
    g = chain_with_side_edge()
    cg = g.compiled()
    sub = g.subgraph(["b", "c"])
    # 'b' lost its only in-edge: with defaulted sources it must be
    # promoted, not dropped in favour of the parent's root 'a'.
    assert sub.sources == frozenset({"b"})
    assert not sub.sources_explicit
    assert sub.compiled() is not cg
    assert sub.compiled().nodes == sub.nodes()


def test_subgraph_preserves_surviving_explicit_sources():
    g = CGraph(
        [("a", "b"), ("b", "c"), ("a", "c"), ("d", "c")],
        sources=["a", "d"],
    )
    sub = g.subgraph(["a", "b", "c"])
    assert sub.sources == frozenset({"a"})
    assert sub.sources_explicit
    # No explicit source survives -> fall back to in-degree-zero roots.
    sub2 = g.subgraph(["b", "c"])
    assert sub2.sources == frozenset({"b"})
    assert not sub2.sources_explicit


def test_without_edges_promotes_new_roots_under_defaulted_sources():
    g = chain_with_side_edge()
    cg = g.compiled()
    cut = g.without_edges([("a", "b")])
    assert cut.sources == frozenset({"a", "b"})
    assert not cut.sources_explicit
    assert cut.compiled() is not cg
    assert cut.compiled().m == 2


def test_without_edges_preserves_explicit_sources():
    g = CGraph([("a", "b"), ("b", "c"), ("a", "c")], sources=["a"])
    cut = g.without_edges([("a", "b")])
    assert cut.sources == frozenset({"a"})
    assert cut.sources_explicit


def test_with_edges_demotes_roots_under_defaulted_sources():
    g = CGraph([("a", "b")], nodes=["c"])
    grown = g.with_edges([("b", "c"), ("c", "a")])
    # 'a' gained an in-edge; with defaulted sources nothing qualifies.
    assert grown.sources == frozenset()
    assert not grown.sources_explicit
    ge = CGraph([("a", "b")], nodes=["c"], sources=["a"])
    grown_e = ge.with_edges([("b", "c"), ("c", "a")])
    assert grown_e.sources == frozenset({"a"})
    assert grown_e.sources_explicit


def test_reversed_redefaults_to_original_sinks():
    g = CGraph([("a", "b"), ("b", "c"), ("a", "c")], sources=["a"])
    rev = g.reversed()
    assert rev.sources == frozenset({"c"})
    assert not rev.sources_explicit
    assert rev.compiled() is not g.compiled()
    rev_cg = rev.compiled()
    a, c = rev_cg.index["a"], rev_cg.index["c"]
    assert a in rev_cg.sink_ids and c in rev_cg.source_ids


def test_with_sources_is_explicit_and_compiles_fresh():
    g = chain_with_side_edge()
    pinned = g.with_sources(["b"])
    assert pinned.sources == frozenset({"b"})
    assert pinned.sources_explicit
    assert pinned.compiled() is not g.compiled()
    assert pinned.compiled().source_ids == (pinned.compiled().index["b"],)
