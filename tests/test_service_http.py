"""HTTP API round-trips and API-vs-CLI result equality."""

from __future__ import annotations

import contextlib
import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.backends.registry import available_backends
from repro.service.app import ServiceApp
from repro.service.http import make_server


@pytest.fixture
def server():
    app = ServiceApp(workers=2, warm_backends=False)
    srv = make_server(app, port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    app.close()
    thread.join(5)


def call(server, method, path, body=None):
    url = f"http://127.0.0.1:{server.port}{path}"
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def test_http_full_cycle(server):
    status, health = call(server, "GET", "/healthz")
    assert status == 200 and health["status"] == "ok"

    status, graph = call(server, "POST", "/graphs", {"dataset": "fig10"})
    assert status == 201 and graph["created"]
    digest = graph["digest"]

    status, stats = call(server, "GET", f"/graphs/{digest}/stats")
    assert status == 200 and stats["nodes"] == graph["nodes"]

    body = {"graph": digest, "algorithm": "G_All", "k": 3}
    status, miss = call(server, "POST", "/placements", body)
    assert status == 202 and miss["cache"]["hit"] is False
    job_id = miss["job"]["id"]

    # poll until done (fig10 is tiny; a few iterations at most)
    for _ in range(100):
        status, polled = call(server, "GET", f"/jobs/{job_id}")
        if polled["job"]["state"] == "done":
            break
    assert status == 200 and polled["job"]["state"] == "done"

    status, hit = call(server, "POST", "/placements", body)
    assert status == 200
    assert hit["cache"]["hit"] is True
    assert hit["result"] == polled["result"]

    # the wait=true form returns inline results for misses too
    status, waited = call(
        server, "POST", "/placements",
        {**body, "algorithm": "G_Max", "wait": True},
    )
    assert status == 200 and waited["cache"] == {
        "hit": False, "kind": "computed"
    }


def test_http_upload_edges(server):
    text = "# sources: s\ns a\ns b\na c\nb c\nc d\n"
    status, doc = call(
        server, "POST", "/graphs", {"edges": text, "name": "diamond"}
    )
    assert status == 201
    assert doc["nodes"] == 5 and doc["edges"] == 5
    status, placed = call(
        server, "POST", "/placements",
        {"graph": doc["digest"], "algorithm": "G_All", "k": 1,
         "wait": True},
    )
    assert status == 200
    assert placed["result"]["filters"] == ["'c'"]


def test_http_error_statuses(server):
    assert call(server, "GET", "/nope")[0] == 404
    assert call(server, "GET", "/jobs/job-999999")[0] == 404
    assert call(server, "GET", "/graphs/" + "0" * 64 + "/stats")[0] == 404
    assert call(server, "POST", "/graphs", {})[0] == 400
    assert call(server, "POST", "/graphs", {"dataset": "bogus"})[0] == 400
    status, doc = call(server, "POST", "/placements", {"k": 1})
    assert status == 400 and "graph" in doc["error"]
    # malformed JSON body
    url = f"http://127.0.0.1:{server.port}/placements"
    request = urllib.request.Request(
        url, data=b"{not json", method="POST",
        headers={"Content-Type": "application/json"},
    )
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(request, timeout=10)
    assert err.value.code == 400


def test_http_malformed_content_length(server):
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
    try:
        conn.putrequest("POST", "/graphs")
        conn.putheader("Content-Length", "abc")
        conn.endheaders()
        response = conn.getresponse()
        body = json.loads(response.read())
        assert response.status == 400
        assert "Content-Length" in body["error"]
    finally:
        conn.close()


# ----------------------------------------------------------------------
# API vs CLI equality
# ----------------------------------------------------------------------


def cli_place_json(argv) -> dict:
    from repro.cli import main

    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        assert main(["place", *argv, "--json"]) == 0
    return json.loads(buffer.getvalue())


def matrix_combinations():
    algorithms = (
        "G_All", "G_All_paper", "G_All_lazy", "G_Max", "G_1", "G_L",
        "Rand_K", "Rand_I", "Rand_W", "Betweenness",
    )
    for algorithm in algorithms:
        for strategy in ("exact", "lazy"):
            for backend in available_backends():
                yield algorithm, strategy, backend


def test_api_results_bit_identical_to_cli_full_matrix():
    """Every (algorithm, strategy, backend) combination on one graph."""
    app = ServiceApp(workers=2, warm_backends=False)
    try:
        entry, _ = app.store.register_dataset("fig10")
        for algorithm, strategy, backend in matrix_combinations():
            status, doc = app.place_sync({
                "graph": entry.digest,
                "algorithm": algorithm,
                "strategy": strategy,
                "backend": backend,
                "k": 3,
            })
            assert status == 200, (algorithm, strategy, backend, doc)
            cli_payload = cli_place_json([
                "--dataset", "fig10",
                "--algorithm", algorithm,
                "--strategy", strategy,
                "--backend", backend,
                "-k", "3",
            ])
            assert doc["result"] == cli_payload, (
                algorithm, strategy, backend
            )
    finally:
        app.close()


@pytest.mark.parametrize(
    "dataset,scale",
    [
        ("fig1", None),
        ("fig2", None),
        ("fig3", None),
        ("fig10", None),
        ("synthetic-sparse", 0.05),
        ("synthetic-dense", 0.05),
        ("quote", 0.1),
        ("twitter", 0.002),
        ("citation", 0.01),
    ],
)
def test_api_results_bit_identical_to_cli_every_dataset(dataset, scale):
    """G_All on every built-in dataset (big ones scaled for speed)."""
    app = ServiceApp(workers=1, warm_backends=False)
    try:
        entry, _ = app.store.register_dataset(dataset, scale=scale)
        status, doc = app.place_sync({
            "graph": entry.digest,
            "algorithm": "G_All",
            "backend": "python",
            "k": 3,
        })
        assert status == 200
        argv = [
            "--dataset", dataset, "--algorithm", "G_All",
            "--backend", "python", "-k", "3",
        ]
        if scale is not None:
            argv += ["--scale", str(scale)]
        assert doc["result"] == cli_place_json(argv), dataset
    finally:
        app.close()
