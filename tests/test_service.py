"""Service subsystem: GraphStore, PlacementCache, JobManager, ServiceApp."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import ParameterError
from repro.graphs.cgraph import CGraph
from repro.service.app import ServiceApp
from repro.service.cache import PlacementCache, PlacementKey
from repro.service.jobs import JobManager
from repro.service.store import GraphStore, graph_digest


def small_app(**kwargs) -> ServiceApp:
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("warm_backends", False)
    return ServiceApp(**kwargs)


@pytest.fixture
def app():
    instance = small_app()
    yield instance
    instance.close()


def register_fig1(app: ServiceApp) -> str:
    entry, _ = app.store.register_dataset("fig1")
    return entry.digest


# ----------------------------------------------------------------------
# GraphStore
# ----------------------------------------------------------------------


def test_digest_is_content_addressed():
    a = CGraph([("s", "x"), ("s", "y")])
    b = CGraph([("s", "y"), ("s", "x")])  # same content, other order
    c = CGraph([("s", "x"), ("s", "y"), ("x", "y")])
    assert graph_digest(a) == graph_digest(b)
    assert graph_digest(a) != graph_digest(c)
    # int vs string node ids must not collide
    assert graph_digest(CGraph([(1, 2)])) != graph_digest(CGraph([("1", "2")]))


def test_store_registration_is_idempotent():
    store = GraphStore(warm_backends=False)
    e1, created1 = store.register_dataset("fig1")
    e2, created2 = store.register_dataset("fig1")
    assert created1 and not created2
    assert e1 is e2
    assert len(store) == 1


def test_store_prefix_lookup_and_unknown():
    store = GraphStore(warm_backends=False)
    entry, _ = store.register_dataset("fig1")
    assert store.get(entry.digest) is entry
    assert store.get(entry.digest[:12]) is entry
    with pytest.raises(ParameterError):
        store.get("0" * 64)
    with pytest.raises(ParameterError):
        store.get("abc")  # shorter than the minimum prefix


def test_store_lru_eviction():
    store = GraphStore(max_graphs=2, warm_backends=False)
    d1 = store.register_dataset("fig1")[0].digest
    d2 = store.register_dataset("fig2")[0].digest
    store.get(d1)  # touch fig1 so fig2 is the LRU victim
    d3 = store.register_dataset("fig3")[0].digest
    assert set(store.digests()) == {d1, d3}
    with pytest.raises(ParameterError):
        store.get(d2)


def test_store_register_edges_roundtrip_digest(tmp_path):
    from repro.graphs.io import write_edge_list

    store = GraphStore(warm_backends=False)
    entry, _ = store.register_dataset("quote", scale=0.1)
    path = tmp_path / "quote.txt"
    write_edge_list(entry.graph, path)
    re_entry, created = store.register_edges(path.read_text())
    assert not created
    assert re_entry.digest == entry.digest


# ----------------------------------------------------------------------
# PlacementCache
# ----------------------------------------------------------------------


def key_for(k: int, *, algorithm: str = "G_All") -> PlacementKey:
    return PlacementKey(
        digest="d" * 64,
        algorithm=algorithm,
        strategy="exact",
        backend="python",
        k=k,
    )


def payload_for(k: int) -> dict:
    filters = [repr(f"n{i}") for i in range(k)]
    return {
        "filters": filters,
        "steps": [{"node": f, "gain": 1} for f in filters],
        "prefix_consistent": True,
    }


def test_cache_exact_hit_and_miss_counters():
    cache = PlacementCache()
    key = key_for(3)
    assert cache.get(key) is None
    cache.put(key, payload_for(3), prefix_consistent=True)
    assert cache.get(key)["filters"] == payload_for(3)["filters"]
    assert cache.stats()["hits"] == 1
    assert cache.stats()["misses"] == 1


def test_cache_prefix_donor_semantics():
    cache = PlacementCache()
    cache.put(key_for(8), payload_for(8), prefix_consistent=True)
    cache.put(key_for(5), payload_for(5), prefix_consistent=True)
    # smallest sufficient donor wins
    donor_key, payload = cache.find_prefix_donor(key_for(4))
    assert donor_key.k == 5 and len(payload["filters"]) == 5
    # larger than anything cached: no donor
    assert cache.find_prefix_donor(key_for(9)) is None
    # different cell: no donor
    assert cache.find_prefix_donor(key_for(2, algorithm="G_Max")) is None
    # non-prefix-consistent entries never donate
    cache.put(
        key_for(6, algorithm="Rand_K"),
        {**payload_for(6), "prefix_consistent": False},
        prefix_consistent=False,
    )
    assert cache.find_prefix_donor(key_for(2, algorithm="Rand_K")) is None


def test_cache_lru_eviction_by_entries():
    cache = PlacementCache(max_entries=2)
    cache.put(key_for(1), payload_for(1), prefix_consistent=True)
    cache.put(key_for(2), payload_for(2), prefix_consistent=True)
    cache.get(key_for(1))  # make k=2 the LRU victim
    cache.put(key_for(3), payload_for(3), prefix_consistent=True)
    assert cache.get(key_for(1)) is not None
    assert cache.get(key_for(2)) is None
    assert cache.stats()["evictions"] == 1


def test_cache_eviction_by_bytes():
    probe = PlacementCache()
    probe.put(key_for(1), payload_for(1), prefix_consistent=True)
    one_entry = probe.total_bytes
    cache = PlacementCache(max_bytes=int(one_entry * 2.5))
    for k in (1, 2, 3, 4):
        cache.put(key_for(k), payload_for(k), prefix_consistent=True)
    assert cache.stats()["evictions"] >= 1
    assert cache.total_bytes <= int(one_entry * 2.5)
    # the most recent insert always survives, even over budget
    tiny = PlacementCache(max_bytes=1)
    tiny.put(key_for(9), payload_for(9), prefix_consistent=True)
    assert len(tiny) == 1


# ----------------------------------------------------------------------
# JobManager
# ----------------------------------------------------------------------


def test_jobs_dedupe_in_flight():
    manager = JobManager(workers=1)
    release = threading.Event()

    def blocked():
        release.wait(5)
        return {"ok": True}

    j1, created1 = manager.submit("same-key", blocked)
    j2, created2 = manager.submit("same-key", blocked)
    assert created1 and not created2
    assert j1 is j2
    assert manager.counts()["deduplicated"] == 1
    release.set()
    assert j1.wait(5)
    assert j1.state == "done" and j1.payload == {"ok": True}
    # finished jobs do not dedupe: a fresh submission runs again
    j3, created3 = manager.submit("same-key", lambda: {"ok": 2})
    assert created3 and j3 is not j1
    assert j3.wait(5)
    manager.shutdown()


def test_jobs_failure_and_cancellation():
    manager = JobManager(workers=1)
    release = threading.Event()

    def blocked():
        release.wait(5)
        return {}

    def boom():
        raise ValueError("nope")

    running, _ = manager.submit("running", blocked)
    queued, _ = manager.submit("queued", boom)
    # the queued job can be cancelled, the running one cannot
    assert manager.cancel(queued.id) is True
    assert queued.state == "cancelled"
    assert manager.cancel(running.id) is False
    release.set()
    assert running.wait(5)
    failing, _ = manager.submit("fails", boom)
    assert failing.wait(5)
    assert failing.state == "failed"
    assert "ValueError" in failing.error
    with pytest.raises(ParameterError):
        manager.get("job-999999")
    manager.shutdown()


# ----------------------------------------------------------------------
# ServiceApp
# ----------------------------------------------------------------------


def test_app_register_and_stats(app):
    status, doc = app.handle_register_graph({"dataset": "fig1"})
    assert status == 201 and doc["created"]
    status, again = app.handle_register_graph({"dataset": "fig1"})
    assert status == 200 and not again["created"]
    assert again["digest"] == doc["digest"]
    status, stats = app.handle_graph_stats(doc["digest"][:16])
    assert status == 200
    assert stats["nodes"] == 7 and stats["is_dag"] is True
    status, listing = app.handle_list_graphs()
    assert status == 200 and len(listing["graphs"]) == 1


def test_app_validation_errors(app):
    from repro.service.app import RequestError

    digest = register_fig1(app)
    cases = [
        {"graph": digest, "algorithm": "nope", "k": 1},
        {"graph": digest, "algorithm": "G_All", "k": "one"},
        {"graph": digest, "algorithm": "G_All", "k": 99},  # > n
        {"graph": digest, "algorithm": "G_All", "k": 1, "strategy": "x"},
        {"graph": digest, "algorithm": "G_All", "k": 1, "backend": "x"},
        {"algorithm": "G_All", "k": 1},  # no graph
    ]
    for body in cases:
        with pytest.raises(RequestError) as err:
            app.handle_placement(body)
        assert err.value.status == 400
    with pytest.raises(RequestError) as err:
        app.handle_placement({"graph": "f" * 64, "k": 1})
    assert err.value.status == 404
    with pytest.raises(RequestError) as err:
        app.handle_job("job-999999")
    assert err.value.status == 404


def test_app_bad_wait_timeout_rejected_before_submit(app):
    from repro.service.app import RequestError

    digest = register_fig1(app)
    for bad_timeout in (-1, 0, "soon", True):
        with pytest.raises(RequestError):
            app.handle_placement({
                "graph": digest, "algorithm": "G_All", "k": 2,
                "wait": True, "timeout": bad_timeout,
            })
    # no job may have been queued for a rejected request
    assert app.jobs.counts()["submitted"] == 0


def test_app_miss_then_hit_cycle(app):
    digest = register_fig1(app)
    body = {"graph": digest, "algorithm": "G_All", "k": 2}
    status, doc = app.handle_placement(body)
    assert status == 202 and doc["cache"]["hit"] is False
    job_id = doc["job"]["id"]
    assert app.jobs.get(job_id).wait(10)
    status, polled = app.handle_job(job_id)
    assert status == 200
    assert polled["job"]["state"] == "done"
    assert polled["cache"] == {"hit": False, "kind": "computed"}
    # G_All early-stops after z2 (the only non-sink merge node of fig1)
    assert polled["result"]["filters"] == ["'z2'"]
    # identical request now hits the cache, with identical filters
    status, hit = app.handle_placement(body)
    assert status == 200
    assert hit["cache"] == {"hit": True, "kind": "exact"}
    assert hit["result"] == polled["result"]
    # "auto" resolves to the same concrete backend: still a hit
    status, auto_hit = app.handle_placement({**body, "backend": "auto"})
    assert status == 200 and auto_hit["cache"]["hit"] is True


def test_app_prefix_reuse_matches_direct_run(app):
    digest = register_fig1(app)
    status, _ = app.place_sync(
        {"graph": digest, "algorithm": "G_All", "k": 4}
    )
    assert status == 200
    status, prefix = app.handle_placement(
        {"graph": digest, "algorithm": "G_All", "k": 2}
    )
    assert status == 200
    assert prefix["cache"] == {"hit": True, "kind": "prefix"}
    # bit-identical to computing k=2 from scratch on a fresh service
    fresh = small_app()
    try:
        fresh_digest = register_fig1(fresh)
        assert fresh_digest == digest
        status, direct = fresh.place_sync(
            {"graph": digest, "algorithm": "G_All", "k": 2}
        )
        assert status == 200
        assert prefix["result"] == direct["result"]
    finally:
        fresh.close()
    # the derived entry was cached: the repeat is an exact hit
    status, repeat = app.handle_placement(
        {"graph": digest, "algorithm": "G_All", "k": 2}
    )
    assert repeat["cache"] == {"hit": True, "kind": "exact"}
    assert repeat["result"] == prefix["result"]


def test_app_randomized_results_never_prefix_reuse(app):
    digest = register_fig1(app)
    status, _ = app.place_sync(
        {"graph": digest, "algorithm": "Rand_K", "k": 4}
    )
    assert status == 200
    status, doc = app.handle_placement(
        {"graph": digest, "algorithm": "Rand_K", "k": 2}
    )
    # k=2 must be computed fresh (202/queued or 200/wait), never sliced
    assert doc["cache"]["hit"] is False or doc["cache"]["kind"] == "computed"


def test_app_concurrent_identical_requests_share_one_job():
    app = small_app(workers=1)
    try:
        slow_entry, _ = app.store.register_dataset(
            "synthetic-sparse", scale=1.0
        )
        fig1_digest = register_fig1(app)
        # Occupy the single worker so the next submissions stay queued.
        status, first = app.handle_placement(
            {"graph": slow_entry.digest, "algorithm": "G_All", "k": 10,
             "backend": "python"}
        )
        assert status == 202
        target = {"graph": fig1_digest, "algorithm": "G_All", "k": 2}
        status_a, a = app.handle_placement(target)
        status_b, b = app.handle_placement(target)
        assert status_a == status_b == 202
        assert a["job"]["id"] == b["job"]["id"]
        assert b["deduplicated"] is True
        job = app.jobs.get(a["job"]["id"])
        assert job.wait(30)
        assert job.state == "done"
        # exactly one job ran for the two identical requests
        assert app.jobs.counts()["deduplicated"] >= 1
    finally:
        app.close()


def test_app_cancel_queued_job():
    app = small_app(workers=1)
    try:
        slow_entry, _ = app.store.register_dataset(
            "synthetic-sparse", scale=1.0
        )
        digest = register_fig1(app)
        app.handle_placement(
            {"graph": slow_entry.digest, "algorithm": "G_All", "k": 10,
             "backend": "python"}
        )
        status, queued = app.handle_placement(
            {"graph": digest, "algorithm": "G_All", "k": 2}
        )
        job_id = queued["job"]["id"]
        status, doc = app.handle_cancel_job(job_id)
        assert status == 200
        if doc["cancelled"]:  # the worker may already have grabbed it
            assert doc["job"]["state"] == "cancelled"
            status, polled = app.handle_job(job_id)
            assert status == 202 and polled["job"]["state"] == "cancelled"
    finally:
        app.close()


def test_app_healthz_and_algorithms(app):
    digest = register_fig1(app)
    app.place_sync({"graph": digest, "algorithm": "G_All", "k": 2})
    status, health = app.handle_healthz()
    assert status == 200 and health["status"] == "ok"
    assert health["graphs"] == 1
    assert health["cache"]["entries"] == 1
    assert health["jobs"]["done"] == 1
    status, catalog = app.handle_algorithms()
    assert status == 200
    names = {row["name"] for row in catalog["algorithms"]}
    assert {"G_All", "G_Max", "Rand_K"} <= names
    g_all = next(r for r in catalog["algorithms"] if r["name"] == "G_All")
    assert g_all["lazy_capable"] and g_all["deterministic"]


def test_app_process_pool_matches_thread_pool():
    thread_app = small_app()
    process_app = small_app(pool="process", workers=1)
    try:
        body = {"algorithm": "G_All", "k": 3, "backend": "python"}
        d1 = thread_app.store.register_dataset("fig10")[0].digest
        d2 = process_app.store.register_dataset("fig10")[0].digest
        assert d1 == d2
        status1, doc1 = thread_app.place_sync({**body, "graph": d1})
        status2, doc2 = process_app.place_sync({**body, "graph": d2})
        assert status1 == status2 == 200
        assert doc1["result"] == doc2["result"]
        # the process-pool answer was cached identically
        status3, doc3 = process_app.handle_placement({**body, "graph": d2})
        assert doc3["cache"]["hit"] is True
        assert doc3["result"] == doc1["result"]
    finally:
        thread_app.close()
        process_app.close()


def test_service_bench_scenarios_run():
    from repro.bench.compare import cache_speedup
    from repro.bench.harness import run_suite
    from repro.bench.scenarios import BenchScenario

    scenarios = [
        BenchScenario("fig10", "G_All", 3, "python", mode="service_cold"),
        BenchScenario("fig10", "G_All", 3, "python", mode="service_hit"),
    ]
    records = run_suite(scenarios)
    assert [r.scenario.key() for r in records] == [
        "fig10@default/seed0/G_All/k3/python/cold",
        "fig10@default/seed0/G_All/k3/python/hit",
    ]
    cold, hit = records
    assert cold.filters == hit.filters
    assert cold.objective == hit.objective
    ratios = cache_speedup(records)
    assert set(ratios) == {"fig10@default/seed0/G_All/k3/python/hit"}
    assert all(r > 1.0 for r in ratios.values())


# ----------------------------------------------------------------------
# Propagation-model axis
# ----------------------------------------------------------------------


def test_probabilistic_registration_forks_the_digest(app):
    _, det = app.handle_register_graph({"dataset": "fig1"})
    _, prob = app.handle_register_graph({"dataset": "fig1", "edge_prob": 0.5})
    assert prob["digest"] != det["digest"]
    assert prob["edge_prob"] == 0.5 and det["edge_prob"] is None
    # Unit probabilities *are* deterministic relaying: same digest.
    _, unit = app.handle_register_graph({"dataset": "fig1", "edge_prob": 1.0})
    assert unit["digest"] == det["digest"]
    # Per-edge form registers, validates membership, and is digest-stable.
    _, mapped = app.handle_register_graph(
        {"dataset": "fig1", "edge_probs": [["s", "x", 0.5]]}
    )
    _, mapped_again = app.handle_register_graph(
        {"dataset": "fig1", "edge_probs": [["s", "x", 0.5]]}
    )
    assert mapped["digest"] == mapped_again["digest"]
    assert mapped["digest"] not in (det["digest"], prob["digest"])


def test_probabilistic_registration_validation(app):
    from repro.service.app import RequestError

    cases = [
        {"dataset": "fig1", "edge_prob": "half"},
        {"dataset": "fig1", "edge_prob": 1.5},
        {"dataset": "fig1", "edge_probs": [["s", "nope", 0.5]]},
        {"dataset": "fig1", "edge_probs": [["s", "x"]]},
        {"dataset": "fig1", "edge_prob": 0.5, "edge_probs": []},
        # Unhashable node values are a client error, never a 500.
        {"dataset": "fig1", "edge_probs": [[["s"], "x", 0.5]]},
    ]
    for body in cases:
        with pytest.raises(RequestError):
            app.handle_register_graph(body)


def test_placement_key_carries_model_axis(app):
    _, reg = app.handle_register_graph({"dataset": "fig1", "edge_prob": 0.6})
    digest = reg["digest"]
    base = {"graph": digest, "algorithm": "G_All", "k": 2, "wait": True}
    status, det = app.place_sync(base)
    assert status == 200 and "model" not in det["result"]
    status, prob = app.place_sync(
        {**base, "model": "live-edge", "trials": 12, "mc_seed": 1}
    )
    assert status == 200
    assert prob["result"]["model"] == {
        "name": "live-edge",
        "edge_prob": 0.6,
        "trials": 12,
        "seed": 1,
    }
    assert prob["request"]["model"] == "live-edge"
    # The two requests occupy distinct cache cells.
    status, prob_again = app.place_sync(
        {**base, "model": "live-edge", "trials": 12, "mc_seed": 1}
    )
    assert prob_again["cache"]["hit"] is True
    assert prob_again["result"] == prob["result"]
    status, other_seed = app.place_sync(
        {**base, "model": "live-edge", "trials": 12, "mc_seed": 2}
    )
    assert other_seed["cache"]["hit"] is False


def test_probabilistic_request_on_deterministic_graph_shares_cell(app):
    digest = register_fig1(app)
    base = {"graph": digest, "algorithm": "G_All", "k": 2, "wait": True}
    status, det = app.place_sync(base)
    assert status == 200
    # No registered probabilities ⇒ the model resolves to deterministic
    # and must hit the deterministic cache cell, not fork it.
    status, prob = app.place_sync({**base, "model": "live-edge"})
    assert prob["cache"]["hit"] is True
    assert prob["result"] == det["result"]
    assert "model" not in prob["request"]


def test_probabilistic_prefix_reuse_rescores_with_the_model(app):
    _, reg = app.handle_register_graph(
        {"dataset": "fig10", "edge_prob": 0.7}
    )
    digest = reg["digest"]
    body = {
        "graph": digest,
        "algorithm": "G_All",
        "k": 4,
        "model": "live-edge",
        "trials": 8,
        "mc_seed": 3,
        "wait": True,
    }
    status, full = app.place_sync(body)
    assert status == 200
    status, sliced = app.place_sync({**body, "k": 1})
    assert sliced["cache"]["hit"] and sliced["cache"]["kind"] == "prefix"
    status, direct_app = app.place_sync({**body, "k": 1})
    # Derived entry was re-cached under its own probabilistic key.
    assert direct_app["cache"]["kind"] == "exact"
    # And the derived numbers equal a from-scratch k=1 run.
    fresh = ServiceApp(workers=1, warm_backends=False)
    try:
        fresh.handle_register_graph({"dataset": "fig10", "edge_prob": 0.7})
        status, direct = fresh.place_sync({**body, "k": 1})
    finally:
        fresh.close()
    assert sliced["result"]["filters"] == direct["result"]["filters"]
    assert sliced["result"]["phi"] == direct["result"]["phi"]
    assert (
        sliced["result"]["filter_ratio"] == direct["result"]["filter_ratio"]
    )


def test_trials_capped_per_request(app):
    from repro.service.app import MAX_TRIALS, RequestError

    _, reg = app.handle_register_graph({"dataset": "fig1", "edge_prob": 0.5})
    body = {
        "graph": reg["digest"], "algorithm": "G_All", "k": 1,
        "model": "live-edge", "trials": MAX_TRIALS + 1,
    }
    with pytest.raises(RequestError):
        app.handle_placement(body)


def test_world_caches_are_bounded():
    from repro.propagation.model import build_model
    from repro.propagation.sampling import (
        MAX_WORLD_SETS_PER_GRAPH,
        _worlds_cache,
        get_worlds,
    )

    graph = CGraph([("s", "a"), ("s", "b"), ("a", "c"), ("b", "c")])
    for seed in range(MAX_WORLD_SETS_PER_GRAPH + 5):
        get_worlds(
            graph, build_model("live-edge", edge_prob=0.5, seed=seed, trials=2)
        )
    assert len(_worlds_cache[graph]) == MAX_WORLD_SETS_PER_GRAPH
    # Eviction is results-neutral: a rebuilt world set is bit-identical.
    model = build_model("live-edge", edge_prob=0.5, seed=0, trials=2)
    masks = [bytes(m) for m in get_worlds(graph, model).masks]
    for seed in range(1, MAX_WORLD_SETS_PER_GRAPH + 5):
        get_worlds(
            graph, build_model("live-edge", edge_prob=0.5, seed=seed, trials=2)
        )
    assert [bytes(m) for m in get_worlds(graph, model).masks] == masks


def test_algorithms_endpoint_reports_models(app):
    _, doc = app.handle_algorithms()
    assert doc["models"] == ["deterministic", "live-edge", "per-copy"]
    by_name = {row["name"]: row for row in doc["algorithms"]}
    assert by_name["G_All"]["model_aware"] is True
    assert by_name["Rand_K"]["model_aware"] is False


# ----------------------------------------------------------------------
# .fpc ingestion and plan persistence (the streamed registration route)
# ----------------------------------------------------------------------


def test_register_fpc_roundtrip(tmp_path):
    from repro.graphs.largescale import save_compiled, scale_dag

    graph = scale_dag(0.001, seed=3)
    graph.compiled().reach_counts()  # persist the warmed counts too
    fpc = save_compiled(graph, tmp_path / "tiny.fpc")

    app = small_app()
    try:
        status, doc = app.handle_register_graph(
            {"fpc_path": str(fpc), "name": "tiny"}
        )
        assert status == 201 and doc["created"]
        assert doc["name"] == "tiny"
        assert doc["nodes"] == graph.number_of_nodes()
        assert doc["is_dag"] is True
        # Idempotent: the same .fpc lands on the same digest.
        status, again = app.handle_register_graph({"fpc_path": str(fpc)})
        assert status == 200 and not again["created"]
        assert again["digest"] == doc["digest"]
        # The restored counts rode along: no re-warm needed.
        entry = app.store.get(doc["digest"])
        assert entry.graph.compiled()._reach_counts is not None
        # And the entry serves placements like any other.
        status, result = app.place_sync(
            {"graph": doc["digest"], "algorithm": "G_All", "k": 2}
        )
        assert status == 200
        assert len(result["result"]["filters"]) == 2
    finally:
        app.close()


def test_register_graph_body_exclusivity(tmp_path, app):
    from repro.service.app import RequestError

    for body in (
        {},
        {"dataset": "fig1", "fpc_path": "x"},
        {"edges": "a b", "fpc_path": "x"},
        {"fpc_path": 7},
        {"fpc_path": str(tmp_path / "missing.fpc")},
    ):
        with pytest.raises(RequestError) as err:
            app.handle_register_graph(body)
        assert err.value.status == 400


def test_store_persist_dir_roundtrip(tmp_path):
    persist = tmp_path / "plans"
    store = GraphStore(persist_dir=persist)
    entry, created = store.register_dataset("fig1")
    assert created and store.persisted == 1
    snapshot = persist / f"{entry.digest}.fpc"
    assert (snapshot / "meta.json").is_file()
    assert (snapshot / "store.json").is_file()
    # Warming at registration persisted the reach counts with the plan.
    assert (snapshot / "reach_counts.bin").is_file()
    # Re-registration is a no-op on disk.
    store.register_dataset("fig1")
    assert store.persisted == 1

    restored = GraphStore(persist_dir=persist)
    assert restored.restored == 1 and len(restored) == 1
    back = restored.get(entry.digest)
    assert back.name == entry.name
    assert back.graph.number_of_nodes() == entry.graph.number_of_nodes()
    assert back.graph.compiled()._reach_counts is not None
    assert sorted(map(repr, back.graph.edges())) == sorted(
        map(repr, entry.graph.edges())
    )
    stats = restored.stats()
    assert stats["restored_plans"] == 1


def test_persist_dir_skips_probabilistic_and_cyclic(tmp_path):
    persist = tmp_path / "plans"
    store = GraphStore(persist_dir=persist, warm_backends=False)
    store.register_dataset("fig1", probabilities=0.5)
    cyclic = CGraph([("a", "b"), ("b", "a")], sources=["a"])
    store.register_graph(cyclic, name="loop", spec={"kind": "edges"})
    assert store.persisted == 0
    assert not list(persist.glob("*.fpc"))
