"""The observability layer: tracer, metrics registry, instrumentation.

Covers the :mod:`repro.obs` contract the rest of the stack leans on:
span nesting and timing, histogram bucket edges, exposition-format
validity, the disabled-path no-op guarantee, and the counter semantics
``InstrumentedBackend`` inherited from the bench ``CountingBackend``.
"""

from __future__ import annotations

import json
import math
import re
import time

import pytest

from repro.backends.registry import get_backend
from repro.obs.instrument import (
    EVALUATION_KINDS,
    InstrumentedBackend,
    evaluation_counter,
    incremental_count,
    sweep_count,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    Counter,
    MetricsRegistry,
)
from repro.obs.trace import (
    TRACER,
    Tracer,
    chrome_trace,
    current_request_id,
    format_trace,
    set_request_id,
    span,
)


@pytest.fixture(autouse=True)
def _quiet_tracer():
    """Every test starts and ends with the tracer disabled and empty."""
    TRACER.disable()
    TRACER.clear()
    yield
    TRACER.disable()
    TRACER.clear()


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------


def test_span_nesting_and_timing():
    TRACER.enable()
    with TRACER.trace(trace_id="t-nest") as trace:
        with span("outer", label="x") as outer:
            time.sleep(0.002)
            with span("inner.a"):
                time.sleep(0.002)
            with span("inner.b"):
                pass
    assert trace.trace_id == "t-nest"
    assert [s.name for s in trace.roots] == ["outer"]
    assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
    # Timing is monotonic: parents contain their children, offsets grow.
    a, b = outer.children
    assert outer.duration >= a.duration + b.duration
    assert a.start_offset >= outer.start_offset
    assert b.start_offset >= a.start_offset + a.duration
    assert trace.duration >= outer.duration
    assert TRACER.get("t-nest") is trace


def test_implicit_trace_from_root_span():
    TRACER.enable()
    with span("lonely"):
        pass
    trace = TRACER.last()
    assert trace is not None and trace.implicit
    assert [s.name for s in trace.roots] == ["lonely"]
    assert trace.duration >= trace.roots[0].duration


def test_span_attrs_and_exports():
    TRACER.enable()
    with TRACER.trace(trace_id="t-export", command="test") as trace:
        with span("work", k=3) as s:
            s.set("result", "ok")
    doc = trace.to_dict()
    assert doc["trace_id"] == "t-export"
    assert doc["spans"][0]["attrs"] == {"k": 3, "result": "ok"}

    tree = format_trace(trace)
    assert "t-export" in tree and "work" in tree and "k=3" in tree

    chrome = chrome_trace(trace)
    assert chrome["metadata"]["trace_id"] == "t-export"
    (event,) = chrome["traceEvents"]
    assert event["ph"] == "X" and event["name"] == "work"
    assert event["dur"] >= 0
    json.dumps(chrome)  # must be JSON-serializable as-is


def test_tracer_ring_buffer_evicts_oldest():
    tracer = Tracer(max_traces=2)
    tracer.enable()
    for i in range(3):
        with tracer.trace(trace_id=f"t-{i}"):
            pass
    assert tracer.get("t-0") is None
    assert [t.trace_id for t in tracer.traces()] == ["t-1", "t-2"]


def test_disabled_tracer_is_noop():
    assert not TRACER.enabled
    s1 = span("anything", big=1)
    s2 = span("else")
    assert s1 is s2  # the shared no-op object: no allocation per call
    with s1 as inside:
        inside.set("ignored", True)
    assert TRACER.last() is None


def test_exception_unwinds_spans():
    TRACER.enable()
    with pytest.raises(RuntimeError):
        with TRACER.trace(trace_id="t-boom") as trace:
            with span("outer"):
                with span("inner"):
                    raise RuntimeError("boom")
    assert TRACER.get("t-boom") is trace
    # A later trace still works — the thread state was restored.
    with TRACER.trace(trace_id="t-after") as after:
        with span("fine"):
            pass
    assert [s.name for s in after.roots] == ["fine"]


def test_request_id_context():
    assert current_request_id() is None
    set_request_id("req-1")
    assert current_request_id() == "req-1"
    set_request_id(None)
    assert current_request_id() is None


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


def test_counter_semantics():
    reg = MetricsRegistry()
    c = reg.counter("t_total", "help", labels=("kind",))
    c.inc(kind="a")
    c.inc(2, kind="a")
    c.inc(kind="b")
    assert c.value(kind="a") == 3
    assert c.value(kind="b") == 1
    with pytest.raises(ValueError):
        c.inc(-1, kind="a")
    with pytest.raises(ValueError):
        c.inc(kind="a", extra="nope")
    c.set_total(10, kind="a")  # mirror-at-scrape overwrite
    assert c.value(kind="a") == 10


def test_histogram_bucket_edges():
    reg = MetricsRegistry()
    h = reg.histogram("t_seconds", "help", buckets=(0.1, 1.0, 10.0))
    # le is inclusive: a value exactly on an edge lands in that bucket.
    h.observe(0.1)
    h.observe(0.5)
    h.observe(1.0)
    h.observe(5.0)
    h.observe(100.0)  # beyond the last edge: +Inf only
    cumulative = h.bucket_counts()
    assert cumulative[0.1] == 1
    assert cumulative[1.0] == 3
    assert cumulative[10.0] == 4
    assert cumulative[math.inf] == 5
    assert h.count() == 5
    assert h.sum() == pytest.approx(106.6)


def test_default_buckets_cover_microseconds_to_seconds():
    assert DEFAULT_BUCKETS[0] == pytest.approx(1e-6)
    assert DEFAULT_BUCKETS[-1] == pytest.approx(10 ** 1.5)
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


def test_registry_get_or_create_and_mismatch():
    reg = MetricsRegistry()
    c1 = reg.counter("t_total", "help", labels=("kind",))
    c2 = reg.counter("t_total", "other help", labels=("kind",))
    assert c1 is c2  # same family object, no coordination needed
    with pytest.raises(ValueError):
        reg.gauge("t_total")  # type mismatch
    with pytest.raises(ValueError):
        reg.counter("t_total", labels=("other",))  # label mismatch


EXPOSITION_LINE = re.compile(
    r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \S+)$"
)


def test_render_is_valid_exposition():
    reg = MetricsRegistry()
    reg.counter("t_total", "a counter", labels=("kind",)).inc(kind="x")
    reg.gauge("t_depth", "a gauge").set(7)
    reg.histogram("t_seconds", "a histogram", buckets=(1.0,)).observe(0.5)
    reg.counter("t_unused_total", "no samples: omitted entirely")
    text = reg.render()
    assert text.endswith("\n")
    for line in text.rstrip("\n").split("\n"):
        assert EXPOSITION_LINE.match(line), f"bad exposition line: {line!r}"
    assert '# TYPE t_total counter' in text
    assert 't_total{kind="x"} 1' in text
    assert "t_depth 7" in text
    # Histograms render cumulatively with the +Inf bucket == _count.
    assert 't_seconds_bucket{le="1"} 1' in text
    assert 't_seconds_bucket{le="+Inf"} 1' in text
    assert "t_seconds_sum 0.5" in text
    assert "t_seconds_count 1" in text
    assert "t_unused_total" not in text


def test_label_values_are_escaped():
    reg = MetricsRegistry()
    c = reg.counter("t_total", "", labels=("path",))
    c.inc(path='a"b\\c\nd')
    (sample,) = c.samples()
    assert sample == 't_total{path="a\\"b\\\\c\\nd"} 1'


# ----------------------------------------------------------------------
# InstrumentedBackend (the CountingBackend contract, kept)
# ----------------------------------------------------------------------


def test_counting_alias_is_instrumented_backend():
    from repro.bench.instrument import CountingBackend, CountingGainSession
    from repro.obs.instrument import InstrumentedGainSession

    assert CountingBackend is InstrumentedBackend
    assert CountingGainSession is InstrumentedGainSession


def test_instrumented_backend_counts_toy_run(fig1):
    backend = InstrumentedBackend(get_backend("python"))
    backend.marginal_gains(fig1)
    backend.marginal_gains_ids(fig1)  # id fast path: same counter
    backend.total_receipts(fig1)
    backend.warm(fig1)  # preprocessing: never counted
    session = backend.gain_session(fig1)
    session.gains()  # a copy, not a sweep: uncounted
    session.gain_id(0)
    session.add_filter_id(0)
    assert backend.counts["marginal_gains"] == 2
    assert backend.counts["total_receipts"] == 1
    assert backend.counts["session_init"] == 1
    assert backend.counts["session_refresh"] == 1
    assert backend.counts["session_update"] == 1
    assert backend.sweep_evaluations() == 4
    assert backend.incremental_evaluations() == 2
    assert backend.total_evaluations() == 6
    backend.reset()
    assert backend.total_evaluations() == 0


def test_instrumented_backend_matches_inner_results(fig1):
    inner = get_backend("python")
    wrapped = InstrumentedBackend(inner)
    assert wrapped.marginal_gains(fig1) == inner.marginal_gains(fig1)
    assert wrapped.total_receipts(fig1, ["z2"]) == inner.total_receipts(
        fig1, ["z2"]
    )


def test_publish_flushes_deltas_once(fig1):
    reg = MetricsRegistry()
    backend = InstrumentedBackend(get_backend("python"))
    backend.marginal_gains(fig1)
    backend.marginal_gains(fig1)
    backend.publish(reg)
    counter = evaluation_counter(reg)
    assert counter.value(kind="marginal_gains", backend="python") == 2
    backend.publish(reg)  # no new work: publish must not double count
    assert counter.value(kind="marginal_gains", backend="python") == 2
    backend.total_receipts(fig1)
    backend.publish(reg)
    assert counter.value(kind="total_receipts", backend="python") == 1


def test_no_spans_recorded_when_tracer_disabled(fig1):
    backend = InstrumentedBackend(get_backend("python"))
    backend.marginal_gains(fig1)
    assert TRACER.last() is None  # counted, but not traced
    TRACER.enable()
    with TRACER.trace(trace_id="t-sweeps") as trace:
        backend.marginal_gains(fig1)
        session = backend.gain_session(fig1)
        session.gain_id(0)  # incremental ops stay span-free always
    names = [s.name for s in trace.roots]
    assert names == ["backend.marginal_gains", "backend.session_init"]


def test_toy_suite_counter_regression():
    """The bench counters that docs/benchmarks.md explains must hold."""
    from repro.bench.harness import run_suite
    from repro.bench.scenarios import get_suite

    records = run_suite(get_suite("toy", backends=("python",)))
    by_alg = {}
    for r in records:
        if r.scenario.dataset == "fig10":
            by_alg[r.scenario.algorithm] = r.evaluations
    # Eager G_All: one marginal-gains sweep per placed filter; lazy:
    # one session_init sweep plus incremental session traffic.
    assert sweep_count(by_alg["G_All"]) == 3
    assert incremental_count(by_alg["G_All"]) == 0
    assert sweep_count(by_alg["G_All_lazy"]) == 1
    assert incremental_count(by_alg["G_All_lazy"]) > 0
    assert set(by_alg["G_All"]) == set(EVALUATION_KINDS)


def test_celf_publishes_heap_metrics(fig1):
    from repro.core.registry import get_algorithm

    pops = REGISTRY.counter("fp_celf_heap_pops_total")
    updates = REGISTRY.counter("fp_celf_updates_total")
    before_pops, before_updates = pops.value(), updates.value()
    algorithm = get_algorithm("G_All", strategy="lazy")
    result = algorithm.place(fig1, 2)
    assert len(result.filters) >= 1  # fig1 runs out of positive gains
    assert pops.value() > before_pops
    assert updates.value() == before_updates + len(result.filters)


def test_sampling_world_cache_metrics():
    from repro.propagation.model import build_model
    from repro.propagation.sampling import get_worlds
    from tests.conftest import random_dag

    graph = random_dag(3)
    model = build_model("live-edge", edge_prob=0.5, trials=4, seed=11)
    counter = REGISTRY.counter(
        "fp_sampling_world_cache_total", labels=("outcome",)
    )
    miss0 = counter.value(outcome="miss")
    hit0 = counter.value(outcome="hit")
    get_worlds(graph, model)
    get_worlds(graph, model)  # second lookup hits the memo
    assert counter.value(outcome="miss") == miss0 + 1
    assert counter.value(outcome="hit") == hit0 + 1


# ----------------------------------------------------------------------
# CLI --trace / --profile
# ----------------------------------------------------------------------


def test_cli_place_trace_tree_sums_to_wall_clock(capsys):
    from repro.cli import main

    assert main([
        "place", "--dataset", "fig10", "-k", "3",
        "--backend", "python", "--trace",
    ]) == 0
    out = capsys.readouterr().out
    total = float(re.search(r"trace trace-\d+\s+\(([\d.]+) ms\)", out).group(1))
    phases = {
        name: float(ms)
        for name, ms in re.findall(r"─ (place\.\w+)\s+([\d.]+) ms", out)
    }
    assert set(phases) == {"place.load", "place.solve", "place.score"}
    assert sum(phases.values()) == pytest.approx(total, rel=0.10)


def test_cli_place_profile_writes_chrome_trace(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "run.trace.json"
    assert main([
        "place", "--dataset", "fig10", "-k", "2",
        "--backend", "python", "--profile", str(path),
    ]) == 0
    doc = json.loads(path.read_text())
    names = {event["name"] for event in doc["traceEvents"]}
    assert {"place.load", "place.solve", "place.score"} <= names
    assert all(event["ph"] == "X" for event in doc["traceEvents"])


def test_cli_trace_flag_does_not_leak_enabled_state(capsys):
    from repro.cli import main

    assert not TRACER.enabled
    main(["place", "--dataset", "fig10", "-k", "1",
          "--backend", "python", "--trace"])
    assert not TRACER.enabled
