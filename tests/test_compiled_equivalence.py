"""Cross-layer equivalence: dict-path oracle vs the compiled path.

The compile-once refactor rewired every layer — engine, backends,
incremental sessions, algorithms — onto the interned-id/CSR view.  This
suite pins the semantics to the pre-refactor dict engine
(:mod:`oracle_dictpath`, kept in the test tree only): identical
placements and objectives across the full algorithm × strategy × backend
matrix on **every** built-in dataset (scaled down where generation or
oracle sweeps would otherwise dominate the test run), and identical raw
sweep numbers on assorted filter sets.

The oracle never touches ``repro.backends`` or ``CGraph.compiled()``, so
this is an independent derivation, not a self-comparison — and the whole
module is NumPy-free unless NumPy is installed, which is how the no-numpy
CI job proves the compiled layer is dependency-free.
"""

from __future__ import annotations

import pytest

import oracle_dictpath as oracle
from repro.backends.registry import available_backends, use_backend
from repro.core.objective import objective_value
from repro.core.registry import STRATEGY_NAMES, get_algorithm
from repro.datasets.registry import DATASET_NAMES, get_dataset

#: Every built-in dataset, scaled so oracle dict sweeps stay test-sized.
DATASET_SPECS: dict[str, dict] = {
    "synthetic-sparse": {"seed": 0, "scale": 0.25},
    "synthetic-dense": {"seed": 0, "scale": 0.2},
    "quote": {"seed": 0, "scale": 0.3},
    "twitter": {"seed": 0, "scale": 0.02},
    "citation": {"seed": 0, "scale": 0.1},
    "scale-dag": {"seed": 0, "scale": 0.001},
    "fig1": {},
    "fig2": {},
    "fig3": {},
    "fig10": {},
}

K = 5

_graphs: dict[str, object] = {}


def dataset_graph(name: str):
    if name not in _graphs:
        _graphs[name] = get_dataset(name, **DATASET_SPECS[name])
    return _graphs[name]


def test_every_builtin_dataset_is_covered():
    assert set(DATASET_SPECS) == set(DATASET_NAMES)


@pytest.mark.parametrize("dataset", sorted(DATASET_SPECS))
@pytest.mark.parametrize("algorithm", sorted(oracle.ORACLE_PLACERS))
@pytest.mark.parametrize("strategy", STRATEGY_NAMES)
@pytest.mark.parametrize("backend", available_backends())
def test_matrix_placements_match_dict_oracle(
    dataset, algorithm, strategy, backend
):
    graph = dataset_graph(dataset)
    expected = oracle.ORACLE_PLACERS[algorithm](graph, K)

    instance = get_algorithm(algorithm, strategy=strategy, backend=backend)
    with use_backend(backend):
        result = instance.place(graph, K)

    assert result.filters == expected, (
        f"{dataset}/{algorithm}/{strategy}/{backend} diverged from the "
        "dict-path oracle"
    )
    # Objectives agree too: the compiled Φ equals the oracle's dict Φ.
    oracle_objective = oracle.phi_dict(graph, ()) - oracle.phi_dict(
        graph, expected
    )
    assert (
        objective_value(graph, result.filters, backend=backend)
        == oracle_objective
    )


@pytest.mark.parametrize("dataset", sorted(DATASET_SPECS))
@pytest.mark.parametrize("backend", available_backends())
def test_sweep_numbers_match_dict_oracle(dataset, backend):
    from repro.backends.registry import get_backend

    graph = dataset_graph(dataset)
    impl = get_backend(backend)
    # ∅ plus two growing filter sets drawn from the oracle's own picks.
    prefix = oracle.greedy_all_dict(graph, 4)
    for cut in (0, 2, len(prefix)):
        filters = prefix[:cut]
        assert impl.marginal_gains(graph, filters) == oracle.marginal_gains_dict(
            graph, filters
        )
        assert impl.simplified_impacts(
            graph, filters
        ) == oracle.simplified_impacts_dict(graph, filters)
        assert impl.node_receipts(graph, filters) == oracle.node_receipts_dict(
            graph, filters
        )
        # The id fast path is the same numbers in rank order.
        compiled = graph.compiled()
        ids = compiled.to_ids(filters)
        gains = impl.marginal_gains_ids(graph, ids)
        assert list(gains) == [
            oracle.marginal_gains_dict(graph, filters)[v]
            for v in compiled.nodes
        ]


@pytest.mark.parametrize("backend", available_backends())
def test_gain_session_id_path_matches_oracle(backend):
    """Drive a session exclusively through ids; compare every state."""
    from repro.backends.registry import get_backend

    graph = dataset_graph("fig10")
    compiled = graph.compiled()
    session = get_backend(backend).gain_session(graph, ())
    placed: list = []
    for _ in range(4):
        gains = session.gains_ids()
        assert list(gains) == [
            oracle.marginal_gains_dict(graph, placed)[v]
            for v in compiled.nodes
        ]
        best = max(range(compiled.n), key=lambda v: (gains[v], -v))
        if gains[best] <= 0:
            break
        changed = session.add_filter_id(best)
        assert best in set(changed)
        placed.append(compiled.nodes[best])
        assert session.gain_id(best) == 0
    assert session.filters == frozenset(placed)
