"""The pre-refactor dict-path engine, preserved verbatim as a test oracle.

Before the compile-once refactor, every sweep walked ``CGraph``'s
dict-of-tuples adjacency with node-keyed dictionaries.  These are those
implementations — the seed's ``item_receipts`` / ``absorbing_suffix`` /
``marginal_gains`` / ``simplified_impacts`` loops and the greedy selection
loops built on them — kept *in the test tree only* so the cross-layer
equivalence suite can assert that the interned-id/CSR path produces
bit-identical numbers and placements on every dataset, algorithm,
strategy and backend.

Nothing here may import from ``repro.backends`` or touch
``CGraph.compiled()``: the whole point is an independent derivation.
"""

from __future__ import annotations

from collections.abc import Collection
from typing import Hashable

from repro.graphs.cgraph import CGraph

Node = Hashable


def item_receipts_dict(
    graph: CGraph,
    origin: Node,
    filters: Collection[Node] = (),
) -> dict[Node, int]:
    """Seed ``item_receipts``: one forward dict pass per item."""
    filter_set = set(filters)
    order = graph.topological_order()
    received: dict[Node, int] = dict.fromkeys(order, 0)
    for v in order:
        if v == origin:
            emit = 1
        else:
            count = received[v]
            if count == 0:
                continue
            emit = 1 if v in filter_set else count
        if emit:
            for child in graph.successors(v):
                received[child] += emit
    return received


def node_receipts_dict(
    graph: CGraph,
    filters: Collection[Node] = (),
) -> dict[Node, int]:
    """Seed ``node_receipts``: per-item dict sweeps summed over sources."""
    totals: dict[Node, int] = dict.fromkeys(graph.nodes(), 0)
    for source in graph.sources:
        per_item = item_receipts_dict(graph, source, filters)
        for node, count in per_item.items():
            if count:
                totals[node] += count
    return totals


def phi_dict(graph: CGraph, filters: Collection[Node] = ()) -> int:
    """Seed ``Φ(A, V)``: total received copies, exact big ints."""
    return sum(node_receipts_dict(graph, filters).values())


def absorbing_suffix_dict(
    graph: CGraph,
    filters: Collection[Node] = (),
) -> dict[Node, int]:
    """Seed ``W``: one backward dict pass."""
    filter_set = set(filters)
    order = graph.topological_order()
    w: dict[Node, int] = dict.fromkeys(order, 0)
    for v in reversed(order):
        acc = 0
        for u in graph.successors(v):
            acc += 1
            if u not in filter_set:
                acc += w[u]
        w[v] = acc
    return w


def marginal_gains_dict(
    graph: CGraph,
    filters: Collection[Node] = (),
) -> dict[Node, int]:
    """Seed ``I(v | A)``: one W pass plus one ψ pass per source."""
    filter_set = set(filters)
    order = graph.topological_order()
    w = absorbing_suffix_dict(graph, filter_set)
    gains: dict[Node, int] = dict.fromkeys(graph.nodes(), 0)
    for origin in graph.sources:
        psi = item_receipts_dict(graph, origin, filter_set)
        for v in order:
            if v in filter_set:
                continue
            surplus = psi[v] - 1
            if surplus > 0 and w[v]:
                gains[v] += surplus * w[v]
    return gains


def simplified_impacts_dict(
    graph: CGraph,
    filters: Collection[Node] = (),
) -> dict[Node, int]:
    """Seed ``I'(v) = Prefix(v) × dout(v)``."""
    order = graph.topological_order()
    totals: dict[Node, int] = dict.fromkeys(order, 0)
    for origin in graph.sources:
        psi = item_receipts_dict(graph, origin, filters)
        for v in order:
            totals[v] += psi[v]
    return {v: totals[v] * graph.out_degree(v) for v in graph.nodes()}


# ----------------------------------------------------------------------
# Greedy selection loops (seed argmax semantics: highest gain, ties to
# the lowest graph.nodes() rank)
# ----------------------------------------------------------------------


def greedy_all_dict(graph: CGraph, k: int) -> tuple[Node, ...]:
    """Seed eager ``Greedy_All``: one dict gain sweep per pick."""
    node_rank = {v: i for i, v in enumerate(graph.nodes())}
    chosen: list[Node] = []
    current: set[Node] = set()
    for _ in range(k):
        gains = marginal_gains_dict(graph, current)
        best: Node | None = None
        best_gain = 0
        for v, gain in gains.items():
            if v in current or gain <= 0:
                continue
            if (
                best is None
                or gain > best_gain
                or (gain == best_gain and node_rank[v] < node_rank[best])
            ):
                best = v
                best_gain = gain
        if best is None:
            break
        current.add(best)
        chosen.append(best)
    return tuple(chosen)


def greedy_max_dict(graph: CGraph, k: int) -> tuple[Node, ...]:
    """Seed ``Greedy_Max``: rank once by ``I(v | ∅)``."""
    node_rank = {v: i for i, v in enumerate(graph.nodes())}
    scored = marginal_gains_dict(graph, ())
    ranked = sorted(
        (v for v, gain in scored.items() if gain > 0),
        key=lambda v: (-scored[v], node_rank[v]),
    )
    return tuple(ranked[:k])


def greedy_l_dict(graph: CGraph, k: int) -> tuple[Node, ...]:
    """Seed ``Greedy_L``: one ``I'`` dict sweep per pick."""
    node_rank = {v: i for i, v in enumerate(graph.nodes())}
    order = graph.topological_order()
    chosen: list[Node] = []
    current: set[Node] = set()
    for _ in range(k):
        scores = simplified_impacts_dict(graph, current)
        best: Node | None = None
        best_score = 0
        for v in order:
            if v in current:
                continue
            score = scores[v]
            if score <= 0:
                continue
            if (
                best is None
                or score > best_score
                or (score == best_score and node_rank[v] < node_rank[best])
            ):
                best = v
                best_score = score
        if best is None:
            break
        current.add(best)
        chosen.append(best)
    return tuple(chosen)


def greedy_one_dict(graph: CGraph, k: int) -> tuple[Node, ...]:
    """Seed ``Greedy_1``: rank by ``din × dout``."""
    node_rank = {v: i for i, v in enumerate(graph.nodes())}
    scores = {
        v: graph.in_degree(v) * graph.out_degree(v) for v in graph.nodes()
    }
    ranked = sorted(
        (v for v, score in scores.items() if score > 0),
        key=lambda v: (-scores[v], node_rank[v]),
    )
    return tuple(ranked[:k])


ORACLE_PLACERS = {
    "G_All": greedy_all_dict,
    "G_Max": greedy_max_dict,
    "G_1": greedy_one_dict,
    "G_L": greedy_l_dict,
}
