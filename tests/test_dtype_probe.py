"""The shared overflow probe: boundary cases and the exact fallback.

:func:`repro.backends.probe.pick_representation` is the single decision
point every accelerated path consults before committing to fixed-width
arithmetic — the numpy plan probe, the sampled-state builder, and the
bit-packed aggregate sweeps.  These tests pin the ladder's exact
boundaries (int32 / int64 / exact), its treatment of non-finite probe
values, and — end to end — that a graph whose receipt counts blow past
int64 makes the bitpack tier fall back to exact big-int evaluation that
still matches the dict-path oracle bit for bit.
"""

from __future__ import annotations

import math

import pytest

from conftest import diamond_chain
from repro.backends.probe import (
    NARROW_LIMIT,
    OVERFLOW_LIMIT,
    REPRESENTATIONS,
    ProbeVerdict,
    pick_representation,
)


def test_ladder_constants():
    assert OVERFLOW_LIMIT == float(2**62)
    assert NARROW_LIMIT == float(2**30)
    assert REPRESENTATIONS == ("int32", "int64", "exact")


@pytest.mark.parametrize(
    "bound,expected",
    [
        (0.0, "int32"),
        (1.0, "int32"),
        (float(2**30 - 1), "int32"),
        (float(2**30), "int64"),  # narrow boundary is exclusive
        (float(2**31), "int64"),
        (float(2**62 - 512), "int64"),  # largest float64 below the limit
        (float(2**62), "exact"),  # overflow boundary is inclusive
        (float(2**80), "exact"),
        (float("inf"), "exact"),
        (float("-inf"), "int32"),  # magnitude bound: negatives clamp to 0
    ],
)
def test_single_bound_boundaries(bound, expected):
    assert pick_representation(bound).representation == expected


def test_nan_bound_is_conclusive_evidence_of_overflow():
    verdict = pick_representation(1.0, float("nan"), 2.0)
    assert verdict.exact_only
    assert math.isnan(verdict.bound)


def test_multiple_bounds_take_the_worst():
    verdict = pick_representation(3.0, float(2**40), 7.0)
    assert verdict.representation == "int64"
    assert verdict.bound == float(2**40)
    assert pick_representation(3.0, 7.0).narrow


def test_empty_bounds_mean_nothing_overflows():
    verdict = pick_representation()
    assert verdict.representation == "int32"
    assert verdict.bound == 0.0


def test_custom_limits_are_honoured():
    assert (
        pick_representation(100.0, limit=64.0).representation == "exact"
    )
    assert (
        pick_representation(
            100.0, narrow_limit=1000.0
        ).representation
        == "int32"
    )


def test_verdict_flags_are_mutually_consistent():
    for representation in REPRESENTATIONS:
        verdict = ProbeVerdict(representation, 1.0)
        assert verdict.exact_only == (representation == "exact")
        assert verdict.narrow == (representation == "int32")


def test_bitpack_overflow_falls_back_to_exact_bigint():
    """Regression: popcount *totals* can overflow even though each packed
    word is fine — the probe must force the exact path before the bitset
    sweep commits to int64 accumulators."""
    numpy = pytest.importorskip("numpy")
    del numpy

    import oracle_dictpath as oracle
    from repro.backends.numpy_backend import NumpyBackend

    graph = diamond_chain(70)  # deepest receipts reach 2**70 > int64
    backend = NumpyBackend(tier="bitpack")
    plan = backend.plan_for(graph)
    assert plan.exact_only, (
        "the probe failed to flag a 2**70-receipt graph as exact-only"
    )
    filters = ("m10",)
    assert backend.marginal_gains(graph, filters) == (
        oracle.marginal_gains_dict(graph, filters)
    )
    assert backend.total_receipts(graph, filters) == oracle.phi_dict(
        graph, filters
    )


def test_python_bitpack_handles_huge_counts_natively():
    # The pure-python bitpack tier needs no fallback: its popcount
    # totals are unbounded ints.  Equivalence must hold far past int64.
    import oracle_dictpath as oracle
    from repro.backends.python_backend import PythonBackend

    graph = diamond_chain(70)
    backend = PythonBackend(tier="bitpack")
    assert backend.marginal_gains(graph) == oracle.marginal_gains_dict(
        graph
    )
