"""Differential fuzzing: bitpack vs lanes vs the dict-path oracle.

The bit-packed sweep tier answers every aggregate query from packed
source-reachability words — a different algorithm, not a different
implementation of the same loop — so it gets the adversarial treatment:
a fixed seeded corpus of random DAGs (:mod:`strategies`) is driven
through every query, algorithm, strategy, backend and sweep tier, and
each route must produce bit-identical integers and placements.

Three independent derivations are cross-checked per case:

* ``tier="bitpack"`` — aggregated popcount sweeps (the default);
* ``tier="lanes"`` — the historical one-lane-per-source formulation;
* :mod:`oracle_dictpath` — the pre-refactor dict engine, which touches
  neither ``repro.backends`` nor ``CGraph.compiled()``.

Probabilistic cases compare the two tiers over identical sampled worlds
(common random numbers), where results are exact summed integers and so
must match bit-for-bit, not approximately.  The whole module runs
without NumPy (the numpy axis simply drops out), which is how the
no-numpy CI job fuzzes the pure-Python engine alone.
"""

from __future__ import annotations

import pytest

import oracle_dictpath as oracle
from strategies import DagCase, standard_cases
from repro.backends.python_backend import TIERS
from repro.backends.registry import available_backends, build_backend
from repro.core.registry import STRATEGY_NAMES, get_algorithm
from repro.propagation.model import PropagationModel

CASES = standard_cases()
K = 4
TRIALS = 6  # below the pool threshold: the fuzz corpus stays in-process

_graphs: dict[str, object] = {}
_backends: dict[tuple[str, str], object] = {}


def case_graph(case: DagCase):
    if case.name not in _graphs:
        _graphs[case.name] = case.build()
    return _graphs[case.name]


def tier_backend(name: str, tier: str):
    if (name, tier) not in _backends:
        _backends[(name, tier)] = build_backend(name, tier=tier)
    return _backends[(name, tier)]


def case_filter_sets(case: DagCase):
    return [(), tuple(case.filter_pool(2)), tuple(case.filter_pool(5))]


def test_corpus_is_stable():
    # The corpus is part of the contract: a silent regeneration with
    # different parameters would quietly shrink coverage.
    assert len(CASES) == len(set(c.name for c in CASES)) == 12
    assert {c.seed for c in CASES} == set(
        range(CASES[0].seed, CASES[0].seed + 12)
    )


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
@pytest.mark.parametrize("backend_name", available_backends())
@pytest.mark.parametrize("tier", TIERS)
def test_sweep_numbers_match_dict_oracle(case, backend_name, tier):
    graph = case_graph(case)
    backend = tier_backend(backend_name, tier)
    for filters in case_filter_sets(case):
        assert backend.marginal_gains(
            graph, filters
        ) == oracle.marginal_gains_dict(graph, filters)
        assert backend.simplified_impacts(
            graph, filters
        ) == oracle.simplified_impacts_dict(graph, filters)
        assert backend.node_receipts(
            graph, filters
        ) == oracle.node_receipts_dict(graph, filters)
        assert backend.total_receipts(graph, filters) == oracle.phi_dict(
            graph, filters
        )


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
@pytest.mark.parametrize("algorithm", sorted(oracle.ORACLE_PLACERS))
@pytest.mark.parametrize("strategy", STRATEGY_NAMES)
@pytest.mark.parametrize("backend_name", available_backends())
@pytest.mark.parametrize("tier", TIERS)
def test_placements_match_dict_oracle(
    case, algorithm, strategy, backend_name, tier
):
    graph = case_graph(case)
    expected = oracle.ORACLE_PLACERS[algorithm](graph, K)
    backend = tier_backend(backend_name, tier)
    instance = get_algorithm(algorithm, strategy=strategy, backend=backend)
    result = instance.place(graph, K)
    assert result.filters == expected, (
        f"{case.name}/{algorithm}/{strategy}/{backend_name}/{tier} "
        "diverged from the dict-path oracle"
    )


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
@pytest.mark.parametrize("backend_name", available_backends())
def test_incremental_sessions_match_oracle_across_tiers(case, backend_name):
    graph = case_graph(case)
    pool = case.filter_pool(3)
    sessions = [
        tier_backend(backend_name, tier).gain_session(graph)
        for tier in TIERS
    ]
    placed: list = []
    for nxt in [None, *pool]:
        if nxt is not None:
            for session in sessions:
                session.add_filter(nxt)
            placed.append(nxt)
        expected = oracle.marginal_gains_dict(graph, placed)
        for tier, session in zip(TIERS, sessions):
            assert session.gains() == expected, (
                f"{case.name}/{backend_name}/{tier} session diverged "
                f"after placing {placed}"
            )


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
@pytest.mark.parametrize("mechanism", ("live-edge", "per-copy"))
def test_sampled_queries_bit_identical_across_tiers_and_backends(
    case, mechanism
):
    graph = case_graph(case)
    model = PropagationModel(
        mechanism=mechanism,
        probabilities=case.edge_probabilities(),
        trials=TRIALS,
        seed=case.seed,
    )
    filters = case_filter_sets(case)[1]
    filter_ids = graph.compiled().to_ids(filters)
    results = {}
    for backend_name in available_backends():
        for tier in TIERS:
            backend = tier_backend(backend_name, tier)
            results[(backend_name, tier)] = (
                list(
                    backend.sampled_marginal_gains_ids(
                        graph, filter_ids, model=model
                    )
                ),
                list(
                    backend.sampled_simplified_impacts_ids(
                        graph, filter_ids, model=model
                    )
                ),
                backend.sampled_total_receipts(graph, filters, model=model),
            )
    reference = results[("python", "lanes")]
    for key, value in results.items():
        assert value == reference, (
            f"{case.name}/{mechanism}: sampled results of {key} diverged "
            "from python/lanes over identical worlds"
        )


# ----------------------------------------------------------------------
# Blocked reachability warm: bit-equality for every engine × block ×
# worker combination (the out-of-core nreach sweep's contract).
# ----------------------------------------------------------------------

#: Block sizes straddling the lane-word boundaries: single-lane, partial
#: word, exact word, word+1, and larger-than-every-corpus-source-set.
REACH_BLOCKS = (1, 3, 64, 65, 1000)

#: Worker counts the sharded reduce is fuzzed at.
REACH_WORKERS = (1, 2, 4)


def _numpy_or_none():
    try:
        import numpy as np
    except ImportError:
        return None
    return np


def _oracle_reach_counts(graph) -> list[int]:
    """Dict-path oracle: per-source DFS over the successor dicts.

    ``nreach[v] = #{s : ψ_s(v) > 0}`` — sources with a ≥ 1-edge path to
    ``v`` — computed with none of the compiled machinery under test.
    """
    compiled = graph.compiled()
    counts = {v: 0 for v in graph.nodes()}
    for s in graph.sources:
        seen = set()
        stack = [s]
        while stack:
            for w in graph.successors(stack.pop()):
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        for v in seen:
            counts[v] += 1
    return [counts[v] for v in compiled.nodes]


def _numpy_plane_counts(compiled, block: int) -> "list[int] | None":
    """The NumPy plane engine's counts at ``block`` (None without NumPy).

    Drives the raw sweep, not :func:`warm_reach_counts` — the public
    entry caches on first call, which would collapse the block axis of
    the parametrization to whichever value ran first.
    """
    np = _numpy_or_none()
    if np is None:
        return None
    from repro.propagation.reach import (
        _as_int64,
        _plane_sweep_counts,
        _subtract_mark,
    )

    raw = _plane_sweep_counts(
        np,
        compiled.n,
        _as_int64(np, compiled.in_offsets),
        _as_int64(np, compiled.in_sources),
        _as_int64(np, compiled.topo_order),
        list(compiled.level_offsets),
        _as_int64(np, compiled.source_ids),
        block,
    )
    return _subtract_mark(np, raw, compiled).tolist()


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
@pytest.mark.parametrize("block", REACH_BLOCKS)
def test_blocked_reach_counts_bit_identical_across_blocks(case, block):
    from repro.graphs.compiled import (
        blocked_reach_counts,
        packed_reach_counts,
    )

    graph = case_graph(case)
    compiled = graph.compiled()
    monolithic = packed_reach_counts(compiled)
    assert monolithic == _oracle_reach_counts(graph)
    assert blocked_reach_counts(compiled, block) == monolithic
    plane = _numpy_plane_counts(compiled, block)
    if plane is not None:
        assert plane == monolithic


@pytest.mark.parametrize("workers", REACH_WORKERS)
def test_sharded_reach_counts_bit_identical_across_workers(workers):
    np = _numpy_or_none()
    if np is None:
        pytest.skip("sharding is the NumPy engine's axis")
    from repro.graphs.compiled import packed_reach_counts
    from repro.propagation.reach import _sharded_reach_counts

    for case in CASES:
        graph = case_graph(case)
        compiled = graph.compiled()
        if not compiled.source_ids:
            continue
        sharded = _sharded_reach_counts(np, compiled, 2, workers)
        assert sharded == packed_reach_counts(compiled), (
            f"{case.name}: sharded counts diverged at {workers} workers"
        )


def test_warm_reach_counts_caches_and_matches_backends():
    """The public entry: every backend's warm lands the identical list."""
    from repro.backends.registry import available_backends, build_backend
    from repro.graphs.compiled import packed_reach_counts
    from repro.propagation.reach import warm_reach_counts

    case = CASES[0]
    expected = None
    for backend_name in available_backends():
        graph = case.build()  # fresh graph: an unwarmed compiled cache
        compiled = graph.compiled()
        assert compiled._reach_counts is None
        build_backend(backend_name).warm(graph)
        assert compiled._reach_counts is not None
        assert warm_reach_counts(compiled) is compiled._reach_counts
        counts = list(compiled._reach_counts)
        assert counts == packed_reach_counts(compiled)
        if expected is None:
            expected = counts
        assert counts == expected
