"""Differential fuzzing: bitpack vs lanes vs the dict-path oracle.

The bit-packed sweep tier answers every aggregate query from packed
source-reachability words — a different algorithm, not a different
implementation of the same loop — so it gets the adversarial treatment:
a fixed seeded corpus of random DAGs (:mod:`strategies`) is driven
through every query, algorithm, strategy, backend and sweep tier, and
each route must produce bit-identical integers and placements.

Three independent derivations are cross-checked per case:

* ``tier="bitpack"`` — aggregated popcount sweeps (the default);
* ``tier="lanes"`` — the historical one-lane-per-source formulation;
* :mod:`oracle_dictpath` — the pre-refactor dict engine, which touches
  neither ``repro.backends`` nor ``CGraph.compiled()``.

Probabilistic cases compare the two tiers over identical sampled worlds
(common random numbers), where results are exact summed integers and so
must match bit-for-bit, not approximately.  The whole module runs
without NumPy (the numpy axis simply drops out), which is how the
no-numpy CI job fuzzes the pure-Python engine alone.
"""

from __future__ import annotations

import pytest

import oracle_dictpath as oracle
from strategies import DagCase, standard_cases
from repro.backends.python_backend import TIERS
from repro.backends.registry import available_backends, build_backend
from repro.core.registry import STRATEGY_NAMES, get_algorithm
from repro.propagation.model import PropagationModel

CASES = standard_cases()
K = 4
TRIALS = 6  # below the pool threshold: the fuzz corpus stays in-process

_graphs: dict[str, object] = {}
_backends: dict[tuple[str, str], object] = {}


def case_graph(case: DagCase):
    if case.name not in _graphs:
        _graphs[case.name] = case.build()
    return _graphs[case.name]


def tier_backend(name: str, tier: str):
    if (name, tier) not in _backends:
        _backends[(name, tier)] = build_backend(name, tier=tier)
    return _backends[(name, tier)]


def case_filter_sets(case: DagCase):
    return [(), tuple(case.filter_pool(2)), tuple(case.filter_pool(5))]


def test_corpus_is_stable():
    # The corpus is part of the contract: a silent regeneration with
    # different parameters would quietly shrink coverage.
    assert len(CASES) == len(set(c.name for c in CASES)) == 12
    assert {c.seed for c in CASES} == set(
        range(CASES[0].seed, CASES[0].seed + 12)
    )


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
@pytest.mark.parametrize("backend_name", available_backends())
@pytest.mark.parametrize("tier", TIERS)
def test_sweep_numbers_match_dict_oracle(case, backend_name, tier):
    graph = case_graph(case)
    backend = tier_backend(backend_name, tier)
    for filters in case_filter_sets(case):
        assert backend.marginal_gains(
            graph, filters
        ) == oracle.marginal_gains_dict(graph, filters)
        assert backend.simplified_impacts(
            graph, filters
        ) == oracle.simplified_impacts_dict(graph, filters)
        assert backend.node_receipts(
            graph, filters
        ) == oracle.node_receipts_dict(graph, filters)
        assert backend.total_receipts(graph, filters) == oracle.phi_dict(
            graph, filters
        )


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
@pytest.mark.parametrize("algorithm", sorted(oracle.ORACLE_PLACERS))
@pytest.mark.parametrize("strategy", STRATEGY_NAMES)
@pytest.mark.parametrize("backend_name", available_backends())
@pytest.mark.parametrize("tier", TIERS)
def test_placements_match_dict_oracle(
    case, algorithm, strategy, backend_name, tier
):
    graph = case_graph(case)
    expected = oracle.ORACLE_PLACERS[algorithm](graph, K)
    backend = tier_backend(backend_name, tier)
    instance = get_algorithm(algorithm, strategy=strategy, backend=backend)
    result = instance.place(graph, K)
    assert result.filters == expected, (
        f"{case.name}/{algorithm}/{strategy}/{backend_name}/{tier} "
        "diverged from the dict-path oracle"
    )


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
@pytest.mark.parametrize("backend_name", available_backends())
def test_incremental_sessions_match_oracle_across_tiers(case, backend_name):
    graph = case_graph(case)
    pool = case.filter_pool(3)
    sessions = [
        tier_backend(backend_name, tier).gain_session(graph)
        for tier in TIERS
    ]
    placed: list = []
    for nxt in [None, *pool]:
        if nxt is not None:
            for session in sessions:
                session.add_filter(nxt)
            placed.append(nxt)
        expected = oracle.marginal_gains_dict(graph, placed)
        for tier, session in zip(TIERS, sessions):
            assert session.gains() == expected, (
                f"{case.name}/{backend_name}/{tier} session diverged "
                f"after placing {placed}"
            )


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
@pytest.mark.parametrize("mechanism", ("live-edge", "per-copy"))
def test_sampled_queries_bit_identical_across_tiers_and_backends(
    case, mechanism
):
    graph = case_graph(case)
    model = PropagationModel(
        mechanism=mechanism,
        probabilities=case.edge_probabilities(),
        trials=TRIALS,
        seed=case.seed,
    )
    filters = case_filter_sets(case)[1]
    filter_ids = graph.compiled().to_ids(filters)
    results = {}
    for backend_name in available_backends():
        for tier in TIERS:
            backend = tier_backend(backend_name, tier)
            results[(backend_name, tier)] = (
                list(
                    backend.sampled_marginal_gains_ids(
                        graph, filter_ids, model=model
                    )
                ),
                list(
                    backend.sampled_simplified_impacts_ids(
                        graph, filter_ids, model=model
                    )
                ),
                backend.sampled_total_receipts(graph, filters, model=model),
            )
    reference = results[("python", "lanes")]
    for key, value in results.items():
        assert value == reference, (
            f"{case.name}/{mechanism}: sampled results of {key} diverged "
            "from python/lanes over identical worlds"
        )
