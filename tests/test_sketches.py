"""Bottom-k reachability sketches: exactness, error bounds, determinism.

The sketch tier's contract has three layers, pinned here from strongest
to weakest:

* **Exactness regime** — fewer sources than registers: every estimate
  *is* the exact reach count, so ``counts()`` must equal
  ``CompiledGraph.reach_counts()`` element-for-element on every built-in
  dataset.
* **Approximate regime** — registers overflow (the scale-dag's ~30%
  spontaneous sources blow past ``k`` quickly): the KMV estimator's
  two-sigma ``(1 ± ε)`` band is a ~95% statement, not a per-node
  guarantee, so the suite asserts a robust quantile of nodes inside the
  band rather than a worst case.
* **Byte reproducibility** — the NumPy lane merge and the pure-python
  fallback must produce bit-identical registers
  (:meth:`ReachSketches.register_bytes`), and two builds with the same
  ``(graph, k, seed)`` must agree byte-for-byte; this is what makes
  sketch placements independent of NumPy availability.
"""

from __future__ import annotations

import math

import pytest

from repro.datasets.registry import DATASET_NAMES, get_dataset
from repro.exceptions import CyclicGraphError, ParameterError
from repro.graphs.cgraph import CGraph
from repro.sketches.bottomk import (
    DEFAULT_SKETCH_K,
    EMPTY_REGISTER,
    ReachSketches,
    build_reach_sketches,
    epsilon_for_k,
    k_for_epsilon,
)

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except Exception:  # pragma: no cover - the no-numpy CI job
    HAVE_NUMPY = False

LANES = ("numpy", "python") if HAVE_NUMPY else ("python",)

#: Every built-in dataset, scaled to test size (mirrors the
#: compiled-equivalence suite's sizing).
DATASET_SPECS: dict[str, dict] = {
    "synthetic-sparse": {"seed": 0, "scale": 0.25},
    "synthetic-dense": {"seed": 0, "scale": 0.2},
    "quote": {"seed": 0, "scale": 0.3},
    "twitter": {"seed": 0, "scale": 0.02},
    "citation": {"seed": 0, "scale": 0.1},
    "scale-dag": {"seed": 0, "scale": 0.001},
    "fig1": {},
    "fig2": {},
    "fig3": {},
    "fig10": {},
}

_graphs: dict[str, object] = {}


def dataset_graph(name: str):
    if name not in _graphs:
        _graphs[name] = get_dataset(name, **DATASET_SPECS[name])
    return _graphs[name]


def overflow_graph():
    """A scale-dag rung whose ~30% spontaneous sources overflow small
    register files — the approximate-regime fixture."""
    return get_dataset("scale-dag", seed=0, scale=0.01)


def test_every_builtin_dataset_is_covered():
    assert set(DATASET_SPECS) == set(DATASET_NAMES)


# ----------------------------------------------------------------------
# The k ↔ epsilon correspondence
# ----------------------------------------------------------------------


def test_epsilon_for_k_matches_kmv_bound():
    assert epsilon_for_k(66) == pytest.approx(2.0 / math.sqrt(64))
    assert epsilon_for_k(DEFAULT_SKETCH_K) == pytest.approx(0.2540, abs=1e-4)


def test_epsilon_for_k_is_vacuous_below_four():
    assert epsilon_for_k(3) == 2.0
    assert epsilon_for_k(0) == 2.0


@pytest.mark.parametrize("eps", [0.05, 0.1, 0.25, 0.5, 1.0, 1.99])
def test_k_for_epsilon_inverts_the_bound(eps):
    k = k_for_epsilon(eps)
    assert epsilon_for_k(k) <= eps
    # Minimality: one register fewer would miss the target.
    assert k == 4 or epsilon_for_k(k - 1) > eps


def test_k_for_epsilon_floors_at_four():
    assert k_for_epsilon(2.0) == 4
    assert k_for_epsilon(100.0) == 4


@pytest.mark.parametrize("eps", [0.0, -0.5])
def test_k_for_epsilon_rejects_nonpositive(eps):
    with pytest.raises(ParameterError):
        k_for_epsilon(eps)


# ----------------------------------------------------------------------
# Build validation
# ----------------------------------------------------------------------


@pytest.mark.parametrize("k", [3, 0, -1, 4.0, "64"])
def test_build_rejects_bad_k(k):
    compiled = dataset_graph("fig1").compiled()
    with pytest.raises(ParameterError):
        build_reach_sketches(compiled, k=k)


def test_build_rejects_unknown_lanes():
    compiled = dataset_graph("fig1").compiled()
    with pytest.raises(ParameterError):
        build_reach_sketches(compiled, lanes="cuda")


@pytest.mark.skipif(HAVE_NUMPY, reason="needs the no-numpy environment")
def test_numpy_lanes_unavailable_without_numpy():  # pragma: no cover
    compiled = dataset_graph("fig1").compiled()
    with pytest.raises(ParameterError):
        build_reach_sketches(compiled, lanes="numpy")


def test_build_rejects_cycles():
    cyclic = CGraph([(0, 1), (1, 2), (2, 0)], sources=[0])
    with pytest.raises(CyclicGraphError):
        build_reach_sketches(cyclic.compiled())


# ----------------------------------------------------------------------
# Exactness regime: counts == reach_counts on every built-in dataset
# ----------------------------------------------------------------------


@pytest.mark.parametrize("lanes", LANES)
@pytest.mark.parametrize("dataset", sorted(DATASET_SPECS))
def test_exact_regime_counts_equal_reach_counts(dataset, lanes):
    graph = dataset_graph(dataset)
    compiled = graph.compiled()
    k = DEFAULT_SKETCH_K
    if len(graph.sources) >= k:
        k = len(graph.sources) + 1
    sketches = build_reach_sketches(compiled, k=k, seed=0, lanes=lanes)
    assert sketches.is_exact()
    exact = compiled.reach_counts()
    estimated = sketches.counts()
    assert len(estimated) == compiled.n
    for est, ref in zip(estimated, exact):
        assert est == float(ref)


def test_exact_regime_guaranteed_when_sources_fit():
    # k exceeds the source count, so no register file can overflow.
    graph = overflow_graph()
    k = len(graph.sources) + 1
    sketches = build_reach_sketches(graph.compiled(), k=k, seed=0)
    assert sketches.is_exact()


def test_overflow_graph_is_actually_approximate():
    graph = overflow_graph()
    assert len(graph.sources) > 16  # the regime the next tests rely on
    sketches = build_reach_sketches(graph.compiled(), k=16, seed=0)
    assert not sketches.is_exact()


# ----------------------------------------------------------------------
# Approximate regime: the (1 ± ε) band, quantile-style
# ----------------------------------------------------------------------


@pytest.mark.parametrize("k", [16, 32, 64])
def test_estimates_inside_two_sigma_band(k):
    graph = overflow_graph()
    compiled = graph.compiled()
    sketches = build_reach_sketches(compiled, k=k, seed=0)
    eps = epsilon_for_k(k)
    exact = compiled.reach_counts()
    estimated = sketches.counts()
    inside = total = 0
    for est, ref in zip(estimated, exact):
        if ref == 0:
            assert est == 0.0  # no phantom reachability
            continue
        total += 1
        if abs(est - ref) <= eps * ref:
            inside += 1
    assert total > 100  # the regime check has teeth
    # Two-sigma is a ~95% band; hold a robust 90% quantile under the
    # deterministic seed rather than a flaky per-node worst case.
    assert inside >= 0.90 * total


def test_exact_regime_on_fuzz_corpus():
    from strategies import standard_cases

    for case in standard_cases():
        compiled = case.build().compiled()
        sketches = build_reach_sketches(
            compiled, k=DEFAULT_SKETCH_K, seed=0
        )
        assert sketches.is_exact()
        assert sketches.counts() == [
            float(x) for x in compiled.reach_counts()
        ]


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_band_on_seeded_random_dags(seed):
    from strategies import DagCase

    case = DagCase(
        name=f"rand-{seed}", seed=seed, n=160, density=0.08, sources=48
    )
    compiled = case.build().compiled()
    sketches = build_reach_sketches(compiled, k=16, seed=0)
    assert not sketches.is_exact()
    eps = epsilon_for_k(16)
    exact = compiled.reach_counts()
    estimated = sketches.counts()
    inside = total = 0
    for est, ref in zip(estimated, exact):
        if ref == 0:
            continue
        total += 1
        if abs(est - ref) <= eps * ref:
            inside += 1
    assert total > 50
    assert inside >= 0.90 * total


def test_estimates_unbiased_in_aggregate():
    graph = overflow_graph()
    compiled = graph.compiled()
    sketches = build_reach_sketches(compiled, k=32, seed=0)
    exact = compiled.reach_counts()
    estimated = sketches.counts()
    num = sum(est for est, ref in zip(estimated, exact) if ref > 0)
    den = float(sum(ref for ref in exact if ref > 0))
    assert 0.9 <= num / den <= 1.1


# ----------------------------------------------------------------------
# Register-level invariants and byte reproducibility
# ----------------------------------------------------------------------


@pytest.mark.parametrize("lanes", LANES)
def test_register_rows_are_ascending_and_sentinel_free(lanes):
    compiled = overflow_graph().compiled()
    sketches = build_reach_sketches(compiled, k=8, seed=3, lanes=lanes)
    for v in range(compiled.n):
        row = sketches.register_row(v)
        assert len(row) <= 8
        assert list(row) == sorted(set(row))
        assert all(0 <= h < EMPTY_REGISTER for h in row)


@pytest.mark.skipif(not HAVE_NUMPY, reason="differential test needs both lanes")
@pytest.mark.parametrize("dataset", ["scale-dag", "citation", "fig2"])
@pytest.mark.parametrize("k", [8, 64])
def test_lanes_produce_bit_identical_registers(dataset, k):
    compiled = dataset_graph(dataset).compiled()
    via_numpy = build_reach_sketches(compiled, k=k, seed=0, lanes="numpy")
    via_python = build_reach_sketches(compiled, k=k, seed=0, lanes="python")
    assert via_numpy.backend == "numpy"
    assert via_python.backend == "python"
    assert via_numpy.register_bytes() == via_python.register_bytes()
    assert via_numpy.counts() == via_python.counts()
    assert via_numpy.is_exact() == via_python.is_exact()


def test_rebuild_is_byte_stable_and_seed_sensitive():
    compiled = overflow_graph().compiled()
    first = build_reach_sketches(compiled, k=16, seed=0)
    again = build_reach_sketches(compiled, k=16, seed=0)
    reseeded = build_reach_sketches(compiled, k=16, seed=1)
    assert first.register_bytes() == again.register_bytes()
    assert first.register_bytes() != reseeded.register_bytes()


def test_register_bytes_layout():
    compiled = dataset_graph("fig1").compiled()
    sketches = build_reach_sketches(compiled, k=4, seed=0)
    raw = sketches.register_bytes()
    assert len(raw) == compiled.n * 4 * 8  # n × k little-endian words


def test_estimate_matches_counts_per_node():
    compiled = overflow_graph().compiled()
    sketches = build_reach_sketches(compiled, k=16, seed=0)
    counts = sketches.counts()
    for v in (0, 1, compiled.n // 2, compiled.n - 1):
        assert sketches.estimate(v) == counts[v]


def test_nbytes_positive():
    sketches = build_reach_sketches(dataset_graph("fig1").compiled(), k=4)
    assert sketches.nbytes() > 0
    assert isinstance(sketches, ReachSketches)
