"""Bench subsystem: harness, BENCH.json schema, regression comparator, CLI."""

from __future__ import annotations

import json

import pytest

from repro.bench.compare import compare_documents, format_comparison
from repro.bench.harness import render_records, run_suite
from repro.bench.instrument import CountingBackend
from repro.bench.results import (
    SCHEMA_VERSION,
    load_bench_json,
    validate_document,
    write_bench_json,
)
from repro.bench.scenarios import BenchScenario, get_suite, toy_suite
from repro.backends import get_backend
from repro.exceptions import ParameterError


def mini_scenarios():
    return [
        BenchScenario("fig1", "G_All", 2, backend)
        for backend in ("python",)
    ] + [
        BenchScenario("fig10", "G_L", 3, "python"),
    ]


def test_run_suite_produces_records():
    records = run_suite(mini_scenarios())
    assert len(records) == 2
    g_all = records[0]
    assert g_all.scenario.algorithm == "G_All"
    assert g_all.nodes == 7 and g_all.edges == 9
    assert g_all.seconds >= 0
    assert g_all.evaluations["marginal_gains"] >= 1
    assert g_all.filters_found == len(g_all.filters)
    assert 0.0 <= g_all.filter_ratio <= 1.0
    assert "G_All" in render_records(records)


def test_bench_json_roundtrip(tmp_path):
    path = tmp_path / "BENCH.json"
    records = run_suite(mini_scenarios())
    doc = write_bench_json(str(path), records, meta={"suite": "mini"})
    assert doc["schema_version"] == SCHEMA_VERSION
    assert doc["meta"]["suite"] == "mini"
    loaded = load_bench_json(str(path))
    assert loaded == json.loads(path.read_text())
    keys = [row["key"] for row in loaded["results"]]
    assert keys == [s.key() for s in mini_scenarios()]


def test_validate_document_rejects_malformed():
    with pytest.raises(ValueError):
        validate_document({"schema_version": 999, "results": []})
    with pytest.raises(ValueError):
        validate_document({"schema_version": SCHEMA_VERSION})
    with pytest.raises(ValueError):
        validate_document(
            {"schema_version": SCHEMA_VERSION, "results": [{"key": "x"}]}
        )


def test_comparator_flags_regression_and_drift():
    records = run_suite(mini_scenarios())
    doc = {
        "schema_version": SCHEMA_VERSION,
        "meta": {},
        "results": [r.to_json_dict() for r in records],
    }
    same = compare_documents(doc, doc, regression_ratio=1.5)
    assert same.ok and len(same.cells) == 2

    slower = json.loads(json.dumps(doc))
    slower["results"][0]["seconds"] = doc["results"][0]["seconds"] * 10 + 1.0
    report = compare_documents(doc, slower, regression_ratio=1.5)
    assert [c.key for c in report.regressions] == [doc["results"][0]["key"]]
    assert "PERF REGRESSION" in format_comparison(report)

    drifted = json.loads(json.dumps(doc))
    drifted["results"][1]["filters"] = ["'bogus'"]
    report = compare_documents(doc, drifted, regression_ratio=1.5)
    assert report.result_drift and not report.regressions
    assert "RESULT DRIFT" in format_comparison(report)


def test_counting_backend_tallies_calls(fig1):
    counting = CountingBackend(get_backend("python"))
    counting.marginal_gains(fig1)
    counting.marginal_gains(fig1, ["z2"])
    counting.total_receipts(fig1)
    assert counting.counts["marginal_gains"] == 2
    assert counting.counts["total_receipts"] == 1
    assert counting.total_evaluations() == 3
    counting.reset()
    assert counting.total_evaluations() == 0


def test_suites_cross_backends():
    scenarios = get_suite("toy", backends=("python",))
    assert {s.backend for s in scenarios} == {"python"}
    assert {s.dataset for s in scenarios} == {"fig1", "fig10"}
    with pytest.raises(ParameterError):
        get_suite("nope")
    # Default backend axis = whatever is available in this environment.
    assert {s.backend for s in toy_suite()} >= {"python"}


def test_bench_cli_writes_valid_json(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "BENCH.json"
    code = main(
        [
            "bench",
            "--suite", "toy",
            "--backends", "python",
            "--out", str(out),
            "--quiet",
        ]
    )
    assert code == 0
    doc = load_bench_json(str(out))
    assert doc["meta"]["suite"] == "toy"
    assert len(doc["results"]) == 10  # 2 datasets x 5 algorithms x 1 backend
    assert "wrote 10 result(s)" in capsys.readouterr().out


def test_bench_cli_compare_in_place_loads_prior_first(tmp_path, capsys):
    # --out and --compare may be the same path (the committed BENCH.json
    # trajectory file); the prior must be read before it is overwritten.
    from repro.cli import main

    path = tmp_path / "BENCH.json"
    args = [
        "bench", "--suite", "toy", "--backends", "python",
        "--out", str(path), "--quiet",
    ]
    assert main(args) == 0
    capsys.readouterr()
    # Doctor the prior so a self-compare (ratio 1.00x everywhere) is
    # distinguishable from a genuine prior-vs-current comparison.
    doc = json.loads(path.read_text())
    for row in doc["results"]:
        row["seconds"] = 999.0
    path.write_text(json.dumps(doc))
    assert main(args + ["--compare", str(path)]) == 0
    out = capsys.readouterr().out
    assert "999000.0" in out  # prior ms column shows the doctored values
    assert "1.00x" not in out  # i.e. NOT compared against itself


def test_bench_cli_failed_gate_preserves_baseline(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "BENCH.json"
    # The ablation suite's synthetic cells take tens of ms — far enough
    # above the comparator's noise floor that a doctored 1 ms baseline
    # must trip the gate (toy cells are sub-ms and would be suppressed).
    args = [
        "bench", "--suite", "ablation", "--backends", "python",
        "--out", str(path), "--quiet",
    ]
    assert main(args) == 0
    capsys.readouterr()
    doc = json.loads(path.read_text())
    for row in doc["results"]:
        row["seconds"] = 1e-3
    baseline_text = json.dumps(doc)
    path.write_text(baseline_text)
    code = main(
        args + ["--compare", str(path), "--fail-on-regression", "1.5"]
    )
    assert code == 3
    assert path.read_text() == baseline_text  # baseline untouched
    rejected = tmp_path / "BENCH.json.rejected"
    assert rejected.exists()
    assert load_bench_json(str(rejected))["results"]
    assert "parked" in capsys.readouterr().err


def test_bench_cli_gate_fails_on_zero_overlap(tmp_path, capsys):
    # A suite/seed change makes every scenario key differ from the
    # baseline; the gate must fail loudly instead of passing vacuously.
    from repro.cli import main

    path = tmp_path / "BENCH.json"
    base_args = [
        "bench", "--suite", "toy", "--backends", "python",
        "--out", str(path), "--quiet",
    ]
    assert main(base_args) == 0
    baseline_text = path.read_text()
    capsys.readouterr()
    code = main(
        base_args
        + ["--seed", "1", "--compare", str(path), "--fail-on-regression", "1.5"]
    )
    assert code == 3
    assert path.read_text() == baseline_text
    assert "no overlapping scenarios" in capsys.readouterr().err


def test_bench_cli_gate_fails_on_shrunk_coverage_and_repeats(
    tmp_path, capsys
):
    from repro.cli import main

    path = tmp_path / "BENCH.json"
    assert main(
        [
            "bench", "--suite", "toy", "--backends", "python",
            "--out", str(path), "--quiet", "--repeats", "2",
        ]
    ) == 0
    baseline_text = path.read_text()
    capsys.readouterr()

    # Mismatched --repeats: best-of-1 vs best-of-2 are not comparable.
    code = main(
        [
            "bench", "--suite", "toy", "--backends", "python",
            "--out", str(path), "--quiet",
            "--compare", str(path), "--fail-on-regression", "1.5",
        ]
    )
    assert code == 3
    assert "--repeats 2" in capsys.readouterr().err
    assert path.read_text() == baseline_text

    # Fewer cells than the baseline (here: fewer algorithms via a
    # doctored prior is awkward, so shrink by dropping a backend axis
    # against a two-backend baseline when numpy is available; otherwise
    # doctor the prior with an extra synthetic cell).
    doc = json.loads(baseline_text)
    extra = json.loads(json.dumps(doc["results"][0]))
    extra["key"] = extra["key"].replace("/python", "/imaginary")
    extra["backend"] = "imaginary"
    doc["results"].append(extra)
    path.write_text(json.dumps(doc))
    code = main(
        [
            "bench", "--suite", "toy", "--backends", "python",
            "--out", str(path), "--quiet", "--repeats", "2",
            "--compare", str(path), "--fail-on-regression", "1.5",
        ]
    )
    assert code == 3
    assert "fewer cell(s)" in capsys.readouterr().err


def test_bench_cli_fail_on_regression_requires_compare(tmp_path, capsys):
    from repro.cli import main

    code = main(
        [
            "bench", "--suite", "toy", "--backends", "python",
            "--out", str(tmp_path / "B.json"), "--quiet",
            "--fail-on-regression", "1.5",
        ]
    )
    assert code == 2
    assert "requires --compare" in capsys.readouterr().err


def test_place_cli_backend_flag(capsys):
    from repro.cli import main

    outputs = {}
    for backend in ("python", "auto"):
        code = main(
            [
                "place",
                "--dataset", "fig1",
                "--algorithm", "G_All",
                "-k", "2",
                "--backend", backend,
            ]
        )
        assert code == 0
        outputs[backend] = capsys.readouterr().out
    assert outputs["python"] == outputs["auto"]
    assert "'z2'" in outputs["python"]


def _backends() -> tuple[str, ...]:
    from repro.backends.registry import available_backends

    return available_backends()


def test_probabilistic_scenarios_and_mc_speedup():
    from repro.bench.compare import mc_speedup
    from repro.bench.harness import run_suite
    from repro.bench.scenarios import BenchScenario, apply_model, get_suite

    scenarios = [
        BenchScenario(
            "fig10", "G_All", 3, backend,
            model="live-edge", edge_prob=0.6, trials=8,
        )
        for backend in _backends()
    ]
    assert scenarios[0].key() == (
        "fig10@default/seed0/G_All/k3/"
        f"{_backends()[0]}/live-edge-p0.6-t8"
    )
    records = run_suite(scenarios)
    # Filter sets identical across backends (shared sampled worlds).
    assert len({r.filters for r in records}) == 1
    rows = [r.to_json_dict() for r in records]
    assert all(row["model"] == "live-edge" for row in rows)
    assert all(row["trials"] == 8 for row in rows)
    ratios = mc_speedup(records)
    if len(_backends()) > 1:
        assert set(ratios) == {
            "fig10@default/seed0/G_All/k3/numpy/live-edge-p0.6-t8"
        }
        assert all(r > 0 for r in ratios.values())
    else:
        assert ratios == {}
    # Deterministic cells never enter the MC comparison.
    assert mc_speedup(
        [r.to_json_dict() for r in run_suite(
            [BenchScenario("fig10", "G_1", 2, _backends()[0])]
        )]
    ) == {}
    # The probabilistic suite crosses both algorithms over the backends,
    # and apply_model re-parameterizes algorithm cells only.
    suite = get_suite("probabilistic", backends=_backends())
    assert {s.model for s in suite} == {"live-edge"}
    assert {s.trials for s in suite} == {64}
    converted = apply_model(
        get_suite("toy", backends=_backends()),
        model="live-edge", edge_prob=0.5, trials=4,
    )
    assert all(
        s.model == "live-edge" for s in converted if s.mode == "algorithm"
    )
    untouched = apply_model(
        get_suite("toy", backends=_backends()),
        model="deterministic", edge_prob=1.0, trials=0,
    )
    assert all(s.model == "deterministic" for s in untouched)
    # Unit probabilities *are* deterministic relaying: a probabilistic
    # label would mark exact-path cells as MC cells and pollute
    # mc_speedup, so apply_model collapses them.
    unit = apply_model(
        get_suite("toy", backends=_backends()),
        model="live-edge", edge_prob=1.0, trials=64,
    )
    assert all(s.model == "deterministic" for s in unit)


def test_phases_decompose_wall_clock_and_exclude_plan_from_solve():
    """Regression for the repeats timing skew: per-repeat solve timings
    must not absorb compile/plan work, and the recorded phases must be a
    true decomposition of the cell's wall-clock."""
    from repro.bench.harness import run_scenario

    record = run_scenario(
        BenchScenario("fig10", "G_All", 3, "python"), repeats=3
    )
    row = record.to_json_dict()
    phases = row["phases"]
    assert set(phases) == {"plan", "solve", "repeat_overhead", "score"}
    # ``seconds`` is the best-of-repeats solve region, nothing else.
    assert phases["solve"] == row["seconds"]
    assert phases["repeat_overhead"] >= 0.0
    # plan_seconds carries the in-cell plan phase plus the amortized
    # per-graph compile share — never less than the in-cell phase alone.
    assert row["plan_seconds"] >= phases["plan"]
    assert row["wall_seconds"] >= row["seconds"]
    # The phases sum to the wall-clock within scheduling tolerance.
    drift = abs(sum(phases.values()) - row["wall_seconds"])
    assert drift <= max(0.02, 0.1 * row["wall_seconds"]), (
        f"phases {phases} do not decompose wall_seconds "
        f"{row['wall_seconds']} (drift {drift})"
    )


def test_single_repeat_omits_repeat_overhead_phase():
    from repro.bench.harness import run_scenario

    record = run_scenario(
        BenchScenario("fig10", "G_All", 3, "python"), repeats=1
    )
    assert "repeat_overhead" not in record.phases
    drift = abs(sum(record.phases.values()) - record.wall_seconds)
    assert drift <= max(0.02, 0.1 * record.wall_seconds)


def test_compile_and_service_cells_carry_wall_seconds():
    from repro.bench.harness import run_scenario

    compile_record = run_scenario(
        BenchScenario(
            "fig10", "compile", 0, "python", mode="compile"
        ),
        repeats=2,
    )
    assert compile_record.phases["plan"] == compile_record.seconds
    assert compile_record.wall_seconds >= compile_record.seconds
    service_record = run_scenario(
        BenchScenario(
            "fig10", "G_All", 2, "python", mode="service_hit"
        ),
        repeats=1,
    )
    assert service_record.wall_seconds >= service_record.seconds
    assert service_record.phases["solve"] == service_record.seconds


def test_bitpack_suite_cells_and_speedup_comparator():
    from repro.bench.compare import bitpack_speedup
    from repro.bench.scenarios import BITPACK_SOURCES

    suite = get_suite("bitpack", backends=_backends())
    # Every (dataset, backend) appears on both tiers, sources widened.
    assert all(s.sources == BITPACK_SOURCES for s in suite)
    assert {s.tier for s in suite} == {"bitpack", "lanes"}
    toy = [s for s in suite if s.dataset == "fig10"]
    assert toy[0].key().endswith("/src256")
    assert toy[1].key().endswith("/src256/tier-lanes")

    records = run_suite(
        [s for s in toy if s.backend == _backends()[0]]
    )
    # Same placements on both tiers — the tier changes the route to the
    # numbers, never the numbers.
    assert records[0].filters == records[1].filters
    assert records[0].objective == records[1].objective
    ratios = bitpack_speedup(records)
    assert set(ratios) == {records[0].scenario.key()}
    assert all(r > 0 for r in ratios.values())
    # Cells without a lanes twin produce no ratio.
    assert bitpack_speedup(records[:1]) == {}


def test_parallel_suite_pins_worker_counts():
    from repro.bench.scenarios import PARALLEL_WORKERS

    suite = get_suite("parallel", backends=_backends())
    assert {s.workers for s in suite} == set(PARALLEL_WORKERS)
    assert all(s.model == "live-edge" for s in suite)
    assert all(s.backend == "python" for s in suite)
    pinned = [s for s in suite if s.workers > 1]
    assert all(f"/w{s.workers}" in s.key() for s in pinned)
    # workers=1 cells are explicitly serial but still keyed: the /w1
    # suffix distinguishes them from ambient-worker default cells.
    assert all("/w1" in s.key() for s in suite if s.workers == 1)


def test_parallel_cells_run_and_match_across_worker_counts():
    records = run_suite(
        [
            BenchScenario(
                "fig10", "G_All", 2, "python",
                model="live-edge", edge_prob=0.7, trials=16,
                workers=workers,
            )
            for workers in (1, 2)
        ]
    )
    assert records[0].filters == records[1].filters
    assert records[0].objective == records[1].objective
