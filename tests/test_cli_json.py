"""CLI ``--json`` modes, ``serve`` wiring, and seeded ``generate``."""

from __future__ import annotations

import contextlib
import io
import json

from repro.cli import build_parser, main
from repro.graphs.io import read_edge_list, read_edge_list_meta
from repro.service.store import graph_digest


def run_cli(argv) -> tuple[int, str]:
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


def test_place_json_payload_shape():
    code, out = run_cli([
        "place", "--dataset", "fig1", "--algorithm", "G_All", "-k", "2",
        "--json",
    ])
    assert code == 0
    payload = json.loads(out)
    assert payload["algorithm"] == "G_All"
    assert payload["requested_k"] == 2
    assert payload["filters"] == ["'z2'"]
    assert payload["objective"] == payload["phi_empty"] - payload["phi"]
    assert payload["filter_ratio"] == 1.0
    assert payload["steps"][0]["node"] == "'z2'"


def test_place_json_identical_across_strategies_and_backends():
    payloads = []
    for strategy in ("exact", "lazy"):
        code, out = run_cli([
            "place", "--dataset", "fig10", "--algorithm", "G_All",
            "-k", "3", "--strategy", strategy, "--json",
        ])
        assert code == 0
        payloads.append(json.loads(out))
    assert payloads[0] == payloads[1]


def test_stats_json_payload():
    code, out = run_cli(["stats", "--dataset", "fig1", "--json"])
    assert code == 0
    payload = json.loads(out)
    assert payload["name"] == "fig1"
    assert payload["nodes"] == 7 and payload["edges"] == 9
    assert payload["is_dag"] is True


def test_generate_is_seed_reproducible(tmp_path):
    a, b, c = (tmp_path / n for n in ("a.txt", "b.txt", "c.txt"))
    base = ["generate", "--dataset", "synthetic-sparse", "--scale", "0.05"]
    assert main(base + ["--seed", "7", "-o", str(a)]) == 0
    assert main(base + ["--seed", "7", "-o", str(b)]) == 0
    assert main(base + ["--seed", "8", "-o", str(c)]) == 0
    # same seed: byte-identical output; different seed: different graph
    assert a.read_bytes() == b.read_bytes()
    assert graph_digest(read_edge_list(a)) != graph_digest(read_edge_list(c))
    # provenance is recorded in the header
    assert read_edge_list_meta(a) == {
        "dataset": "synthetic-sparse", "seed": 7, "scale": 0.05,
    }


def test_serve_subcommand_parses():
    parser = build_parser()
    args = parser.parse_args([
        "serve", "--port", "0", "--workers", "2", "--pool", "thread",
        "--cache-entries", "16", "--preload", "fig1",
    ])
    assert args.func.__name__ == "_cmd_serve"
    assert args.port == 0 and args.preload == ["fig1"]


def test_place_json_probabilistic_model_block():
    argv = [
        "place", "--dataset", "fig10", "--algorithm", "G_All", "-k", "3",
        "--model", "live-edge", "--edge-prob", "0.6", "--trials", "16",
        "--json",
    ]
    code, out = run_cli(argv)
    assert code == 0
    payload = json.loads(out)
    assert payload["model"] == {
        "name": "live-edge", "edge_prob": 0.6, "trials": 16, "seed": 0,
    }
    # SAA estimates are mutually consistent floats over shared worlds.
    assert payload["objective"] == payload["phi_empty"] - payload["phi"]
    # Byte-identical across repeats (seeded worlds) and strategies.
    assert run_cli(argv) == (code, out)
    lazy_code, lazy_out = run_cli(argv + ["--strategy", "lazy"])
    assert lazy_code == 0
    assert json.loads(lazy_out)["filters"] == payload["filters"]


def test_place_json_deterministic_unchanged_by_model_flags():
    base = [
        "place", "--dataset", "fig1", "--algorithm", "G_All", "-k", "2",
        "--json",
    ]
    _, plain = run_cli(base)
    # --model deterministic and unit probabilities are the same request.
    _, det = run_cli(base + ["--model", "deterministic"])
    _, unit = run_cli(base + ["--model", "live-edge", "--edge-prob", "1.0"])
    assert plain == det == unit
