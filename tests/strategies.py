"""Seeded random-DAG case generation for the differential fuzz harness.

Plain deterministic generators, not a property-testing library: every
case is a frozen :class:`DagCase` whose graph (and per-edge relay
probabilities) are a pure function of its seed, so a failure reproduces
from the printed case name alone and CI runs the identical corpus on
every machine.

The corpus deliberately covers the structural axes the sweep engines
branch on:

* **size** — from a handful of nodes up to wide-enough graphs that the
  NumPy level grouping has real work per level;
* **density** — sparse chains through near-complete prefix DAGs;
* **fan-out hubs** — designated nodes wired to *every* later node, the
  dense-adjacency analog of multi-edges (literal parallel edges are
  rejected by ``CGraph``, so fan-out pressure is how a node legally
  emits many copies at once);
* **isolated nodes** — present in the node set, touched by no edge;
* **source declaration** — half the corpus passes explicit sources,
  half lets ``CGraph`` infer them from in-degree (which promotes the
  isolated nodes to sources, a path worth fuzzing);
* **edge probabilities** — per-edge relay probabilities drawn from a
  small quantized palette, so probabilistic-model cases are exactly
  reproducible without float-repr surprises.

Edges always run from lower to higher node id, so every generated graph
is acyclic by construction and never contains a duplicate edge.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.graphs.cgraph import CGraph

#: Quantized relay-probability palette for probabilistic cases.  Values
#: are exact binary fractions, so world sampling thresholds compare the
#: same way on every platform.
PROBABILITY_PALETTE = (0.25, 0.5, 0.75, 0.875, 1.0)


@dataclass(frozen=True)
class DagCase:
    """One reproducible fuzz case: a graph recipe, not a graph."""

    name: str
    seed: int
    n: int
    density: float
    sources: int
    isolated: int = 0
    fanout_hubs: int = 0
    explicit_sources: bool = True

    def build(self) -> CGraph:
        """Materialize the case's graph (pure function of the fields)."""
        rng = random.Random(self.seed)
        total = self.n + self.isolated
        edge_set: set[tuple[int, int]] = set()
        for i in range(self.n):
            for j in range(max(i + 1, self.sources), self.n):
                if rng.random() < self.density:
                    edge_set.add((i, j))
        # Fan-out hubs: wire a few nodes to every later (non-isolated)
        # node — maximal legal fan-out, since parallel edges are illegal.
        if self.fanout_hubs and self.n > self.sources + 1:
            hubs = rng.sample(
                range(self.n - 1), min(self.fanout_hubs, self.n - 1)
            )
            for h in hubs:
                for j in range(max(h + 1, self.sources), self.n):
                    edge_set.add((h, j))
        edges = sorted(edge_set)
        if self.explicit_sources:
            return CGraph(
                edges, nodes=range(total), sources=range(self.sources)
            )
        return CGraph(edges, nodes=range(total))

    def edge_probabilities(self) -> dict[tuple[int, int], float]:
        """Per-edge relay probabilities, seeded off the case seed."""
        rng = random.Random(self.seed + 0x9E3779B9)
        return {
            (u, v): rng.choice(PROBABILITY_PALETTE)
            for (u, v) in self.build().edges()
        }

    def filter_pool(self, count: int) -> list[int]:
        """A reproducible pick of ``count`` candidate filter nodes.

        Drawn from the non-source interior so filters are placeable in
        every source-declaration mode.
        """
        rng = random.Random(self.seed + 0x1F2E3D4C)
        interior = list(range(self.sources, self.n))
        rng.shuffle(interior)
        return sorted(interior[:count])


#: Structural grid the standard corpus walks.
SIZES = (6, 12, 24, 40)
DENSITIES = (0.08, 0.3, 0.6)


def standard_cases(base_seed: int = 20260808) -> tuple[DagCase, ...]:
    """The fixed fuzz corpus: one case per (size, density) grid point.

    The remaining axes (source count, isolated nodes, hubs, explicit vs
    inferred sources) cycle deterministically across the grid so every
    variation appears several times without exploding the corpus.
    """
    cases: list[DagCase] = []
    idx = 0
    for n in SIZES:
        for density in DENSITIES:
            sources = (1, 2, 4)[idx % 3]
            isolated = (0, 2)[idx % 2]
            hubs = (0, 1, 2)[idx % 3]
            explicit = idx % 2 == 0
            cases.append(
                DagCase(
                    name=(
                        f"n{n}-d{density:g}-s{sources}-i{isolated}"
                        f"-h{hubs}-{'ex' if explicit else 'in'}"
                    ),
                    seed=base_seed + idx,
                    n=n,
                    density=density,
                    sources=sources,
                    isolated=isolated,
                    fanout_hubs=hubs,
                    explicit_sources=explicit,
                )
            )
            idx += 1
    return tuple(cases)
