"""Python-vs-NumPy backend equivalence.

The contract of :mod:`repro.backends`: every backend returns bit-identical
integers for every query, and placement runs produce byte-identical
``PlacementResult`` contents regardless of backend — including on graphs
whose receipt counts overflow int64, where the NumPy backend must detect
the risk and delegate to the exact path.
"""

from __future__ import annotations

import pytest

from conftest import diamond_chain, random_dag
from repro.backends import get_backend, use_backend
from repro.backends.numpy_backend import NumpyBackend
from repro.core.objective import filter_ratio
from repro.core.registry import get_algorithm
from repro.datasets.registry import DATASET_NAMES, get_dataset
from repro.exceptions import CyclicGraphError, ParameterError
from repro.graphs.cgraph import CGraph

numpy = pytest.importorskip("numpy")

SCALED = {"synthetic-sparse", "synthetic-dense", "quote", "twitter", "citation"}


def small_dataset(name):
    kwargs = {"seed": 0}
    if name in SCALED:
        kwargs["scale"] = 0.15
    return get_dataset(name, **kwargs)


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_queries_agree_on_datasets(name):
    graph = small_dataset(name)
    py = get_backend("python")
    np_backend = get_backend("numpy")
    filter_sets = [(), graph.merge_nodes()[:5]]
    for filters in filter_sets:
        assert py.node_receipts(graph, filters) == np_backend.node_receipts(
            graph, filters
        )
        assert py.total_receipts(graph, filters) == np_backend.total_receipts(
            graph, filters
        )
        assert py.marginal_gains(graph, filters) == np_backend.marginal_gains(
            graph, filters
        )
        assert py.simplified_impacts(
            graph, filters
        ) == np_backend.simplified_impacts(graph, filters)


@pytest.mark.parametrize("seed", range(4))
def test_queries_agree_on_random_dags(seed):
    graph = random_dag(seed, n=18, p=0.35, sources=3)
    py, np_backend = get_backend("python"), get_backend("numpy")
    assert py.marginal_gains(graph) == np_backend.marginal_gains(graph)
    weights = {s: 2 + i for i, s in enumerate(sorted(graph.sources))}
    assert py.node_receipts(
        graph, (), items_per_source=weights
    ) == np_backend.node_receipts(graph, (), items_per_source=weights)


@pytest.mark.parametrize(
    "algorithm_name", ("G_All", "G_All_lazy", "G_Max", "G_L")
)
@pytest.mark.parametrize("dataset", ("fig10", "synthetic-sparse", "citation"))
def test_placements_identical_across_backends(algorithm_name, dataset):
    graph = small_dataset(dataset)
    results = {}
    for backend_name in ("python", "numpy"):
        with use_backend(backend_name):
            results[backend_name] = get_algorithm(algorithm_name).place(
                graph, 6
            )
            results[f"fr_{backend_name}"] = filter_ratio(
                graph, results[backend_name].filters
            )
    assert results["python"].filters == results["numpy"].filters
    assert results["python"].steps == results["numpy"].steps
    assert results["fr_python"] == results["fr_numpy"]


def test_overflow_falls_back_to_exact_path():
    graph = diamond_chain(70)  # receipts reach 2**70 ≫ int64
    backend = NumpyBackend()
    assert backend.plan_for(graph).exact_only is True
    exact = get_backend("python")
    receipts = backend.node_receipts(graph)
    assert receipts == exact.node_receipts(graph)
    assert max(receipts.values()) == 2**70  # genuinely beyond int64
    assert backend.marginal_gains(graph) == exact.marginal_gains(graph)


def test_safe_graphs_use_the_fast_path():
    graph = diamond_chain(10)
    backend = NumpyBackend()
    assert backend.plan_for(graph).exact_only is False
    assert max(backend.node_receipts(graph).values()) == 2**10


def test_weighted_overflow_triggers_per_call_fallback():
    graph = diamond_chain(40)  # 2**40 per item: safe unweighted...
    backend = NumpyBackend()
    assert backend.plan_for(graph).exact_only is False
    weight = 2**30  # ...but 2**70 total once weighted
    exact = get_backend("python")
    assert backend.node_receipts(
        graph, (), items_per_source=weight
    ) == exact.node_receipts(graph, (), items_per_source=weight)
    # Weights beyond float64 range must also fall back, not crash the
    # overflow guard itself.
    huge = 10**400
    assert backend.node_receipts(
        graph, (), items_per_source=huge
    ) == exact.node_receipts(graph, (), items_per_source=huge)


def test_nonfinite_probe_forces_exact_path():
    # A source-unreachable region whose W overflows float64 to inf makes
    # the probe compute inf·0 = NaN; NaN compares False against every
    # threshold, so it must be treated as overflow explicitly or the int64
    # path runs unguarded and can return wrapped (negative) gains.
    reachable = [("s", "r0")] + [(f"r{i}", f"r{i+1}") for i in range(3)]
    unreachable = []
    prev = "u_top"
    for i in range(1300):  # W ~ 2**1300 ≫ float64 max
        a, b, m = f"ua{i}", f"ub{i}", f"um{i}"
        unreachable += [(prev, a), (prev, b), (a, m), (b, m)]
        prev = m
    graph = CGraph(reachable + unreachable, sources=["s"])
    backend = NumpyBackend()
    assert backend.plan_for(graph).exact_only is True
    assert backend.marginal_gains(graph) == get_backend(
        "python"
    ).marginal_gains(graph)
    gains = backend.marginal_gains(graph)
    assert all(g >= 0 for g in gains.values())


def test_result_dicts_share_key_order_across_backends(fig1):
    py, np_backend = get_backend("python"), get_backend("numpy")
    for query in ("node_receipts", "marginal_gains", "simplified_impacts"):
        a = getattr(py, query)(fig1, ["z2"])
        b = getattr(np_backend, query)(fig1, ["z2"])
        assert list(a) == list(b) == list(fig1.nodes())


def test_numpy_backend_rejects_cycles():
    cyclic = CGraph(
        [("s", "a"), ("a", "b"), ("b", "c"), ("c", "a")], sources=["s"]
    )
    with pytest.raises(CyclicGraphError):
        NumpyBackend().plan_for(cyclic)


def test_registry_rejects_unknown_backend():
    with pytest.raises(ParameterError):
        get_backend("cuda")


@pytest.mark.parametrize("backend_name", ("python", "numpy"))
def test_backends_reject_unknown_filter_nodes_identically(backend_name):
    from repro.exceptions import GraphStructureError

    graph = CGraph([("s", "a"), ("a", "b")])
    backend = get_backend(backend_name)
    for query in (
        lambda: backend.node_receipts(graph, ["ghost"]),
        lambda: backend.total_receipts(graph, ["ghost"]),
        lambda: backend.marginal_gains(graph, ["ghost"]),
        lambda: backend.simplified_impacts(graph, ["ghost"]),
    ):
        with pytest.raises(GraphStructureError):
            query()


def test_use_backend_restores_default():
    from repro.backends.registry import get_default_backend

    before = get_default_backend()
    with use_backend("python") as backend:
        assert backend.name == "python"
        assert get_default_backend() is backend
    assert get_default_backend() is before


def test_plan_cache_does_not_pin_discarded_graphs():
    """The weak-keyed plan cache must let graphs (and plans) die.

    Regression for the compile-once refactor: a _Plan that referenced
    its CompiledGraph would reach back to the CGraph key and pin the
    WeakKeyDictionary entry forever — exactly the leak the weak cache
    exists to prevent in the long-running service.
    """
    import gc
    import weakref

    backend = NumpyBackend()
    graph = get_dataset("fig10")
    backend.plan_for(graph)
    ref = weakref.ref(graph)
    assert len(backend._plans) == 1
    del graph
    gc.collect()
    assert ref() is None, "graph pinned by its own plan"
    assert len(backend._plans) == 0
