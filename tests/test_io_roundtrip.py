"""Edge-list round-trips: isolated nodes, explicit sources, provenance."""

from __future__ import annotations

import pytest

from repro.exceptions import ParameterError
from repro.graphs.cgraph import CGraph
from repro.graphs.io import (
    read_edge_list,
    read_edge_list_meta,
    read_edge_list_text,
    write_edge_list,
)
from repro.service.store import graph_digest


def test_roundtrip_preserves_isolated_nodes(tmp_path):
    graph = CGraph(
        [("s", "a"), ("a", "b")],
        nodes=["lonely", "alone"],
        sources=["s"],
    )
    path = tmp_path / "g.txt"
    write_edge_list(graph, path)
    back = read_edge_list(path)
    assert sorted(map(repr, back.nodes())) == sorted(map(repr, graph.nodes()))
    assert back.has_node("lonely") and back.has_node("alone")
    assert graph_digest(back) == graph_digest(graph)


def test_roundtrip_preserves_explicit_sources(tmp_path):
    # An explicit source with *incoming* edges (the SetCover-gadget shape)
    # is invisible to in-degree-zero detection; the directive restores it.
    graph = CGraph(
        [("s", "a"), ("a", "b"), ("b", "s2"), ("s2", "c")],
        sources=["s", "s2"],
    )
    path = tmp_path / "g.txt"
    write_edge_list(graph, path)
    back = read_edge_list(path)
    assert back.sources == frozenset({"s", "s2"})
    assert graph_digest(back) == graph_digest(graph)
    # an explicit override still wins over the directive
    forced = read_edge_list(path, sources=["s"])
    assert forced.sources == frozenset({"s"})


def test_roundtrip_isolated_node_is_not_promoted_to_source(tmp_path):
    # With an explicit source set, an isolated node must come back as a
    # plain node — not as a detected in-degree-zero source.
    graph = CGraph([("s", "a")], nodes=[99], sources=["s"])
    path = tmp_path / "g.txt"
    write_edge_list(graph, path)
    back = read_edge_list(path)
    assert back.sources == frozenset({"s"})
    assert back.has_node(99)
    assert graph_digest(back) == graph_digest(graph)


def test_register_generate_reregister_same_digest(tmp_path):
    """The satellite's acceptance loop, at the service level."""
    from repro.service.store import GraphStore

    store = GraphStore(warm_backends=False)
    entry, _ = store.register_dataset("synthetic-sparse", seed=3, scale=0.05)
    path = tmp_path / "generated.txt"
    write_edge_list(entry.graph, path)
    again, created = store.register_edges(path.read_text())
    assert not created
    assert again.digest == entry.digest


def test_plain_edge_lists_still_load(tmp_path):
    path = tmp_path / "plain.txt"
    path.write_text("# a comment\n1 2\n2 3\n")
    graph = read_edge_list(path)
    assert graph.number_of_nodes() == 3
    assert graph.sources == frozenset({1})
    with pytest.raises(ParameterError):
        read_edge_list_text("1 2 3\n")


def test_directive_chunking_many_isolated_nodes(tmp_path):
    graph = CGraph([("s", "a")], nodes=range(200), sources=["s"])
    path = tmp_path / "g.txt"
    write_edge_list(graph, path)
    directive_lines = [
        line for line in path.read_text().splitlines()
        if line.startswith("# isolated:")
    ]
    assert len(directive_lines) > 1  # chunked, not one giant line
    back = read_edge_list(path)
    assert back.number_of_nodes() == graph.number_of_nodes()
    assert graph_digest(back) == graph_digest(graph)


def test_write_rejects_non_roundtrippable_node_ids(tmp_path):
    # a *string* "5" would read back as the int 5; whitespace ids would
    # break tokenization — both must be refused, not silently corrupted
    for bad in (
        CGraph([("5", "a")]),
        CGraph([("a b", "c")]),
        CGraph([("s", "a")], nodes=["7"]),  # isolated int-lookalike
    ):
        with pytest.raises(ParameterError):
            write_edge_list(bad, tmp_path / "bad.txt")


def test_meta_header_roundtrip(tmp_path):
    graph = CGraph([("s", "a")])
    path = tmp_path / "g.txt"
    write_edge_list(graph, path, meta={"dataset": "quote", "seed": 7})
    assert read_edge_list_meta(path) == {"dataset": "quote", "seed": 7}
    # files without a meta header report None
    bare = tmp_path / "bare.txt"
    write_edge_list(graph, bare)
    assert read_edge_list_meta(bare) is None
