"""Test bootstrap: make ``src/`` importable and share graph fixtures."""

from __future__ import annotations

import random
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import pytest  # noqa: E402

from repro.graphs.cgraph import CGraph  # noqa: E402


def random_dag(
    seed: int, *, n: int = 14, p: float = 0.3, sources: int = 2
) -> CGraph:
    """A small random DAG with ``sources`` explicit roots.

    Edges only run from lower to higher ids, so the graph is acyclic by
    construction; roots 0..sources-1 receive no incoming edges so they
    are genuine item generators.
    """
    rng = random.Random(seed)
    edges = [
        (i, j)
        for i in range(n)
        for j in range(max(i + 1, sources), n)
        if rng.random() < p
    ]
    return CGraph(edges, nodes=range(n), sources=range(sources))


def diamond_chain(length: int) -> CGraph:
    """``length`` stacked diamonds: receipt counts double at every stage.

    With ``length = 70`` the deepest node receives ``2**70`` copies —
    far beyond int64 — which is exactly what the overflow-fallback tests
    need.
    """
    edges = []
    prev = "s"
    for i in range(length):
        a, b, m = f"a{i}", f"b{i}", f"m{i}"
        edges += [(prev, a), (prev, b), (a, m), (b, m)]
        prev = m
    return CGraph(edges)


@pytest.fixture
def fig1():
    from repro.datasets.toy import fig1_graph

    return fig1_graph()
