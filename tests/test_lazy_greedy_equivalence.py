"""Lazy-greedy (CELF) equivalence and the incremental gain engine.

The contract of :mod:`repro.core.celf`: the lazy strategy returns the
*same placement sequence and objective values* as eager ``Greedy_All`` —
on every dataset, every budget, every backend — while issuing a fraction
of the propagation sweeps.  Plus the submodularity property CELF rests
on: a stale heap entry is always an upper bound of the fresh gain.
"""

from __future__ import annotations

import pytest

from conftest import random_dag
from repro.backends import available_backends, get_backend, use_backend
from repro.bench.instrument import CountingBackend
from repro.core.celf import CelfGreedyAll
from repro.core.greedy_all import GreedyAll
from repro.core.objective import objective_value
from repro.core.registry import get_algorithm, use_strategy
from repro.datasets.synthetic import dense_synthetic, sparse_synthetic
from repro.datasets.toy import (
    fig1_graph,
    fig2_like_graph,
    fig3_like_graph,
    fig10_sketch_graph,
)

GRAPHS = {
    "fig1": fig1_graph,
    "fig2": fig2_like_graph,
    "fig3": fig3_like_graph,
    "fig10": fig10_sketch_graph,
    "sparse": lambda: sparse_synthetic(seed=3, scale=0.12),
    "dense": lambda: dense_synthetic(seed=1, scale=0.12),
    "random": lambda: random_dag(11, n=24, p=0.3, sources=3),
}

BACKENDS = available_backends()


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_lazy_matches_exact_up_to_k10(graph_name, backend_name):
    graph = GRAPHS[graph_name]()
    backend = get_backend(backend_name)
    eager = GreedyAll(backend=backend).place(graph, min(10, len(graph)))
    lazy = CelfGreedyAll(backend=backend).place(graph, min(10, len(graph)))
    assert lazy.filters == eager.filters
    assert [s.gain for s in lazy.steps] == [s.gain for s in eager.steps]
    # Objective values agree at every prefix, not just the endpoint.
    for j in range(len(eager.filters) + 1):
        assert objective_value(
            graph, eager.filters[:j], backend=backend
        ) == objective_value(graph, lazy.filters[:j], backend=backend)


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_heap_staleness_upper_bound_property(backend_name):
    # Submodularity: every lazily refreshed gain must come back at or
    # below the stale value that ranked it — otherwise CELF's selections
    # would not be trustworthy.
    audit = []
    graph = sparse_synthetic(seed=5, scale=0.15)
    CelfGreedyAll(backend=get_backend(backend_name), audit=audit).place(
        graph, 10
    )
    assert audit, "expected at least one lazy refresh on this graph"
    for node, stale, fresh, round_no in audit:
        assert fresh <= stale, (
            f"refresh of {node!r} in round {round_no} rose {stale} -> "
            f"{fresh}; gains must be non-increasing"
        )


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_session_matches_full_sweeps_after_each_placement(backend_name):
    backend = get_backend(backend_name)
    graph = random_dag(4, n=22, p=0.3, sources=3)
    session = backend.gain_session(graph)
    assert session.gains() == backend.marginal_gains(graph)
    placed = []
    for _ in range(8):
        gains = session.gains()
        candidates = {
            v: g for v, g in gains.items() if g > 0 and v not in placed
        }
        if not candidates:
            break
        pick = max(candidates, key=candidates.__getitem__)
        affected = session.add_filter(pick)
        placed.append(pick)
        fresh = backend.marginal_gains(graph, placed)
        assert session.gains() == fresh
        # The affected set is sound *and* tight: gains outside it did
        # not move, gains inside it (minus the pick) are exactly the
        # ones that did.
        for v, g in fresh.items():
            if v not in affected:
                assert g == gains[v]
        assert pick in affected
    assert session.filters == frozenset(placed)


def test_sessions_identical_across_backends():
    if "numpy" not in BACKENDS:
        pytest.skip("numpy not available")
    graph = fig10_sketch_graph()
    py = get_backend("python").gain_session(graph)
    np_sess = get_backend("numpy").gain_session(graph)
    gains = py.gains()
    order = sorted(gains, key=gains.__getitem__, reverse=True)[:3]
    for pick in order:
        assert py.add_filter(pick) == np_sess.add_filter(pick)
        assert py.gains() == np_sess.gains()


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_lazy_needs_5x_fewer_sweeps_at_k10(backend_name):
    # The acceptance bar: on a default-suite-shaped cell at k >= 10 the
    # lazy strategy must record at least 5x fewer full propagation
    # sweeps than eager Greedy_All.
    graph = sparse_synthetic(seed=0, scale=0.5)
    results = {}
    for cls in (GreedyAll, CelfGreedyAll):
        counting = CountingBackend(get_backend(backend_name))
        with use_backend(counting):
            results[cls] = cls().place(graph, 10)
        results[cls, "sweeps"] = counting.sweep_evaluations()
    assert results[GreedyAll].filters == results[CelfGreedyAll].filters
    eager_sweeps = results[GreedyAll, "sweeps"]
    lazy_sweeps = results[CelfGreedyAll, "sweeps"]
    assert lazy_sweeps * 5 <= eager_sweeps, (
        f"lazy used {lazy_sweeps} sweeps vs eager {eager_sweeps}"
    )


def test_strategy_selects_celf_without_changing_the_name():
    exact = get_algorithm("G_All")
    lazy = get_algorithm("G_All", strategy="lazy")
    assert isinstance(exact, GreedyAll)
    assert isinstance(lazy, CelfGreedyAll)
    assert lazy.name == "G_All"  # results are identical; labels must not fork
    with use_strategy("lazy"):
        assert isinstance(get_algorithm("G_All"), CelfGreedyAll)
        # Non-lazy-capable algorithms are untouched by the strategy.
        assert type(get_algorithm("G_1")).__name__ == "GreedyOne"
    assert isinstance(get_algorithm("G_All"), GreedyAll)


def test_place_cli_strategy_flag_matches_exact(capsys):
    from repro.cli import main

    outputs = {}
    for strategy in ("exact", "lazy"):
        code = main(
            [
                "place",
                "--dataset", "fig10",
                "--algorithm", "G_All",
                "-k", "4",
                "--strategy", strategy,
            ]
        )
        assert code == 0
        outputs[strategy] = capsys.readouterr().out
    assert outputs["exact"] == outputs["lazy"]


def test_lazy_suite_savings_report():
    from repro.bench.compare import lazy_savings
    from repro.bench.harness import run_suite
    from repro.bench.scenarios import BenchScenario

    scenarios = [
        BenchScenario("fig10", alg, 6, "python")
        for alg in ("G_All", "G_All_lazy")
    ]
    records = run_suite(scenarios)
    ratios = lazy_savings(records)
    assert len(ratios) == 1
    (ratio,) = ratios.values()
    assert ratio > 1.0
