"""The scale tier: streamed compilation, the scale-dag, the .fpc layout.

Pins the three contracts the million-node tier rests on:

* :func:`compile_edge_stream` builds the *same* compiled tables as the
  materialized ``CGraph(...).compiled()`` path — same interning order,
  same CSR ordering, same source defaulting, same structural errors —
  in both the NumPy and the pure-python CSR builders.
* The scale-dag generator is a pure function of ``(scale, seed)``:
  byte-reproducible streams, ``u < v`` on every edge (acyclic by
  construction), and the documented node-count law.
* ``save_compiled``/``load_compiled`` round-trip a graph through the
  ``.fpc`` directory losslessly (including cached reach counts and the
  levelization), memory-map it back when NumPy is present, and reject
  foreign or corrupt directories loudly.
"""

from __future__ import annotations

import json

import pytest

from repro.core.registry import get_algorithm
from repro.exceptions import (
    GraphStructureError,
    MissingNodeError,
    ParameterError,
)
from repro.graphs.cgraph import CGraph
from repro.graphs.io import write_edge_list
from repro.graphs.largescale import (
    StreamedGraph,
    _csr_from_buffers_numpy,
    _csr_from_buffers_python,
    compile_edge_list,
    compile_edge_stream,
    load_compiled,
    save_compiled,
    scale_dag,
    scale_dag_edges,
    scale_dag_size,
)

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except Exception:  # pragma: no cover - the no-numpy CI job
    HAVE_NUMPY = False

#: A small irregular DAG: merge nodes, a diamond, an isolated-ish tail.
EDGES = [
    ("a", "c"), ("b", "c"), ("c", "d"), ("a", "d"),
    ("d", "e"), ("b", "f"), ("f", "e"), ("c", "f"),
]


def tables_of(graph):
    compiled = graph.compiled()
    return {
        "n": compiled.n,
        "m": compiled.m,
        "nodes": list(compiled.nodes),
        "source_ids": tuple(compiled.source_ids),
        "out_offsets": [int(x) for x in compiled.out_offsets],
        "out_targets": [int(x) for x in compiled.out_targets],
        "in_offsets": [int(x) for x in compiled.in_offsets],
        "in_sources": [int(x) for x in compiled.in_sources],
    }


# ----------------------------------------------------------------------
# compile_edge_stream ≡ CGraph(...).compiled()
# ----------------------------------------------------------------------


def test_streamed_tables_match_materialized_path():
    streamed = compile_edge_stream(iter(EDGES))
    materialized = CGraph(EDGES)
    assert tables_of(streamed) == tables_of(materialized)


def test_streamed_pins_sources_and_isolated():
    streamed = compile_edge_stream(
        iter(EDGES), sources=["a", "e"], isolated=["z"]
    )
    materialized = CGraph(EDGES, nodes=["z"], sources=["a", "e"])
    assert tables_of(streamed) == tables_of(materialized)
    assert streamed.sources == {"a", "e"}
    assert "z" in streamed


def test_streamed_rejects_unknown_source():
    with pytest.raises(MissingNodeError):
        compile_edge_stream(iter(EDGES), sources=["nope"])


def test_streamed_rejects_self_loop():
    with pytest.raises(GraphStructureError):
        compile_edge_stream(iter([("a", "b"), ("b", "b")]))


def test_identity_fast_path_matches_interned_path():
    # First-seen interning order must equal identity order for the two
    # paths to agree, so the edge list introduces nodes in id order.
    edges = [(0, 1), (0, 2), (1, 3), (2, 3)]
    fast = compile_edge_stream(iter(edges), num_nodes=4)
    slow = compile_edge_stream(iter(edges))
    assert fast.compiled().nodes == range(4)
    assert tables_of(fast) == tables_of(slow)


def test_identity_fast_path_rejects_foreign_ids():
    with pytest.raises(MissingNodeError):
        compile_edge_stream(iter([(0, 7)]), num_nodes=4)
    with pytest.raises(MissingNodeError):
        compile_edge_stream(iter([("a", 1)]), num_nodes=4)
    with pytest.raises(MissingNodeError):
        compile_edge_stream(iter([(0, 1), (2, -1)]), num_nodes=4)


def test_identity_fast_path_rejects_self_loop_and_bad_num_nodes():
    with pytest.raises(GraphStructureError):
        compile_edge_stream(iter([(1, 1)]), num_nodes=4)
    with pytest.raises(ParameterError):
        compile_edge_stream(iter([]), num_nodes=-1)


def test_identity_fast_path_pins_int_sources():
    graph = compile_edge_stream(
        iter([(0, 1), (1, 2)]), num_nodes=3, sources=[0, 1]
    )
    assert graph.sources == {0, 1}
    with pytest.raises(MissingNodeError):
        compile_edge_stream(iter([(0, 1)]), num_nodes=2, sources=[5])


@pytest.mark.parametrize(
    "builder",
    ([_csr_from_buffers_numpy] if HAVE_NUMPY else [])
    + [_csr_from_buffers_python],
)
def test_both_csr_builders_reject_duplicates(builder):
    from array import array

    us = array("i", [0, 1, 0])
    vs = array("i", [1, 2, 1])
    with pytest.raises(GraphStructureError):
        builder(3, 3, us, vs, list(range(3)))


@pytest.mark.skipif(not HAVE_NUMPY, reason="differential test needs numpy")
def test_csr_builders_agree():
    from array import array

    rng_edges = [(u, v) for (u, v) in scale_dag_edges(0.001, seed=3)]
    us = array("i", [u for u, _ in rng_edges])
    vs = array("i", [v for _, v in rng_edges])
    n = scale_dag_size(0.001)
    m = len(us)
    fast = _csr_from_buffers_numpy(n, m, us, vs, range(n))
    slow = _csr_from_buffers_python(n, m, us, vs, range(n))
    for a, b in zip(fast, slow):
        assert [int(x) for x in a] == [int(x) for x in b]


def test_empty_stream_compiles():
    graph = compile_edge_stream(iter([]), isolated=["only"])
    assert graph.number_of_nodes() == 1
    assert graph.number_of_edges() == 0
    assert graph.sources == {"only"}


# ----------------------------------------------------------------------
# The StreamedGraph protocol face
# ----------------------------------------------------------------------


def test_streamed_graph_protocol_matches_cgraph():
    streamed = compile_edge_stream(iter(EDGES))
    reference = CGraph(EDGES)
    assert isinstance(streamed, StreamedGraph)
    assert streamed.number_of_nodes() == reference.number_of_nodes()
    assert streamed.number_of_edges() == reference.number_of_edges()
    assert list(streamed.nodes()) == list(reference.nodes())
    assert sorted(streamed.edges()) == sorted(reference.edges())
    assert streamed.sources == reference.sources
    assert streamed.sources_explicit
    assert streamed.is_dag() == reference.is_dag()
    assert sorted(streamed.merge_nodes()) == sorted(reference.merge_nodes())
    for node in reference.nodes():
        assert sorted(streamed.successors(node)) == sorted(
            reference.successors(node)
        )
        assert sorted(streamed.predecessors(node)) == sorted(
            reference.predecessors(node)
        )
        assert streamed.out_degree(node) == reference.out_degree(node)
        assert streamed.in_degree(node) == reference.in_degree(node)
    assert "a" in streamed and "nope" not in streamed


def test_placement_runs_on_streamed_graphs():
    graph = scale_dag(0.0005, seed=0)
    exact = get_algorithm("G_All", strategy="exact").place(graph, 3)
    sketch = get_algorithm("G_All", strategy="sketch").place(graph, 3)
    assert len(exact.filters) == 3
    assert len(sketch.filters) == 3


# ----------------------------------------------------------------------
# The scale-dag generator
# ----------------------------------------------------------------------


def test_scale_dag_size_law():
    assert scale_dag_size(1.0) == 100_000
    assert scale_dag_size(10.0) == 1_000_000
    assert scale_dag_size(0.001) == 100
    assert scale_dag_size(1e-9) == 10  # floor
    with pytest.raises(ParameterError):
        scale_dag_size(0.0)


def test_scale_dag_stream_is_pure_and_ascending():
    first = list(scale_dag_edges(0.002, seed=5))
    again = list(scale_dag_edges(0.002, seed=5))
    reseeded = list(scale_dag_edges(0.002, seed=6))
    assert first == again
    assert first != reseeded
    n = scale_dag_size(0.002)
    assert all(0 <= u < v < n for u, v in first)
    assert len(set(first)) == len(first)  # no duplicate edges


def test_scale_dag_compiles_with_spontaneous_sources():
    graph = scale_dag(0.002, seed=0)
    assert graph.number_of_nodes() == scale_dag_size(0.002)
    assert graph.is_dag()
    # Level 0 plus ~30% spontaneous nodes: a constant fraction of n.
    assert len(graph.sources) > graph.number_of_nodes() // 10
    # Sources are exactly the in-degree-zero nodes.
    for s in sorted(graph.sources)[:20]:
        assert graph.in_degree(s) == 0


# ----------------------------------------------------------------------
# compile_edge_list: the chunked file reader
# ----------------------------------------------------------------------


def test_compile_edge_list_honors_directives(tmp_path):
    reference = CGraph(EDGES, nodes=["lone"], sources=["a", "b"])
    path = tmp_path / "graph.txt"
    write_edge_list(reference, path)
    streamed = compile_edge_list(path)
    assert streamed.sources == reference.sources
    assert "lone" in streamed
    assert streamed.number_of_nodes() == reference.number_of_nodes()
    assert sorted(streamed.edges()) == sorted(reference.edges())


def test_compile_edge_list_sources_override(tmp_path):
    path = tmp_path / "graph.txt"
    write_edge_list(CGraph(EDGES), path)
    streamed = compile_edge_list(path, sources=["c"])
    assert streamed.sources == {"c"}
    with pytest.raises(MissingNodeError):
        compile_edge_list(path, sources=["nope"])


# ----------------------------------------------------------------------
# The .fpc on-disk layout
# ----------------------------------------------------------------------


def fpc_fixture(tmp_path):
    graph = scale_dag(0.001, seed=0)
    graph.compiled().reach_counts()  # cache so the sweep persists too
    return graph, save_compiled(graph, tmp_path / "g.fpc")


def test_fpc_round_trip(tmp_path):
    graph, target = fpc_fixture(tmp_path)
    loaded = load_compiled(target)
    assert tables_of(loaded) == tables_of(graph)
    original = graph.compiled()
    reloaded = loaded.compiled()
    assert reloaded.reach_counts() == original.reach_counts()
    assert reloaded.is_dag and reloaded.num_levels == original.num_levels
    assert [int(x) for x in reloaded.topo_order] == [
        int(x) for x in original.topo_order
    ]
    # The reload is placement-equivalent, not just table-equivalent.
    before = get_algorithm("G_All").place(graph, 3)
    after = get_algorithm("G_All").place(loaded, 3)
    assert before.filters == after.filters


@pytest.mark.skipif(not HAVE_NUMPY, reason="memory-mapping needs numpy")
def test_fpc_loads_memory_mapped(tmp_path):
    _, target = fpc_fixture(tmp_path)
    loaded = load_compiled(target)
    split = loaded.compiled().nbytes_split()
    assert split["mapped"] > 0
    # Cached reach counts materialize resident; CSR tables stay mapped.
    assert split["resident"] > 0


def test_fpc_preserves_string_nodes(tmp_path):
    graph = compile_edge_stream(iter(EDGES), isolated=["z"])
    target = save_compiled(graph, tmp_path / "named.fpc")
    loaded = load_compiled(target)
    assert list(loaded.nodes()) == list(graph.nodes())
    assert loaded.sources == graph.sources


def test_fpc_rejects_tuple_nodes(tmp_path):
    graph = CGraph([((0, 0), (1, 1))])
    with pytest.raises(ParameterError):
        save_compiled(graph, tmp_path / "t.fpc")


def test_fpc_rejects_non_fpc_directory(tmp_path):
    with pytest.raises(ParameterError):
        load_compiled(tmp_path)


def test_fpc_rejects_unknown_format(tmp_path):
    _, target = fpc_fixture(tmp_path)
    meta_path = target / "meta.json"
    meta = json.loads(meta_path.read_text())
    meta["format"] = "fpc-99"
    meta_path.write_text(json.dumps(meta))
    with pytest.raises(ParameterError, match="fpc-99"):
        load_compiled(target)


def test_fpc_rejects_foreign_byteorder(tmp_path):
    _, target = fpc_fixture(tmp_path)
    meta_path = target / "meta.json"
    meta = json.loads(meta_path.read_text())
    meta["byteorder"] = "big" if meta["byteorder"] == "little" else "little"
    meta_path.write_text(json.dumps(meta))
    with pytest.raises(ParameterError, match="endian"):
        load_compiled(target)


def test_fpc_rejects_truncated_tables(tmp_path):
    _, target = fpc_fixture(tmp_path)
    table = target / "out_targets.bin"
    table.write_bytes(table.read_bytes()[:-4])
    with pytest.raises(ParameterError, match="bytes"):
        load_compiled(target)
