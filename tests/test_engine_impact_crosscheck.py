"""Engine-vs-impact cross-check.

:mod:`repro.core.impact` promises that the two-pass prefix × absorbing-
suffix computation equals the brute-force marginal ``F(A ∪ {v}) − F(A)``
evaluated through the propagation engine.  These tests hold it to that on
the paper's toy graphs and on random DAGs, under empty and non-empty
filter sets.
"""

from __future__ import annotations

import pytest

from conftest import random_dag
from repro.core.impact import absorbing_suffix, marginal_gains
from repro.core.objective import objective_value, phi
from repro.datasets.toy import (
    fig1_graph,
    fig2_like_graph,
    fig3_like_graph,
    fig10_sketch_graph,
)

TOYS = {
    "fig1": fig1_graph,
    "fig2": fig2_like_graph,
    "fig3": fig3_like_graph,
    "fig10": fig10_sketch_graph,
}


def brute_force_gains(graph, filters):
    """``I(v | A)`` straight from the definition, via ``Φ`` evaluations."""
    base = phi(graph, filters)
    gains = {}
    for v in graph.nodes():
        if v in set(filters):
            gains[v] = 0
        else:
            gains[v] = base - phi(graph, set(filters) | {v})
    return gains


@pytest.mark.parametrize("name", sorted(TOYS))
def test_gains_match_brute_force_on_toys(name):
    graph = TOYS[name]()
    assert marginal_gains(graph, ()) == brute_force_gains(graph, ())
    # Grow a filter set one greedy pick at a time and re-check each stage.
    filters: set = set()
    for _ in range(3):
        gains = marginal_gains(graph, filters)
        assert gains == brute_force_gains(graph, filters)
        best = max(gains, key=lambda v: (gains[v], ), default=None)
        if best is None or gains[best] == 0:
            break
        filters.add(best)


@pytest.mark.parametrize("seed", range(6))
def test_gains_match_brute_force_on_random_dags(seed):
    graph = random_dag(seed)
    assert marginal_gains(graph, ()) == brute_force_gains(graph, ())
    some_filters = [v for i, v in enumerate(graph.nodes()) if i % 3 == 0]
    assert marginal_gains(graph, some_filters) == brute_force_gains(
        graph, some_filters
    )


def test_gain_equals_objective_delta(fig1):
    gains = marginal_gains(fig1, ())
    for v, gain in gains.items():
        assert gain == objective_value(fig1, [v])


def test_absorbing_suffix_counts_filter_free_paths(fig1):
    # W(v) = number of non-empty paths from v whose interior avoids A.
    w = absorbing_suffix(fig1, ())
    assert w["w"] == 0  # sink
    assert w["z2"] == 1  # z2 -> w only
    assert w["x"] == 4  # x->z1, x->z2, x->z1->w, x->z2->w
    w_cut = absorbing_suffix(fig1, ["z2"])
    # z2 still counts as a path endpoint but absorbs everything beyond it:
    # x keeps x->z1, x->z1->w, x->z2 and loses x->z2->w.
    assert w_cut["x"] == 3
    assert w_cut["s"] < w["s"]
