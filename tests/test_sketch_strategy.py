"""The ``sketch`` execution strategy end to end.

Pins the strategy's cross-layer wiring: registry resolution (the third
``strategy`` axis beside ``exact``/``lazy``), the exactness-regime
selection guarantee (bit-identical to exact ``Greedy_All`` whenever the
source count fits the register file), the approximate-regime objective
quality bound, the three rescore tiers of
:class:`~repro.sketches.celf.SketchCelfGreedyAll`, the service
serializer's estimator audit trail, and the bench comparators that grade
the scale suite.
"""

from __future__ import annotations

import pytest

from repro.bench.compare import sketch_error, sketch_speedup
from repro.core.objective import objective_value
from repro.core.registry import (
    SKETCH_CAPABLE_NAMES,
    STRATEGY_NAMES,
    algorithm_catalog,
    get_algorithm,
    use_strategy,
)
from repro.datasets.registry import get_dataset
from repro.exceptions import ParameterError
from repro.propagation.model import build_model
from repro.service.serialize import placement_payload
from repro.sketches.bottomk import epsilon_for_k, k_for_epsilon
from repro.sketches.celf import DEFAULT_RESCORE_LIMIT, SketchCelfGreedyAll

K = 10

_graphs: dict[str, object] = {}


def graph_of(name: str, **spec):
    key = (name, tuple(sorted(spec.items())))
    if key not in _graphs:
        _graphs[key] = get_dataset(name, **spec)
    return _graphs[key]


def exact_fixture():
    """Small graph, one source: sketches are exact, selections identical."""
    return graph_of("citation", seed=0, scale=0.1)


def approx_fixture():
    """The scale-dag's spontaneous sources overflow k=16 registers."""
    return graph_of("scale-dag", seed=0, scale=0.01)


# ----------------------------------------------------------------------
# Registry wiring
# ----------------------------------------------------------------------


def test_sketch_is_a_registered_strategy():
    assert "sketch" in STRATEGY_NAMES


@pytest.mark.parametrize("name", SKETCH_CAPABLE_NAMES)
def test_capable_names_resolve_to_sketch_impl(name):
    algorithm = get_algorithm(name, strategy="sketch")
    assert isinstance(algorithm, SketchCelfGreedyAll)
    # The reported name survives the strategy swap — results stay
    # attributable to what the user asked for.
    assert algorithm.name == name


def test_noncapable_names_fall_back_to_their_factory():
    algorithm = get_algorithm("G_1", strategy="sketch")
    assert not isinstance(algorithm, SketchCelfGreedyAll)


def test_catalog_flags_sketch_capability():
    rows = {row["name"]: row for row in algorithm_catalog()}
    for name in SKETCH_CAPABLE_NAMES:
        assert rows[name]["sketch_capable"]
    assert not rows["G_1"]["sketch_capable"]


def test_epsilon_wins_over_sketch_k():
    algorithm = get_algorithm(
        "G_All", strategy="sketch", sketch_k=8, epsilon=0.5
    )
    assert algorithm.sketch_k == k_for_epsilon(0.5)
    assert algorithm.epsilon <= 0.5


def test_sketch_seed_passes_through():
    algorithm = get_algorithm("G_All", strategy="sketch", sketch_seed=9)
    assert algorithm.sketch_seed == 9


def test_use_strategy_scope_selects_sketch():
    with use_strategy("sketch"):
        assert isinstance(get_algorithm("G_All"), SketchCelfGreedyAll)
    assert not isinstance(get_algorithm("G_All"), SketchCelfGreedyAll)


def test_constructor_rejects_bad_sketch_k():
    with pytest.raises(ParameterError):
        SketchCelfGreedyAll(sketch_k=3)
    with pytest.raises(ParameterError):
        SketchCelfGreedyAll(sketch_k=16.0)


def test_sketch_rejects_probabilistic_models():
    algorithm = SketchCelfGreedyAll(
        model=build_model("live-edge", edge_prob=0.5)
    )
    with pytest.raises(ParameterError):
        algorithm.place(exact_fixture(), K)


# ----------------------------------------------------------------------
# Exactness regime: bit-identical to exact Greedy_All
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "dataset,spec",
    [
        ("citation", {"seed": 0, "scale": 0.1}),
        ("twitter", {"seed": 0, "scale": 0.02}),
        ("fig2", {}),
    ],
)
def test_exact_regime_selection_is_bit_identical(dataset, spec):
    graph = graph_of(dataset, **spec)
    k = min(K, graph.number_of_nodes())
    exact = get_algorithm("G_All", strategy="exact").place(graph, k)
    sketch = get_algorithm("G_All", strategy="sketch").place(graph, k)
    assert sketch.filters == exact.filters
    assert [s.gain for s in sketch.steps] == [s.gain for s in exact.steps]
    assert sketch.rescored is True
    # In the exactness regime the estimates already *are* the gains.
    assert list(sketch.estimated_gains) == [s.gain for s in sketch.steps]


def test_exact_regime_gains_are_ints():
    result = get_algorithm("G_All", strategy="sketch").place(
        exact_fixture(), K
    )
    assert all(isinstance(s.gain, int) for s in result.steps)


# ----------------------------------------------------------------------
# Approximate regime: objective quality and the rescore tiers
# ----------------------------------------------------------------------


def test_approx_objective_within_epsilon_of_exact():
    graph = approx_fixture()
    algorithm = get_algorithm("G_All", strategy="sketch", sketch_k=64)
    assert len(graph.sources) > algorithm.sketch_k  # approximate regime
    sketch = algorithm.place(graph, K)
    exact = get_algorithm("G_All", strategy="exact").place(graph, K)
    f_sketch = objective_value(graph, sketch.filters)
    f_exact = objective_value(graph, exact.filters)
    assert f_sketch >= (1.0 - epsilon_for_k(64)) * f_exact


def test_rescore_tier_replaces_estimates_with_exact_gains():
    graph = approx_fixture()
    assert graph.number_of_nodes() <= DEFAULT_RESCORE_LIMIT
    algorithm = SketchCelfGreedyAll(sketch_k=16)
    result = algorithm.place(graph, K)
    assert result.rescored is True
    assert all(isinstance(s.gain, int) for s in result.steps)
    assert len(result.estimated_gains) == len(result.steps)
    # The selection ran on estimates; the estimates survive beside the
    # exact rescores, and total exact gain telescopes to the objective.
    assert sum(s.gain for s in result.steps) == objective_value(
        graph, result.filters
    )


def test_estimate_only_tier_keeps_float_gains():
    graph = approx_fixture()
    algorithm = SketchCelfGreedyAll(sketch_k=16, rescore_limit=0)
    result = algorithm.place(graph, K)
    assert result.rescored is False
    assert [s.gain for s in result.steps] == list(result.estimated_gains)
    assert all(isinstance(g, float) for g in result.estimated_gains)


def test_rescore_tiers_select_identically():
    graph = approx_fixture()
    rescored = SketchCelfGreedyAll(sketch_k=16).place(graph, K)
    estimated = SketchCelfGreedyAll(sketch_k=16, rescore_limit=0).place(
        graph, K
    )
    assert rescored.filters == estimated.filters


def test_k_zero_short_circuits():
    result = SketchCelfGreedyAll().place(exact_fixture(), 0)
    assert result.filters == ()
    assert result.steps == ()
    assert result.rescored is True


def test_sketch_evaluation_kinds_on_steps():
    result = get_algorithm("G_All", strategy="sketch").place(
        exact_fixture(), K
    )
    kinds = {k for step in result.steps for k, _ in step.evaluations}
    assert "sketch_gains" in kinds
    # The build charges once, on the first step only.
    builds = [
        c
        for step in result.steps
        for k, c in step.evaluations
        if k == "sketch_build"
    ]
    assert builds == [1]


# ----------------------------------------------------------------------
# Serializer: the estimator audit trail
# ----------------------------------------------------------------------


def test_payload_carries_sketch_block_when_rescored():
    graph = approx_fixture()
    result = SketchCelfGreedyAll(sketch_k=16).place(graph, K)
    payload = placement_payload(graph, result)
    assert payload["sketch"]["rescored"] is True
    assert len(payload["sketch"]["estimated_gains"]) == len(result.steps)
    assert payload["objective"] == objective_value(graph, result.filters)


def test_payload_estimate_only_skips_scoring():
    graph = approx_fixture()
    result = SketchCelfGreedyAll(sketch_k=16, rescore_limit=0).place(
        graph, K
    )
    payload = placement_payload(graph, result)
    assert payload["scored"] is False
    assert payload["objective_estimate"] == pytest.approx(
        sum(result.estimated_gains)
    )
    assert "phi" not in payload and "objective" not in payload
    assert payload["sketch"]["rescored"] is False


def test_payload_exact_strategies_omit_sketch_block():
    graph = exact_fixture()
    result = get_algorithm("G_All", strategy="exact").place(graph, K)
    payload = placement_payload(graph, result)
    assert "sketch" not in payload


# ----------------------------------------------------------------------
# Bench comparators
# ----------------------------------------------------------------------


def _row(key, seconds, plan_seconds, objective):
    return {
        "key": key,
        "algorithm": key.split("/")[2],
        "seconds": seconds,
        "plan_seconds": plan_seconds,
        "objective": objective,
    }


def test_sketch_speedup_is_end_to_end():
    rows = [
        # Exact pays its warm in plan; sketch pays almost nothing.
        _row("d@1/seed0/G_All/k10/numpy", 0.04, 45.0, 1000),
        _row("d@1/seed0/G_All_sketch/k10/numpy", 0.28, 0.08, 930),
    ]
    speedup = sketch_speedup(rows)
    assert speedup == {
        "d@1/seed0/G_All_sketch/k10/numpy": pytest.approx(45.04 / 0.36)
    }


def test_sketch_speedup_skips_unmatched_cells():
    rows = [_row("d@10/seed0/G_All_sketch/k10/numpy/streamed", 1.0, 0.1, 0)]
    assert sketch_speedup(rows) == {}


def test_sketch_error_is_objective_ratio():
    rows = [
        _row("d@1/seed0/G_All/k10/numpy", 0.04, 45.0, 1000),
        _row("d@1/seed0/G_All_sketch/k10/numpy", 0.28, 0.08, 930),
    ]
    assert sketch_error(rows) == {
        "d@1/seed0/G_All_sketch/k10/numpy": pytest.approx(0.93)
    }


def test_sketch_error_skips_estimate_only_cells():
    rows = [
        _row("d@1/seed0/G_All/k10/numpy", 0.04, 45.0, 1000),
        _row("d@1/seed0/G_All_sketch/k10/numpy/est", 0.28, 0.08, 912.5),
    ]
    assert sketch_error(rows) == {}
