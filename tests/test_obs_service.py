"""Service observability: /metrics, /traces, request ids, logging.

Boots the real threaded HTTP server (ephemeral port) and checks the
surfaces ``docs/observability.md`` documents: the Prometheus scrape, the
per-job span trees, ``X-Request-Id`` propagation, the structured access
log, and the ``/healthz`` store-consistency guarantee.
"""

from __future__ import annotations

import json
import logging
import re
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.obs.trace import TRACER
from repro.service.app import ServiceApp
from repro.service.http import make_server


@pytest.fixture(autouse=True)
def _traced():
    """Serve-like tracing for every test; clean tracer on the way out."""
    TRACER.enable()
    TRACER.clear()
    yield
    TRACER.disable()
    TRACER.clear()


@pytest.fixture
def server():
    app = ServiceApp(workers=2, warm_backends=False)
    srv = make_server(app, port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    app.close()
    thread.join(5)


def call(server, method, path, body=None, headers=None):
    url = f"http://127.0.0.1:{server.port}{path}"
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            raw = response.read()
            kind = response.headers.get("Content-Type", "")
            doc = raw.decode() if "text/plain" in kind else json.loads(raw)
            return response.status, doc, dict(response.headers)
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read()), dict(err.headers)


def wait_for_log(caplog, predicate, timeout=5.0):
    """Access lines land *after* the response is sent; poll for them."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        lines = [r.getMessage() for r in caplog.records]
        if any(predicate(ln) for ln in lines):
            return lines
        time.sleep(0.01)
    return [r.getMessage() for r in caplog.records]


def place(server, digest, algorithm="G_All", k=3, **extra):
    body = {"graph": digest, "algorithm": algorithm, "k": k, "wait": True}
    return call(server, "POST", "/placements", body, **extra)


EXPOSITION_LINE = re.compile(
    r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \S+)$"
)


LABEL_PAIR = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')


def parse_exposition(text):
    """{(name, frozenset(label pairs)): value} for every sample line."""
    samples = {}
    for line in text.rstrip("\n").split("\n"):
        assert EXPOSITION_LINE.match(line), f"bad exposition line: {line!r}"
        if line.startswith("#"):
            continue
        name_part, value = line.rsplit(" ", 1)
        if "{" in name_part:
            name, raw = name_part[:-1].split("{", 1)
            labels = frozenset(LABEL_PAIR.findall(raw))
        else:
            name, labels = name_part, frozenset()
        samples[(name, labels)] = value
    return samples


def test_metrics_after_cold_and_hit(server):
    status, doc, _ = call(server, "POST", "/graphs", {"dataset": "fig10"})
    assert status == 201
    digest = doc["digest"]
    assert place(server, digest)[0] == 200  # cold: computed
    assert place(server, digest)[0] == 200  # identical: cache hit

    status, text, headers = call(server, "GET", "/metrics")
    assert status == 200
    assert "text/plain" in headers["Content-Type"]
    samples = parse_exposition(text)

    families = {name for name, _ in samples}
    assert len(families) >= 12
    # Every subsystem shows up in one scrape.
    for expected in (
        "fp_backend_evaluations_total",   # backends
        "fp_cache_requests_total",        # placement cache
        "fp_store_graphs",                # graph store
        "fp_jobs_submitted_total",        # job manager
        "fp_sampling_world_cache_total",  # sampled worlds
        "fp_http_requests_total",         # http layer
        "fp_job_run_seconds_bucket",      # histogram exposition
    ):
        assert any(name == expected for name, _ in samples), expected

    def value(name, **labels):
        return float(samples[(name, frozenset(labels.items()))])

    assert value("fp_cache_requests_total", outcome="hit") >= 1
    assert value("fp_cache_requests_total", outcome="miss") >= 1
    assert value("fp_store_graphs") == 1
    assert value("fp_store_registrations_total") == 1
    assert value("fp_jobs_submitted_total") >= 1
    assert value("fp_jobs", state="done") >= 1
    assert (
        value("fp_backend_evaluations_total",
              kind="marginal_gains", backend="python") >= 0
    )


def test_request_id_echoed_and_generated(server):
    status, _, headers = call(
        server, "GET", "/healthz", headers={"X-Request-Id": "req-test-1"}
    )
    assert status == 200 and headers["X-Request-Id"] == "req-test-1"
    status, _, headers = call(server, "GET", "/healthz")
    assert status == 200
    generated = headers["X-Request-Id"]
    assert generated and generated != "req-test-1"


def test_trace_served_by_job_id_with_request_id(server):
    status, doc, _ = call(server, "POST", "/graphs", {"dataset": "fig10"})
    digest = doc["digest"]
    status, placed, _ = place(
        server, digest, headers={"X-Request-Id": "req-traced"}
    )
    assert status == 200
    job_id = placed["job"]["id"]
    assert placed["job"]["request_id"] == "req-traced"

    status, traced, _ = call(server, "GET", f"/traces/{job_id}")
    assert status == 200
    trace = traced["trace"]
    assert trace["trace_id"] == job_id
    assert trace["attrs"]["request_id"] == "req-traced"
    names = [s["name"] for s in trace["spans"]]
    assert "service.solve" in names and "service.serialize" in names
    assert "service.solve" in traced["tree"]
    assert traced["job"]["id"] == job_id

    status, err, _ = call(server, "GET", "/traces/job-999999")
    assert status == 404 and "unknown job" in err["error"]


def test_traces_404_when_tracing_disabled(server):
    TRACER.disable()
    status, doc, _ = call(server, "POST", "/graphs", {"dataset": "fig10"})
    status, placed, _ = place(server, doc["digest"], algorithm="G_Max")
    assert status == 200
    status, err, _ = call(
        server, "GET", f"/traces/{placed['job']['id']}"
    )
    assert status == 404 and "tracing" in err["error"]


def test_healthz_store_block_consistent_under_registration(server):
    """The /healthz store stats must be one atomic snapshot.

    Concurrent registrations race the scrape; whatever interleaving
    happens, each response must satisfy the store's own invariant
    ``graphs == registrations - evictions`` (no eviction bound is set).
    """
    datasets = ["fig1", "fig2", "fig3", "fig10"]
    errors = []

    def register(name):
        try:
            call(server, "POST", "/graphs", {"dataset": name, "seed": 1})
        except Exception as exc:  # pragma: no cover - diagnostic only
            errors.append(exc)

    threads = [
        threading.Thread(target=register, args=(name,)) for name in datasets
    ]
    for t in threads:
        t.start()
    snapshots = []
    for _ in range(20):
        status, health, _ = call(server, "GET", "/healthz")
        assert status == 200
        snapshots.append(health["store"])
    for t in threads:
        t.join(10)
    assert not errors
    for store in snapshots:
        assert store["graphs"] == (
            store["registrations"] - store["evictions"]
        ), store
    status, health, _ = call(server, "GET", "/healthz")
    assert health["store"]["graphs"] == health["graphs"] == len(datasets)


def test_json_access_log_and_error_traceback(caplog):
    app = ServiceApp(workers=1, warm_backends=False)
    srv = make_server(app, port=0, log_format="json")
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        with caplog.at_level(logging.INFO, logger="repro.service"):
            call(srv, "GET", "/healthz", headers={"X-Request-Id": "req-log"})
            # An unhandled handler exception must log its traceback.
            app.handle_algorithms = None  # type: ignore[assignment]
            status, doc, _ = call(srv, "GET", "/algorithms")
            # Access lines land after the response is sent, and leaving
            # at_level() restores the WARNING default — poll inside it.
            wait_for_log(
                caplog, lambda ln: "/algorithms" in ln and ln.startswith("{")
            )
        assert status == 500 and "TypeError" in doc["error"]
        infos = [
            r.getMessage() for r in caplog.records
            if r.levelno == logging.INFO
        ]
        access = [json.loads(m) for m in infos if m.startswith("{")]
        healthz = [a for a in access if a["path"] == "/healthz"]
        assert healthz and healthz[0]["status"] == 200
        assert healthz[0]["request_id"] == "req-log"
        assert isinstance(healthz[0]["duration_ms"], float)
        warnings = [
            r.getMessage() for r in caplog.records
            if r.levelno == logging.WARNING
        ]
        assert any(
            "Traceback" in m and "/algorithms" in m for m in warnings
        )
    finally:
        srv.shutdown()
        srv.server_close()
        app.close()
        thread.join(5)


def test_cache_hit_annotated_in_text_log(caplog):
    app = ServiceApp(workers=1, warm_backends=False)
    srv = make_server(app, port=0)  # text format is the default
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        with caplog.at_level(logging.INFO, logger="repro.service"):
            _, doc, _ = call(srv, "POST", "/graphs", {"dataset": "fig1"})
            place(srv, doc["digest"], k=1)
            place(srv, doc["digest"], k=1)
            # Poll inside at_level(): the access line is logged after
            # the response reaches the client (see wait_for_log).
            lines = wait_for_log(caplog, lambda ln: "cache=hit" in ln)
        assert any("cache=miss" in ln for ln in lines)
        assert any("cache=hit" in ln for ln in lines)
        assert all("request_id=" in ln for ln in lines if "placements" in ln)
    finally:
        srv.shutdown()
        srv.server_close()
        app.close()
        thread.join(5)
