"""The paper's ``plist`` bookkeeping, implemented faithfully.

Section 4's "Implementation of Greedy All" maintains, for every node ``v``,
a dictionary ``plist_v`` with ``plist_v[x] = #paths(x, v)`` for each
ancestor ``x`` — computed in topological order by summing the parents'
lists — plus the technical self-entry ``plist_v[v] = 1``.  From these:

* ``Prefix(v)`` — copies received — is the sum of ``v``'s arrival list;
* ``Suffix(v) = Σ_x plist_x[v]`` (over ``x ≠ v``) — paths leaving ``v``;
* a filter ``f``'s list is *reset* to ``{f: 1}`` before being handed to its
  children, which makes both quantities filter-aware;
* ``I(v | A) = (Prefix(v) − 1) × Suffix(v)``.

This is the paper's ``O(Δ·|E|)``-per-iteration engine.  The library's fast
engine (:mod:`repro.core.impact`) produces identical numbers with two
linear passes; this module exists (a) as an executable specification to
test the fast engine against, and (b) to reproduce the running-time
comparisons of Figure 11, whose costs are dominated by exactly this
bookkeeping.
"""

from __future__ import annotations

from collections.abc import Collection
from dataclasses import dataclass
from typing import Hashable

from repro.exceptions import MissingNodeError
from repro.graphs.cgraph import CGraph

Node = Hashable


@dataclass
class PlistTables:
    """All per-node path dictionaries for one item, under a filter set.

    Attributes
    ----------
    arrivals:
        ``arrivals[v][x]`` — number of paths from ``x`` to ``v`` whose
        interior (endpoints excluded) contains no filter, restricted to
        segments an actual copy travels: ``x`` is the origin or a filter
        that received the item.  ``Σ arrivals[v].values()`` is exactly the
        number of copies ``v`` receives.
    prefix:
        ``prefix[v]`` — copies received (the paper's ``Prefix``).
    suffix:
        ``suffix[v]`` — non-empty filter-interior-free paths leaving ``v``
        (the paper's ``Suffix`` after resets; self-entries excluded).
    """

    arrivals: dict[Node, dict[Node, int]]
    prefix: dict[Node, int]
    suffix: dict[Node, int]


def compute_plists(
    graph: CGraph,
    origin: Node,
    filters: Collection[Node] = (),
) -> PlistTables:
    """Run the paper's recursive plist computation for one item.

    The sweep runs over the compiled view's interned ids (per-node
    arrival dicts keyed by anchor *ids*); the returned tables translate
    back to user nodes at the boundary, as everywhere else.
    """
    from repro.propagation.engine import loose_filter_mask

    compiled = graph.compiled()
    if origin not in compiled.index:
        raise MissingNodeError(origin)
    origin_id = compiled.index[origin]
    mask = loose_filter_mask(compiled, filters)
    n = compiled.n
    succ = compiled.succ_ids

    arrivals: list[dict[int, int]] = [{} for _ in range(n)]
    prefix = [0] * n
    suffix = [0] * n

    # Anchors whose plist entries correspond to actual copies in flight:
    # the origin, plus every filter the item reached (a filter re-anchors
    # path counting because its list is reset to {f: 1}).  Entries keyed by
    # ordinary ancestors are path bookkeeping for Suffix, not copies, so
    # Prefix(v) — the copies v receives — sums the emitting anchors only.
    emitting = bytearray(n)
    emitting[origin_id] = 1

    # outbound is the list v hands to each child: the reset {v: 1} for
    # the origin and for filters that received the item, the arrival list
    # plus the self-entry otherwise, and nothing for nodes the item never
    # reaches.
    for v in compiled.topo_order:
        arrival = arrivals[v]
        prefix[v] = sum(
            count for anchor, count in arrival.items() if emitting[anchor]
        )
        if v == origin_id:
            outbound_v: dict[int, int] = {v: 1}
        elif prefix[v] == 0:
            continue
        elif mask[v]:
            emitting[v] = 1
            outbound_v = {v: 1}
        else:
            outbound_v = dict(arrival)
            outbound_v[v] = outbound_v.get(v, 0) + 1
        for child in succ[v]:
            child_arrival = arrivals[child]
            for anchor, count in outbound_v.items():
                child_arrival[anchor] = child_arrival.get(anchor, 0) + count

    # Suffix(v) = Σ_x plist_x[v]: fold every arrival entry back onto the
    # node it is keyed by (the online bookkeeping of the paper's Eq. 4).
    for x in range(n):
        for anchor, count in arrivals[x].items():
            suffix[anchor] += count

    nodes = compiled.nodes
    return PlistTables(
        arrivals={
            nodes[v]: {nodes[a]: c for a, c in arrival.items()}
            for v, arrival in enumerate(arrivals)
        },
        prefix=dict(zip(nodes, prefix)),
        suffix=dict(zip(nodes, suffix)),
    )


def plist_impacts(
    graph: CGraph,
    filters: Collection[Node] = (),
) -> dict[Node, int]:
    """``I(v | A)`` for every node, via plists (summed over sources' items).

    This is the quantity Algorithm 1 recomputes at every iteration.  The
    test suite asserts it coincides with
    :func:`repro.core.impact.marginal_gains` everywhere.
    """
    filter_set = set(filters)
    gains: dict[Node, int] = dict.fromkeys(graph.nodes(), 0)
    for origin in graph.sources:
        tables = compute_plists(graph, origin, filter_set)
        for v in graph.nodes():
            if v in filter_set:
                continue
            surplus = tables.prefix[v] - 1
            if surplus > 0:
                gains[v] += surplus * tables.suffix[v]
    return gains
