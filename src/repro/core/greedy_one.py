"""``Greedy_1`` — the degree-product heuristic.

The paper's cheapest algorithm: score every node by

    ``m(v) = din(v) × dout(v)``

— a lower bound on the copies a (fully supplied) node pushes to its
children — and return the ``k`` highest scorers.  ``O(k·n + |E|)`` total.

Figure 2's lesson, reproduced in ``repro.datasets.toy.fig2_like_graph``:
``m`` ignores *where* a node sits, so the top scorer may receive a single
copy and be a useless filter while a modest-degree node downstream of the
real multiplicity is the unique optimum.
"""

from __future__ import annotations

import random
from typing import Hashable

from repro.core.base import PlacementResult, PlacementStep, check_budget
from repro.graphs.cgraph import CGraph

Node = Hashable


def degree_score(graph: CGraph, node: Node) -> int:
    """``m(v) = din(v) × dout(v)``."""
    return graph.in_degree(node) * graph.out_degree(node)


class GreedyOne:
    """The paper's ``Greedy_1`` heuristic.

    ``backend`` and ``model`` are accepted for signature uniformity with
    the rest of the greedy family but ignored: ``m(v)`` is pure degree
    bookkeeping and never evaluates propagation (the degree product is a
    *structural* score, identical under every relaying model).
    """

    name = "G_1"
    prefix_consistent = True

    def __init__(
        self, *, backend: object | None = None, model: object | None = None
    ) -> None:
        self.backend = backend
        self.model = model

    def place(
        self,
        graph: CGraph,
        k: int,
        *,
        rng: random.Random | None = None,
    ) -> PlacementResult:
        """Rank by ``m(v) = din(v) × dout(v)`` and take the top ``k``.

        Pure degree-array arithmetic on the compiled view — no dict or
        node-object traffic until the result boundary.
        """
        check_budget(graph, k)
        compiled = graph.compiled()
        in_degree, out_degree = compiled.in_degree, compiled.out_degree
        scores = [in_degree[v] * out_degree[v] for v in range(compiled.n)]
        ranked = sorted(
            (v for v, score in enumerate(scores) if score > 0),
            key=lambda v: (-scores[v], v),
        )
        chosen_ids = ranked[:k]
        steps = tuple(
            PlacementStep(node=compiled.nodes[v], gain=scores[v])
            for v in chosen_ids
        )
        return PlacementResult(
            algorithm=self.name,
            filters=tuple(compiled.to_nodes(chosen_ids)),
            requested_k=k,
            steps=steps,
        )


def greedy_one(graph: CGraph, k: int) -> PlacementResult:
    """Functional convenience wrapper around :class:`GreedyOne`."""
    return GreedyOne().place(graph, k)
