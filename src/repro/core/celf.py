"""Lazy-greedy ``Greedy_All`` — CELF on the incremental gain engine.

``F`` is monotone and submodular (Theorem 3's prerequisites), so a node's
marginal gain ``I(v | A)`` can only shrink as ``A`` grows.  The classic
consequence (Minoux's lazy greedy, popularized as CELF by Leskovec et al.)
is that *stale* gains are upper bounds: keep every candidate in a max-heap
keyed by the last gain you computed for it, and a candidate whose stale
key already tops the heap with a fresh value needs no other candidate
re-evaluated at all.

This implementation pairs the heap with the backends' incremental gain
engine (:meth:`repro.backends.base.PropagationBackend.gain_session`):

1. one full sweep seeds the heap with ``I(v | ∅)`` for every node;
2. selecting a node costs one *regional* session update
   (``add_filter`` re-settles ψ downstream and W upstream of the pick),
   which reports exactly which candidates' gains moved — only those heap
   entries become stale;
3. a stale entry popped from the heap is refreshed with an O(1) state
   read (``session.gain``) and pushed back; fresh entries are selected
   immediately.

Hence the whole run needs exactly **one** full-graph propagation sweep —
eager ``Greedy_All`` needs one *per placement* — and the placement
sequence is provably identical: ties are broken by the same
``graph.nodes()`` rank as the eager loop, and a popped fresh entry
dominates every other candidate's true gain because all other entries are
upper bounds of theirs.

Selection equivalence is enforced by ``tests/test_lazy_greedy_equivalence``
across datasets, budgets and backends; the bench suite ``lazy`` measures
the evaluation savings.
"""

from __future__ import annotations

import heapq
import random
from typing import TYPE_CHECKING, Hashable

from repro.core.base import PlacementResult, PlacementStep, check_budget
from repro.graphs.cgraph import CGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import PropagationBackend
    from repro.propagation.model import PropagationModel

Node = Hashable

#: Audit record emitted per lazy refresh: (node, stale upper bound, fresh
#: gain, selection round).  Submodularity guarantees fresh ≤ stale — the
#: property test asserts it.
AuditEntry = tuple[Node, int, int, int]


class CelfGreedyAll:
    """CELF ``Greedy_All``: identical selections, one full sweep total.

    Parameters
    ----------
    early_stop:
        Mirror of :class:`repro.core.greedy_all.GreedyAll`'s flag.  True
        (default) stops once every remaining gain is zero; False keeps
        selecting zero-gain nodes until ``k`` placements, reproducing
        Algorithm 1 as printed.
    backend:
        Propagation backend for the session (name, instance, or None for
        the registry default).
    name:
        Override the reported algorithm name.  The strategy layer passes
        the *base* name (e.g. ``"G_All"``) so downstream labels, bench
        keys and drift detection treat lazy execution as what it is — an
        execution detail with bit-identical results.
    audit:
        Optional list collecting an :data:`AuditEntry` per refresh, for
        the heap-staleness property check.
    """

    name = "G_All_lazy"
    prefix_consistent = True

    def __init__(
        self,
        *,
        early_stop: bool = True,
        backend: "str | PropagationBackend | None" = None,
        name: str | None = None,
        audit: list[AuditEntry] | None = None,
        model: "PropagationModel | None" = None,
    ) -> None:
        self.early_stop = early_stop
        self.backend = backend
        self.audit = audit
        self.model = model
        if name is not None:
            self.name = name

    def place(
        self,
        graph: CGraph,
        k: int,
        *,
        rng: random.Random | None = None,
    ) -> PlacementResult:
        """CELF selection: one full sweep, then heap pops + regional updates.

        Runs on interned ids end to end — the heap holds ``(-gain, id)``
        pairs (an id *is* the ``graph.nodes()`` rank, so the tuple compare
        reproduces the eager argmax's lowest-rank tie-break), and the
        session is driven through its id fast path.  User nodes appear
        only in the recorded steps and the final placement.

        Under a probabilistic relaying model the heap ranks the
        summed-over-worlds SAA gains.  The lazy upper-bound argument
        carries over verbatim: with common random numbers the SAA
        objective is itself monotone submodular (an average of
        deterministic objectives on subgraph worlds), so stale SAA gains
        are still upper bounds and the selections provably equal eager
        SAA ``Greedy_All``'s.
        """
        from repro.backends.registry import resolve_backend
        from repro.obs.metrics import REGISTRY
        from repro.obs.trace import span
        from repro.propagation.model import resolve_model

        check_budget(graph, k)
        model = resolve_model(self.model)
        compiled = graph.compiled()
        nodes = compiled.nodes
        chosen_ids: list[int] = []
        steps: list[PlacementStep] = []
        if k == 0:
            return PlacementResult(
                algorithm=self.name, filters=(), requested_k=0, steps=()
            )

        backend = resolve_backend(self.backend)
        with span("celf.session_init", backend=backend.name):
            if model is None:
                session = backend.gain_session(graph, ())
            else:
                session = backend.sampled_gain_session(graph, (), model=model)
        # Max-heap of (-gain, id); ids are unique per node, so entries
        # never compare the (possibly unorderable) node itself, and ties
        # resolve to the lowest graph.nodes() rank — bit-identical to the
        # eager argmax.
        heap: list[tuple[int, int]] = [
            (-gain, v)
            for v, gain in enumerate(session.gains_ids())
            if gain > 0 or not self.early_stop
        ]
        heapq.heapify(heap)
        stale: set[int] = set()

        refreshes = 0
        pops_total = 0
        refreshes_total = 0
        first_step = True
        round_no = 0
        with span("celf.select", backend=backend.name, k=k) as select_span:
            while len(chosen_ids) < k and heap:
                neg_gain, v = heapq.heappop(heap)
                pops_total += 1
                if v in stale:
                    # Lazy re-evaluation: an O(1) read of the maintained
                    # session state, only ever for the current heap top.
                    gain = session.gain_id(v)
                    stale.discard(v)
                    refreshes += 1
                    refreshes_total += 1
                    if self.audit is not None:
                        self.audit.append(
                            (nodes[v], -neg_gain, gain, round_no)
                        )
                    if gain > 0 or not self.early_stop:
                        heapq.heappush(heap, (-gain, v))
                    continue
                gain = -neg_gain
                if gain <= 0 and self.early_stop:
                    break  # defensive: only positive gains are ever pushed
                # Fresh heap top: every other entry is an upper bound of
                # its node's true gain, so v is the exact argmax — select.
                affected = session.add_filter_id(v)
                evaluations = [
                    ("session_refresh", refreshes),
                    ("session_update", 1),
                ]
                if first_step:
                    evaluations.append(("session_init", 1))
                    first_step = False
                steps.append(
                    PlacementStep(
                        node=nodes[v],
                        gain=gain,
                        evaluations=tuple(
                            sorted((k_, c) for k_, c in evaluations if c)
                        ),
                    )
                )
                chosen_ids.append(v)
                stale.update(affected)
                stale.discard(v)
                refreshes = 0
                round_no += 1
            select_span.set("pops", pops_total)
            select_span.set("refreshes", refreshes_total)
            select_span.set("placed", len(chosen_ids))
        # Bulk metrics flush: three locked increments per run, never per
        # heap operation.  Pops vs. refreshes is the laziness headline —
        # a pop that needed no refresh was decided by a stale upper bound.
        REGISTRY.counter(
            "fp_celf_heap_pops_total",
            "CELF heap pops across all lazy-greedy runs.",
        ).inc(pops_total)
        REGISTRY.counter(
            "fp_celf_refreshes_total",
            "CELF lazy gain refreshes (O(1) stale re-evaluations).",
        ).inc(refreshes_total)
        REGISTRY.counter(
            "fp_celf_updates_total",
            "CELF regional session updates (filters actually placed).",
        ).inc(len(chosen_ids))
        return PlacementResult(
            algorithm=self.name,
            filters=tuple(compiled.to_nodes(chosen_ids)),
            requested_k=k,
            steps=tuple(steps),
        )


def lazy_greedy_all(graph: CGraph, k: int) -> PlacementResult:
    """Functional convenience wrapper around :class:`CelfGreedyAll`."""
    return CelfGreedyAll().place(graph, k)
