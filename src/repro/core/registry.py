"""Name-based algorithm lookup, with an execution-strategy axis.

The experiment drivers, benchmarks and CLI all refer to algorithms by the
names the paper's figures use (``G_All``, ``G_Max``, ``G_1``, ``G_L``,
``Rand_W``, ``Rand_I``, ``Rand_K``) plus this library's extras.

Orthogonal to the *name* is the **strategy** — how the selections are
computed, never *what* they are:

* ``exact`` (default) — the direct implementations; eager ``Greedy_All``
  runs one full impact sweep per placement.
* ``lazy`` — the CELF implementations on the incremental gain engine
  (:mod:`repro.core.celf`): one full sweep total, regional updates after
  each placement.  Results are bit-identical to ``exact`` (enforced by
  the equivalence tests), so a strategy switch can never change a figure,
  a filter set, or a ``BENCH.json`` drift check — only the cost profile.
* ``sketch`` — selection on bottom-k reachability estimates
  (:mod:`repro.sketches`): float sweeps whose cost is independent of the
  source count, with the winning prefix exactly rescored.  On graphs
  with fewer sources than sketch registers (every built-in dataset) the
  estimates are exact and results stay bit-identical to ``exact``;
  beyond that the strategy trades a bounded ``(1 ± ε)`` estimator error
  for the million-node scale tier.

Algorithms without a lazy path (the heuristics, the randomized baselines,
the exact searches) ignore the strategy: there is nothing to lazify in a
single-sweep or sweep-free method.  Scope a strategy with
:func:`use_strategy` (the CLI's ``--strategy`` flag does this) or pass it
per lookup via ``get_algorithm(name, strategy=...)``.

A third orthogonal axis is the **propagation model**
(:mod:`repro.propagation.model`): ``get_algorithm(name, model=...)`` pins
a probabilistic relaying model on model-aware algorithms
(:data:`MODEL_AWARE_NAMES`), under which every gain/score evaluation
becomes a seeded sample-average over live-edge worlds.  ``model=None``
(the default) is deterministic relaying and leaves every code path —
and therefore every result — bit-identical to before the axis existed.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from contextlib import contextmanager
from typing import TYPE_CHECKING

from repro.core.base import PlacementAlgorithm
from repro.scoping import ScopedDefault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import PropagationBackend
    from repro.propagation.model import PropagationModel
from repro.core.betweenness import BetweennessPlacement
from repro.core.celf import CelfGreedyAll
from repro.core.exhaustive import ExhaustiveSearch
from repro.core.greedy_all import GreedyAll, LazyGreedyAll
from repro.core.greedy_l import GreedyL
from repro.core.greedy_max import GreedyMax
from repro.core.greedy_one import GreedyOne
from repro.core.random_placement import (
    RandomIndependent,
    RandomK,
    RandomWeighted,
)
from repro.core.tree_dp import TreeDynamicProgram
from repro.exceptions import ParameterError
from repro.sketches.celf import SketchCelfGreedyAll

_FACTORIES: dict[str, Callable[[], PlacementAlgorithm]] = {
    "G_All": GreedyAll,
    # Algorithm 1 exactly as printed: all k iterations, no early stop —
    # the cost profile Figure 11 measures.
    "G_All_paper": lambda: GreedyAll(early_stop=False),
    "G_All_lazy": LazyGreedyAll,
    "G_All_sketch": SketchCelfGreedyAll,
    "G_Max": GreedyMax,
    "G_1": GreedyOne,
    "G_L": GreedyL,
    "Rand_K": RandomK,
    "Rand_I": RandomIndependent,
    "Rand_W": RandomWeighted,
    "Tree_DP": TreeDynamicProgram,
    "Optimal": ExhaustiveSearch,
    "Betweenness": BetweennessPlacement,
}

#: Lazy-capable names: under ``strategy="lazy"`` these resolve to CELF
#: variants that keep the original reported name (results are identical,
#: so labels, curves and bench keys must not fork).
_LAZY_FACTORIES: dict[str, Callable[[], PlacementAlgorithm]] = {
    "G_All": lambda: CelfGreedyAll(name="G_All"),
    "G_All_paper": lambda: CelfGreedyAll(
        early_stop=False, name="G_All_paper"
    ),
    "G_All_lazy": CelfGreedyAll,
}

#: Sketch-capable names: under ``strategy="sketch"`` these resolve to the
#: bottom-k estimate-driven implementation, keeping the original reported
#: name (in the exactness regime results are identical; beyond it the
#: label still denotes the same selection rule, executed on estimates).
_SKETCH_FACTORIES: dict[str, Callable[[], PlacementAlgorithm]] = {
    "G_All": lambda: SketchCelfGreedyAll(name="G_All"),
    "G_All_paper": lambda: SketchCelfGreedyAll(
        early_stop=False, name="G_All_paper"
    ),
    "G_All_lazy": lambda: SketchCelfGreedyAll(name="G_All_lazy"),
    "G_All_sketch": SketchCelfGreedyAll,
}

#: Every registered algorithm name, in presentation order.
ALGORITHM_NAMES: tuple[str, ...] = tuple(_FACTORIES)

#: Execution strategies accepted by ``get_algorithm`` / ``--strategy``.
STRATEGY_NAMES: tuple[str, ...] = ("exact", "lazy", "sketch")

#: Algorithm names whose scores change under a probabilistic relaying
#: model (the rest score structurally or draw at random and ignore it).
MODEL_AWARE_NAMES: tuple[str, ...] = (
    "G_All",
    "G_All_paper",
    "G_All_lazy",
    "G_Max",
    "G_L",
)

#: Algorithm names that actually change execution under ``lazy``.
LAZY_CAPABLE_NAMES: tuple[str, ...] = tuple(_LAZY_FACTORIES)

#: Algorithm names that actually change execution under ``sketch``.
SKETCH_CAPABLE_NAMES: tuple[str, ...] = tuple(_SKETCH_FACTORIES)

#: The seven algorithms the paper's FR figures plot, in legend order.
PAPER_ALGORITHM_NAMES: tuple[str, ...] = (
    "G_All",
    "G_Max",
    "G_1",
    "G_L",
    "Rand_W",
    "Rand_I",
    "Rand_K",
)

#: The subset of names whose results are deterministic for a fixed graph.
DETERMINISTIC_ALGORITHM_NAMES: tuple[str, ...] = (
    "G_All",
    "G_All_lazy",
    "G_All_sketch",
    "G_Max",
    "G_1",
    "G_L",
    "Tree_DP",
    "Optimal",
    "Betweenness",
)

# ``use_strategy`` scopes are per-thread, mirroring ``use_backend``: the
# service resolves algorithms concurrently and one request's strategy must
# not leak into another's.
_default_strategy: ScopedDefault[str] = ScopedDefault("exact")


def _check_strategy(strategy: str) -> None:
    if strategy not in STRATEGY_NAMES:
        known = ", ".join(STRATEGY_NAMES)
        raise ParameterError(
            f"unknown strategy {strategy!r}; known strategies: {known}"
        )


def get_default_strategy() -> str:
    """The strategy used when ``get_algorithm`` gets no explicit one.

    The innermost :func:`use_strategy` scope on the calling thread wins;
    otherwise the process-wide default applies.
    """
    return _default_strategy.get()


def set_default_strategy(strategy: str) -> None:
    """Set the process-wide default execution strategy."""
    _check_strategy(strategy)
    _default_strategy.set_global(strategy)


@contextmanager
def use_strategy(strategy: str) -> Iterator[str]:
    """Scope the default strategy to a ``with`` block, on this thread only.

    This is how the strategy reaches code that looks algorithms up by
    name deep inside a run (experiment drivers, the FR sweep, the bench
    harness) without threading a parameter through every layer.  Scopes
    nest and never bleed between threads.
    """
    _check_strategy(strategy)
    with _default_strategy.scoped(strategy):
        yield strategy


def get_algorithm(
    name: str,
    *,
    strategy: str | None = None,
    backend: "str | PropagationBackend | None" = None,
    model: "PropagationModel | None" = None,
    sketch_k: int | None = None,
    epsilon: float | None = None,
    sketch_seed: int | None = None,
) -> PlacementAlgorithm:
    """Instantiate the algorithm registered under ``name``.

    ``strategy`` selects the execution strategy (``"exact"``, ``"lazy"``
    or ``"sketch"``; None uses the scoped/process default).  Lazy
    execution returns the CELF implementation for capable names and the
    exact one otherwise — selections are identical either way.  Sketch
    execution returns the bottom-k estimate-driven implementation for
    capable names (:data:`SKETCH_CAPABLE_NAMES`); ``sketch_k`` /
    ``epsilon`` / ``sketch_seed`` tune it (``epsilon`` wins over
    ``sketch_k`` via :func:`repro.sketches.bottomk.k_for_epsilon`) and
    are ignored by algorithms without sketch attributes.

    ``backend`` pins the propagation backend on the returned instance for
    algorithms that evaluate gains through one (the greedy family) —
    this is how the service resolves a fully-specified ``(name, strategy,
    backend)`` request without touching any process-wide default.
    Sweep-free algorithms ignore it.

    ``model`` pins a probabilistic relaying model
    (:class:`~repro.propagation.model.PropagationModel`) the same way —
    the third axis of a fully-specified request.  None inherits the
    :func:`repro.propagation.model.use_model` scope (which defaults to
    deterministic relaying, the exact fast path).  Algorithms whose
    scores are structural (``G_1``) or random (``Rand_*``) accept and
    ignore it; the exact searches reject model-aware use by simply not
    exposing the attribute.

    Raises :class:`~repro.exceptions.ParameterError` for unknown names or
    strategies, listing the valid ones.
    """
    if strategy is None:
        strategy = _default_strategy.get()
    _check_strategy(strategy)
    if name not in _FACTORIES:
        known = ", ".join(sorted(_FACTORIES))
        raise ParameterError(
            f"unknown algorithm {name!r}; known algorithms: {known}"
        )
    factory = _FACTORIES[name]
    if strategy == "lazy":
        factory = _LAZY_FACTORIES.get(name, factory)
    elif strategy == "sketch":
        factory = _SKETCH_FACTORIES.get(name, factory)
    algorithm = factory()
    if backend is not None and hasattr(algorithm, "backend"):
        algorithm.backend = backend
    if hasattr(algorithm, "sketch_k"):
        if epsilon is not None:
            from repro.sketches.bottomk import k_for_epsilon

            algorithm.sketch_k = k_for_epsilon(epsilon)
        elif sketch_k is not None:
            algorithm.sketch_k = sketch_k
        if sketch_seed is not None:
            algorithm.sketch_seed = sketch_seed
    if model is not None:
        from repro.propagation.model import _check_model_spec

        _check_model_spec(model)
        if hasattr(algorithm, "model"):
            algorithm.model = model
    return algorithm


def is_deterministic(name: str) -> bool:
    """True when ``name``'s results are a pure function of the graph.

    The randomized baselines (``Rand_*``) are *not* in this set — their
    results depend on the rng.  They are still cacheable by the service
    because its cache key carries an explicit ``rng_seed`` that pins the
    draw; this predicate tells clients (via ``GET /algorithms``) and the
    bench comparator which names are reproducible without one.
    """
    return name in DETERMINISTIC_ALGORITHM_NAMES


def algorithm_catalog() -> list[dict[str, object]]:
    """One row per registered algorithm, for service discovery endpoints."""
    return [
        {
            "name": name,
            "lazy_capable": name in _LAZY_FACTORIES,
            "sketch_capable": name in _SKETCH_FACTORIES,
            "deterministic": is_deterministic(name),
            "model_aware": name in MODEL_AWARE_NAMES,
            "paper": name in PAPER_ALGORITHM_NAMES,
        }
        for name in _FACTORIES
    ]
