"""Name-based algorithm lookup.

The experiment drivers, benchmarks and CLI all refer to algorithms by the
names the paper's figures use (``G_All``, ``G_Max``, ``G_1``, ``G_L``,
``Rand_W``, ``Rand_I``, ``Rand_K``) plus this library's extras.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.base import PlacementAlgorithm
from repro.core.betweenness import BetweennessPlacement
from repro.core.exhaustive import ExhaustiveSearch
from repro.core.greedy_all import GreedyAll, LazyGreedyAll
from repro.core.greedy_l import GreedyL
from repro.core.greedy_max import GreedyMax
from repro.core.greedy_one import GreedyOne
from repro.core.random_placement import (
    RandomIndependent,
    RandomK,
    RandomWeighted,
)
from repro.core.tree_dp import TreeDynamicProgram
from repro.exceptions import ParameterError

_FACTORIES: dict[str, Callable[[], PlacementAlgorithm]] = {
    "G_All": GreedyAll,
    # Algorithm 1 exactly as printed: all k iterations, no early stop —
    # the cost profile Figure 11 measures.
    "G_All_paper": lambda: GreedyAll(early_stop=False),
    "G_All_lazy": LazyGreedyAll,
    "G_Max": GreedyMax,
    "G_1": GreedyOne,
    "G_L": GreedyL,
    "Rand_K": RandomK,
    "Rand_I": RandomIndependent,
    "Rand_W": RandomWeighted,
    "Tree_DP": TreeDynamicProgram,
    "Optimal": ExhaustiveSearch,
    "Betweenness": BetweennessPlacement,
}

#: Every registered algorithm name, in presentation order.
ALGORITHM_NAMES: tuple[str, ...] = tuple(_FACTORIES)

#: The seven algorithms the paper's FR figures plot, in legend order.
PAPER_ALGORITHM_NAMES: tuple[str, ...] = (
    "G_All",
    "G_Max",
    "G_1",
    "G_L",
    "Rand_W",
    "Rand_I",
    "Rand_K",
)

#: The subset of names whose results are deterministic for a fixed graph.
DETERMINISTIC_ALGORITHM_NAMES: tuple[str, ...] = (
    "G_All",
    "G_All_lazy",
    "G_Max",
    "G_1",
    "G_L",
    "Tree_DP",
    "Optimal",
    "Betweenness",
)


def get_algorithm(name: str) -> PlacementAlgorithm:
    """Instantiate the algorithm registered under ``name``.

    Raises :class:`~repro.exceptions.ParameterError` for unknown names,
    listing the valid ones.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES))
        raise ParameterError(
            f"unknown algorithm {name!r}; known algorithms: {known}"
        ) from None
    return factory()
