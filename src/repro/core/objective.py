"""The Filter-Placement objective (Problem 1) and Proposition 1.

Definitions, for c-graph ``G(V, E)`` and filter set ``A ⊆ V``:

* ``Φ(A, V)`` — total number of copies received across all nodes and items
  (:func:`phi`).
* ``F(A) = Φ(∅, V) − Φ(A, V)`` — the redundancy removed (:func:`objective_value`).
* ``FR(A) = F(A) / F(V)`` — the Filter Ratio, the paper's evaluation metric
  (:func:`filter_ratio`).  ``FR = 1`` means all removable redundancy is gone.
* Proposition 1 — the unbounded-budget optimum is the merge-node set
  ``{v : din(v) > 1 and dout(v) > 0}`` (:func:`minimal_perfect_filter_set`).

All ``Φ`` evaluations route through the pluggable backend registry; the
``backend`` keyword (name, instance, or None for the registry default)
selects the engine without changing any result.
"""

from __future__ import annotations

from collections.abc import Collection, Mapping
from typing import TYPE_CHECKING, Hashable

from repro.graphs.cgraph import CGraph
from repro.graphs.validation import validate_filter_set
from repro.propagation.engine import total_receipts

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import PropagationBackend
    from repro.propagation.model import PropagationModel

Node = Hashable


def phi(
    graph: CGraph,
    filters: Collection[Node] = (),
    *,
    items_per_source: int | Mapping[Node, int] = 1,
    backend: "str | PropagationBackend | None" = None,
) -> int:
    """``Φ(A, V)``: copies received across all nodes, summed over items."""
    validate_filter_set(graph, set(filters))
    return total_receipts(
        graph, filters, items_per_source=items_per_source, backend=backend
    )


def objective_value(
    graph: CGraph,
    filters: Collection[Node],
    *,
    items_per_source: int | Mapping[Node, int] = 1,
    phi_empty: int | None = None,
    backend: "str | PropagationBackend | None" = None,
) -> int:
    """``F(A) = Φ(∅, V) − Φ(A, V)``.

    ``phi_empty`` lets sweep loops amortize the (filter-free) baseline.
    """
    if phi_empty is None:
        phi_empty = phi(
            graph, (), items_per_source=items_per_source, backend=backend
        )
    return phi_empty - phi(
        graph, filters, items_per_source=items_per_source, backend=backend
    )


def max_objective(
    graph: CGraph,
    *,
    items_per_source: int | Mapping[Node, int] = 1,
    phi_empty: int | None = None,
    backend: "str | PropagationBackend | None" = None,
) -> int:
    """``F(V)``: the most redundancy any filter set can remove.

    Placing a filter everywhere is optimal (``F`` is monotone), so this is
    simply ``F`` evaluated at ``A = V``.
    """
    return objective_value(
        graph,
        graph.nodes(),
        items_per_source=items_per_source,
        phi_empty=phi_empty,
        backend=backend,
    )


def filter_ratio(
    graph: CGraph,
    filters: Collection[Node],
    *,
    items_per_source: int | Mapping[Node, int] = 1,
    phi_empty: int | None = None,
    f_max: int | None = None,
    backend: "str | PropagationBackend | None" = None,
) -> float:
    """``FR(A) = F(A) / F(V)`` — Section 5's performance metric.

    A graph with no removable redundancy (``F(V) = 0``, e.g. a tree fed by
    a single source edge) reports ``FR = 1.0`` for every filter set: all of
    the zero redundancy has been removed, and this convention keeps sweep
    curves well-defined.

    ``phi_empty`` / ``f_max`` allow sweeps to amortize the two constants.
    """
    if phi_empty is None:
        phi_empty = phi(
            graph, (), items_per_source=items_per_source, backend=backend
        )
    if f_max is None:
        f_max = max_objective(
            graph,
            items_per_source=items_per_source,
            phi_empty=phi_empty,
            backend=backend,
        )
    if f_max == 0:
        return 1.0
    value = objective_value(
        graph,
        filters,
        items_per_source=items_per_source,
        phi_empty=phi_empty,
        backend=backend,
    )
    return value / f_max


def expected_phi(
    graph: CGraph,
    filters: Collection[Node] = (),
    *,
    model: "PropagationModel | None" = None,
    backend: "str | PropagationBackend | None" = None,
) -> float:
    """``E[Φ(A, V)]`` under a relaying model — the SAA estimate.

    ``model=None`` is deterministic relaying: the exact integer ``Φ``
    as a float.  Probabilistic estimates average the model's sampled
    worlds (common random numbers, so repeated calls with one model are
    mutually consistent and byte-reproducible per seed).
    """
    from repro.backends.registry import resolve_backend

    return resolve_backend(backend).expected_total_receipts(
        graph, filters, model=model
    )


def expected_objective_value(
    graph: CGraph,
    filters: Collection[Node],
    *,
    model: "PropagationModel | None" = None,
    phi_empty: float | None = None,
    backend: "str | PropagationBackend | None" = None,
) -> float:
    """``E[F(A)] = E[Φ(∅, V)] − E[Φ(A, V)]`` under a relaying model."""
    if phi_empty is None:
        phi_empty = expected_phi(graph, (), model=model, backend=backend)
    return phi_empty - expected_phi(
        graph, filters, model=model, backend=backend
    )


def expected_filter_ratio(
    graph: CGraph,
    filters: Collection[Node],
    *,
    model: "PropagationModel | None" = None,
    phi_empty: float | None = None,
    f_max: float | None = None,
    backend: "str | PropagationBackend | None" = None,
) -> float:
    """``E[FR(A)]`` — the Filter Ratio on SAA estimates.

    Same conventions as :func:`filter_ratio` (``F(V) = 0`` reports 1.0);
    under common random numbers the estimate is a genuine ratio of one
    consistent sample average, not a ratio of independent noise.
    """
    if phi_empty is None:
        phi_empty = expected_phi(graph, (), model=model, backend=backend)
    if f_max is None:
        f_max = phi_empty - expected_phi(
            graph, graph.nodes(), model=model, backend=backend
        )
    if f_max == 0:
        return 1.0
    value = expected_objective_value(
        graph, filters, model=model, phi_empty=phi_empty, backend=backend
    )
    return value / f_max


def minimal_perfect_filter_set(
    graph: CGraph,
    *,
    prune: bool = False,
    backend: "str | PropagationBackend | None" = None,
) -> frozenset[Node]:
    """Proposition 1: the minimal unbounded-budget optimum.

    Returns ``A = {v : din(v) > 1 and dout(v) > 0}`` — placing filters on
    exactly the non-sink merge nodes achieves ``F(A) = F(V)`` and takes
    ``O(|E|)`` time to find.

    The proposition's minimality argument assumes every merge node actually
    receives multiple copies.  On graphs where some merge nodes are
    unreachable (or reachable along a single live path), the faithful set
    contains useless members; ``prune=True`` additionally drops every
    member whose removal keeps ``F`` at ``F(V)``, yielding a minimal set
    with respect to the given sources.
    """
    candidates = list(graph.merge_nodes())
    if not prune:
        return frozenset(candidates)
    target = phi(graph, graph.nodes(), backend=backend)
    kept = set(candidates)
    # Drop candidates greedily; order is the deterministic node order.
    for v in candidates:
        kept.discard(v)
        if phi(graph, kept, backend=backend) != target:
            kept.add(v)
    return frozenset(kept)
