"""Shared types for placement algorithms.

Every algorithm — greedy, randomized, exact — returns a
:class:`PlacementResult`, so the analysis, experiment and CLI layers treat
them uniformly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable, Protocol, runtime_checkable

from repro.exceptions import ParameterError
from repro.graphs.cgraph import CGraph

Node = Hashable


@dataclass(frozen=True)
class PlacementStep:
    """One selection step of an iterative algorithm.

    Attributes
    ----------
    node:
        The node chosen at this step.
    gain:
        The algorithm's own score for the pick.  For ``Greedy_All`` this is
        the true marginal gain ``F(A ∪ {v}) − F(A)``; for the heuristics it
        is their surrogate score (``m(v)``, initial impact, ``I'(v)``).
    evaluations:
        Propagation work the algorithm performed to make this pick, as
        sorted ``(kind, count)`` pairs whose kinds match
        :data:`repro.bench.instrument.EVALUATION_KINDS` (e.g. one
        ``marginal_gains`` sweep per eager ``Greedy_All`` step; a
        ``session_update`` plus some ``session_refresh`` reads per lazy
        step).  Empty for algorithms that score without propagation.
        Deterministic, so results stay comparable across backends.
    """

    node: Node
    gain: int
    evaluations: tuple[tuple[str, int], ...] = ()

    def evaluation_counts(self) -> dict[str, int]:
        """The per-step evaluations as a plain dict."""
        return dict(self.evaluations)


@dataclass(frozen=True)
class PlacementResult:
    """Outcome of running a placement algorithm.

    Attributes
    ----------
    algorithm:
        Canonical algorithm name (e.g. ``"G_All"``).
    filters:
        Chosen filter nodes, in selection order when the algorithm has one.
    requested_k:
        The budget the caller asked for.  ``len(filters)`` may be smaller
        when the algorithm ran out of useful candidates (greedy methods
        stop once every remaining marginal gain is zero) or differ for the
        randomized baselines whose set size is only ``k`` in expectation.
    steps:
        Per-pick records for iterative algorithms; empty otherwise.
    prefix_consistent:
        True when the first ``j ≤ k`` entries of ``filters`` equal the
        result the same algorithm would return for budget ``j``.  The FR
        sweep exploits this to build a whole curve from one run.
    estimated_gains:
        For estimate-driven strategies (the ``sketch`` tier): the
        per-step gain *estimates* that drove selection, in step order.
        Empty for exact algorithms.  When :attr:`rescored` is True the
        step records carry the exact gains and this tuple preserves what
        the estimator believed — the pair is the estimator-error audit
        trail the service payload exposes.
    rescored:
        ``sketch`` strategy only: True when the recorded step gains are
        exact (either the sketch ran in its exactness regime or the
        winning prefix was exactly rescored), False when they are still
        estimates (rescoring skipped above the size guard).  None for
        exact algorithms.
    """

    algorithm: str
    filters: tuple[Node, ...]
    requested_k: int
    steps: tuple[PlacementStep, ...] = field(default_factory=tuple)
    prefix_consistent: bool = True
    estimated_gains: tuple[float, ...] = ()
    rescored: bool | None = None

    def filter_set(self) -> frozenset[Node]:
        """The chosen filters as an (order-free) frozen set ``A``."""
        return frozenset(self.filters)

    def prefix(self, j: int) -> frozenset[Node]:
        """The filter set after the first ``j`` selections."""
        if not self.prefix_consistent:
            raise ParameterError(
                f"{self.algorithm} results are not prefix-consistent"
            )
        return frozenset(self.filters[:j])


@runtime_checkable
class PlacementAlgorithm(Protocol):
    """The interface every placement algorithm implements."""

    name: str
    prefix_consistent: bool

    def place(
        self,
        graph: CGraph,
        k: int,
        *,
        rng: random.Random | None = None,
    ) -> PlacementResult:
        """Choose at most ``k`` filter nodes for ``graph``."""
        ...  # pragma: no cover


def check_budget(graph: CGraph, k: int) -> None:
    """Validate a filter budget ``k`` against the graph."""
    if not isinstance(k, int):
        raise ParameterError(f"k must be an int, got {type(k).__name__}")
    if k < 0:
        raise ParameterError(f"k must be non-negative, got {k}")
    if k > graph.number_of_nodes():
        raise ParameterError(
            f"k={k} exceeds the number of nodes ({graph.number_of_nodes()})"
        )
