"""``Greedy_All`` — Algorithm 1, the ``(1 − 1/e)``-approximation.

At every one of ``k`` iterations, recompute the impact ``I(v | A)`` of every
remaining node under the current filter set ``A`` and add the argmax.
Because ``F`` is non-negative, monotone and submodular, Nemhauser et al.'s
classic bound applies: the result is within a factor ``(1 − 1/e)`` of the
optimal budget-``k`` placement (Theorem 3), and it is *exactly* optimal for
``k = 1``.

Two implementations with identical outputs:

* :class:`GreedyAll` — the direct algorithm, one linear impact sweep per
  iteration (using the fast engine of :mod:`repro.core.impact`).
* :class:`repro.core.celf.CelfGreedyAll` (re-exported here as
  ``LazyGreedyAll``) — the lazy-greedy/CELF strategy on the backends'
  incremental gain engine: one full sweep total, then regional updates
  after each placement and O(1) refreshes of stale heap tops.  Select it
  with ``--strategy lazy`` on the CLI or
  ``get_algorithm("G_All", strategy="lazy")``.

Both classes evaluate gains through the pluggable backend registry
(:mod:`repro.backends.registry`); pass ``backend=`` to pin one, or leave
it None to use the process default (the CLI's ``--backend`` flag).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Hashable

from repro.core.base import PlacementResult, PlacementStep, check_budget
from repro.core.celf import CelfGreedyAll
from repro.core.impact import marginal_gains_ids
from repro.graphs.cgraph import CGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import PropagationBackend
    from repro.propagation.model import PropagationModel

Node = Hashable

#: Backwards-compatible alias: the lazy variant now lives in
#: :mod:`repro.core.celf` and runs on the incremental gain engine.
LazyGreedyAll = CelfGreedyAll


class GreedyAll:
    """The paper's ``Greedy_All`` (Algorithm 1).

    ``early_stop`` (default True) ends the loop once every remaining
    marginal gain is zero — extra filters would be dead weight.  The
    paper's Algorithm 1 runs all ``k`` iterations regardless; pass
    ``early_stop=False`` to reproduce its cost profile (Figure 11).
    """

    name = "G_All"
    prefix_consistent = True

    def __init__(
        self,
        *,
        early_stop: bool = True,
        backend: "str | PropagationBackend | None" = None,
        model: "PropagationModel | None" = None,
    ) -> None:
        self.early_stop = early_stop
        self.backend = backend
        self.model = model
        if not early_stop:
            self.name = "G_All_paper"

    def place(
        self,
        graph: CGraph,
        k: int,
        *,
        rng: random.Random | None = None,
    ) -> PlacementResult:
        """One ``I(v | A)`` sweep per pick; argmax with rank tie-breaks.

        Runs entirely on the compiled view's interned ids — an id *is*
        the ``graph.nodes()`` rank, so the ascending scan with a strict
        ``>`` reproduces the canonical lowest-rank tie-break — and
        translates back to user nodes only at the result boundary.

        Under a probabilistic relaying model (``model`` pinned here or
        scoped via :func:`repro.propagation.model.use_model`) each sweep
        evaluates the summed-over-worlds SAA gains instead — same loop,
        same tie-breaks, exact integers either way.  With no model the
        deterministic path below is untouched, byte for byte.
        """
        from repro.propagation.model import resolve_model

        check_budget(graph, k)
        model = resolve_model(self.model)
        compiled = graph.compiled()
        chosen_ids: list[int] = []
        steps: list[PlacementStep] = []
        placed = bytearray(compiled.n)
        for _ in range(k):
            if model is None:
                gains = marginal_gains_ids(
                    graph, chosen_ids, backend=self.backend
                )
            else:
                from repro.backends.registry import resolve_backend

                gains = resolve_backend(
                    self.backend
                ).sampled_marginal_gains_ids(graph, chosen_ids, model=model)
            best = -1
            best_gain = 0
            for v, gain in enumerate(gains):
                if placed[v]:
                    continue
                if gain <= 0 and self.early_stop:
                    continue
                if best < 0 or gain > best_gain:
                    best = v
                    best_gain = gain
            if best < 0:
                break  # every remaining candidate is useless; stop early
            placed[best] = 1
            chosen_ids.append(best)
            steps.append(
                PlacementStep(
                    node=compiled.nodes[best],
                    gain=best_gain,
                    evaluations=(("marginal_gains", 1),),
                )
            )
        return PlacementResult(
            algorithm=self.name,
            filters=tuple(compiled.to_nodes(chosen_ids)),
            requested_k=k,
            steps=tuple(steps),
        )


def greedy_all(graph: CGraph, k: int) -> PlacementResult:
    """Functional convenience wrapper around :class:`GreedyAll`."""
    return GreedyAll().place(graph, k)
