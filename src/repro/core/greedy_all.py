"""``Greedy_All`` — Algorithm 1, the ``(1 − 1/e)``-approximation.

At every one of ``k`` iterations, recompute the impact ``I(v | A)`` of every
remaining node under the current filter set ``A`` and add the argmax.
Because ``F`` is non-negative, monotone and submodular, Nemhauser et al.'s
classic bound applies: the result is within a factor ``(1 − 1/e)`` of the
optimal budget-``k`` placement (Theorem 3), and it is *exactly* optimal for
``k = 1``.

Two implementations with identical outputs:

* :class:`GreedyAll` — the direct algorithm, one linear impact sweep per
  iteration (using the fast engine of :mod:`repro.core.impact`).
* :class:`LazyGreedyAll` — Minoux's lazy-evaluation strategy: stale gains
  are upper bounds under submodularity, so a max-heap of stale scores can
  skip most re-evaluations.  With this library's impact engine a *single*
  re-evaluation already costs a full linear sweep, so laziness cannot beat
  the eager version asymptotically — the class exists as an ablation
  (run ``filter-placement bench --suite ablation``, implemented by
  :func:`repro.bench.scenarios.ablation_suite`, which crosses eager/lazy
  with every propagation backend) and as the natural choice if a per-node
  incremental engine is ever added.

Both classes evaluate gains through the pluggable backend registry
(:mod:`repro.backends.registry`); pass ``backend=`` to pin one, or leave
it None to use the process default (the CLI's ``--backend`` flag).
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import TYPE_CHECKING, Hashable

from repro.core.base import PlacementResult, PlacementStep, check_budget
from repro.core.impact import marginal_gains
from repro.graphs.cgraph import CGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import PropagationBackend

Node = Hashable


class GreedyAll:
    """The paper's ``Greedy_All`` (Algorithm 1).

    ``early_stop`` (default True) ends the loop once every remaining
    marginal gain is zero — extra filters would be dead weight.  The
    paper's Algorithm 1 runs all ``k`` iterations regardless; pass
    ``early_stop=False`` to reproduce its cost profile (Figure 11).
    """

    name = "G_All"
    prefix_consistent = True

    def __init__(
        self,
        *,
        early_stop: bool = True,
        backend: "str | PropagationBackend | None" = None,
    ) -> None:
        self.early_stop = early_stop
        self.backend = backend
        if not early_stop:
            self.name = "G_All_paper"

    def place(
        self,
        graph: CGraph,
        k: int,
        *,
        rng: random.Random | None = None,
    ) -> PlacementResult:
        check_budget(graph, k)
        node_rank = {v: i for i, v in enumerate(graph.nodes())}
        chosen: list[Node] = []
        steps: list[PlacementStep] = []
        current: set[Node] = set()
        for _ in range(k):
            gains = marginal_gains(graph, current, backend=self.backend)
            best: Node | None = None
            best_gain = 0
            for v, gain in gains.items():
                if v in current:
                    continue
                if gain <= 0 and self.early_stop:
                    continue
                if (
                    best is None
                    or gain > best_gain
                    or (gain == best_gain and node_rank[v] < node_rank[best])
                ):
                    best = v
                    best_gain = gain
            if best is None:
                break  # every remaining candidate is useless; stop early
            current.add(best)
            chosen.append(best)
            steps.append(PlacementStep(node=best, gain=best_gain))
        return PlacementResult(
            algorithm=self.name,
            filters=tuple(chosen),
            requested_k=k,
            steps=tuple(steps),
        )


class LazyGreedyAll:
    """Lazy-evaluation ``Greedy_All`` (identical selections)."""

    name = "G_All_lazy"
    prefix_consistent = True

    def __init__(
        self,
        *,
        backend: "str | PropagationBackend | None" = None,
    ) -> None:
        self.backend = backend

    def place(
        self,
        graph: CGraph,
        k: int,
        *,
        rng: random.Random | None = None,
    ) -> PlacementResult:
        check_budget(graph, k)
        node_rank = {v: i for i, v in enumerate(graph.nodes())}
        counter = itertools.count()

        cached = marginal_gains(graph, (), backend=self.backend)
        # Max-heap of (-gain, rank, tiebreak, node); rank ordering makes tie
        # resolution bit-identical to the eager implementation.
        heap: list[tuple[int, int, int, Node]] = [
            (-gain, node_rank[v], next(counter), v)
            for v, gain in cached.items()
            if gain > 0
        ]
        heapq.heapify(heap)
        scored_round: dict[Node, int] = {v: 0 for v in cached}

        chosen: list[Node] = []
        steps: list[PlacementStep] = []
        current: set[Node] = set()
        round_no = 0
        swept_round = 0
        while len(chosen) < k and heap:
            neg_gain, _, _, v = heapq.heappop(heap)
            if v in current:
                continue
            if scored_round[v] == round_no:
                gain = -neg_gain
                if gain <= 0:
                    break
                current.add(v)
                chosen.append(v)
                steps.append(PlacementStep(node=v, gain=gain))
                round_no += 1
                continue
            # Stale entry: refresh (at most one sweep per selection round —
            # further stale pops in the same round reuse the cached sweep).
            if swept_round != round_no:
                cached = marginal_gains(graph, current, backend=self.backend)
                swept_round = round_no
            gain = cached[v]
            scored_round[v] = round_no
            if gain > 0:
                heapq.heappush(heap, (-gain, node_rank[v], next(counter), v))
        return PlacementResult(
            algorithm=self.name,
            filters=tuple(chosen),
            requested_k=k,
            steps=tuple(steps),
        )


def greedy_all(graph: CGraph, k: int) -> PlacementResult:
    """Functional convenience wrapper around :class:`GreedyAll`."""
    return GreedyAll().place(graph, k)
