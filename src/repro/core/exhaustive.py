"""Exhaustive (optimal) filter placement for small instances.

FP is NP-complete on DAGs (Theorem 2), so no polynomial exact algorithm is
expected; this brute-force search exists as the optimality oracle for the
test suite and the approximation-ratio experiments.  Monotonicity of ``F``
means some optimal solution has exactly ``min(k, |candidates|)`` filters, so
only maximal subsets are enumerated.

Candidate pruning: a node with zero initial impact (``I(v | ∅) = 0``) has
zero marginal gain under *every* filter set — submodularity makes initial
gains upper bounds — so only initially-useful nodes enter the enumeration.
That collapses the search space dramatically on sparse graphs while
preserving exactness.
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import Hashable

from repro.core.base import PlacementResult, check_budget
from repro.core.impact import impacts
from repro.core.objective import phi
from repro.exceptions import ParameterError
from repro.graphs.cgraph import CGraph

Node = Hashable

#: Refuse enumerations larger than this many subsets.
DEFAULT_SUBSET_LIMIT = 2_000_000


def optimal_placement(
    graph: CGraph,
    k: int,
    *,
    subset_limit: int = DEFAULT_SUBSET_LIMIT,
    prune: bool = True,
) -> tuple[frozenset[Node], int]:
    """The optimal ``(filter set, F(A))`` for budget ``k``, by enumeration.

    Parameters
    ----------
    subset_limit:
        Guard rail: raise instead of silently grinding through more than
        this many candidate subsets.
    prune:
        Restrict candidates to nodes with positive initial impact (safe
        under submodularity; disable to enumerate every node, e.g. when
        stress-testing the submodularity assumption itself).
    """
    check_budget(graph, k)
    if prune:
        candidates = [v for v, gain in impacts(graph).items() if gain > 0]
    else:
        candidates = [v for v in graph.nodes()]
    size = min(k, len(candidates))
    if size == 0:
        return frozenset(), 0

    total = 1
    n = len(candidates)
    for i in range(size):
        total = total * (n - i) // (i + 1)
    if total > subset_limit:
        raise ParameterError(
            f"exhaustive search over C({n},{size}) = {total} subsets "
            f"exceeds the limit of {subset_limit}"
        )

    phi_empty = phi(graph, ())
    best_set: tuple[Node, ...] = ()
    best_phi = phi_empty
    for subset in combinations(candidates, size):
        value = phi(graph, subset)
        if value < best_phi:
            best_phi = value
            best_set = subset
    return frozenset(best_set), phi_empty - best_phi


class ExhaustiveSearch:
    """Algorithm-interface wrapper around :func:`optimal_placement`."""

    name = "Optimal"
    prefix_consistent = False

    def __init__(self, subset_limit: int = DEFAULT_SUBSET_LIMIT) -> None:
        self.subset_limit = subset_limit

    def place(
        self,
        graph: CGraph,
        k: int,
        *,
        rng: random.Random | None = None,
    ) -> PlacementResult:
        """Enumerate filter sets and return a true argmax of ``F``."""
        filters, _ = optimal_placement(
            graph, k, subset_limit=self.subset_limit
        )
        return PlacementResult(
            algorithm=self.name,
            filters=tuple(sorted(filters, key=repr)),
            requested_k=k,
            prefix_consistent=False,
        )
