"""Exact filter placement on c-trees — the dynamic program of Section 4.1.

FP is polynomial on *communication trees* (graphs that become a directed
tree once the source node is removed).  The paper first rewrites the tree
so every node has at most two children (:func:`repro.graphs.binarize_ctree`,
with dump nodes that may not host filters), then runs a budget-splitting
recursion over (node, remaining budget).

Our state carries one more coordinate the recursion needs to be
well-defined: the *inflow* ``c`` — the number of copies arriving from the
tree parent, which depends on filter decisions made above.  (The paper's
``OPT(v, i, A)`` threads the same information through its set argument
``A``.)  For each node the set of reachable inflows is small — one value
per distinct filter pattern on the root path, at most depth-plus-one values
— so the table stays polynomial: ``O(n · k · depth)`` states with ``O(k)``
budget splits each.

The DP minimizes total receipts at *real* nodes; dump nodes relay copies
but never count.  ``tree_optimal_placement`` returns both the argmin filter
set and the optimal objective value, and the test suite certifies it
against exhaustive search on random c-trees.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Hashable

from repro.core.base import PlacementResult, check_budget
from repro.exceptions import GraphStructureError
from repro.graphs.binary_tree import BinarizedTree, binarize_ctree
from repro.graphs.cgraph import CGraph

Node = Hashable

_INF = float("inf")


class TreeDynamicProgram:
    """Exact optimum on c-trees via the Section 4.1 dynamic program."""

    name = "Tree_DP"
    prefix_consistent = False  # an optimal k-set need not extend a (k-1)-set

    def place(
        self,
        graph: CGraph,
        k: int,
        *,
        rng: random.Random | None = None,
    ) -> PlacementResult:
        """Exact optimum on a (binarized) tree by bottom-up DP (§4.1)."""
        check_budget(graph, k)
        filters, _ = tree_optimal_placement(graph, k)
        return PlacementResult(
            algorithm=self.name,
            filters=tuple(sorted(filters, key=repr)),
            requested_k=k,
            prefix_consistent=False,
        )


def tree_optimal_placement(
    graph: CGraph, k: int
) -> tuple[frozenset[Node], int]:
    """Optimal ``(filter set, F(A))`` for a c-tree with budget ``k``.

    Raises
    ------
    GraphStructureError
        If ``graph`` is not a c-tree.
    """
    check_budget(graph, k)
    binary = binarize_ctree(graph)
    if binary.graph.number_of_nodes() <= 1:
        return frozenset(), 0

    solver = _TreeSolver(binary, k)
    min_cost = solver.solve()
    baseline = solver.cost_without_filters()
    chosen = solver.reconstruct()
    return frozenset(chosen), baseline - min_cost


class _TreeSolver:
    """Bottom-up evaluation of the (node, budget, inflow) table."""

    def __init__(self, binary: BinarizedTree, k: int) -> None:
        self.binary = binary
        self.k = k
        graph = binary.graph
        source = binary.source

        self.children: dict[Node, tuple[Node, ...]] = {}
        for v in graph.nodes():
            if v == source:
                continue
            self.children[v] = tuple(
                c for c in graph.successors(v) if c != source
            )
        self.from_source: set[Node] = set(graph.successors(source))
        self.root = binary.root

        # Top-down pass: the reachable inflow values of every node.
        self.inflows: dict[Node, set[int]] = {self.root: {0}}
        order: list[Node] = []
        queue: deque[Node] = deque([self.root])
        while queue:
            v = queue.popleft()
            order.append(v)
            for c_in in self.inflows[v]:
                x = c_in + (1 if v in self.from_source else 0)
                outs = {x}
                if not self.binary.is_dump(v):
                    outs.add(min(x, 1))  # the post-filter emission
                for child in self.children[v]:
                    self.inflows.setdefault(child, set()).update(outs)
            queue.extend(self.children[v])
        self.order = order

        # cost[(v, c)] is a list over budgets 0..k of minimal subtree
        # receipts; choice[(v, c, i)] records (is_filter, split) for
        # reconstruction.
        self.cost: dict[tuple[Node, int], list[float]] = {}
        self.choice: dict[tuple[Node, int, int], tuple[bool, int]] = {}

    # -- helpers --------------------------------------------------------

    def _combine(
        self,
        left: list[float],
        right: list[float],
        budget: int,
    ) -> tuple[float, int]:
        """Min-plus combination: best split of ``budget`` over two tables."""
        best = _INF
        best_j = 0
        for j in range(budget + 1):
            total = left[j] + right[budget - j]
            if total < best:
                best = total
                best_j = j
        return best, best_j

    def _table(self, v: Node, c_in: int) -> list[float]:
        key = (v, c_in)
        cached = self.cost.get(key)
        if cached is not None:
            return cached
        raise GraphStructureError(
            f"internal error: table for {key!r} evaluated out of order"
        )

    # -- main passes ----------------------------------------------------

    def solve(self) -> int:
        k = self.k
        for v in reversed(self.order):
            is_dump = self.binary.is_dump(v)
            for c_in in self.inflows[v]:
                x = c_in + (1 if v in self.from_source else 0)
                own = 0 if is_dump else x
                kids = self.children[v]
                table: list[float] = [0.0] * (k + 1)
                for i in range(k + 1):
                    # Option 1: v stays a plain relay emitting x.
                    if not kids:
                        relay_cost, relay_split = 0.0, 0
                    elif len(kids) == 1:
                        relay_cost, relay_split = (
                            self._table(kids[0], x)[i],
                            i,
                        )
                    else:
                        relay_cost, relay_split = self._combine(
                            self._table(kids[0], x),
                            self._table(kids[1], x),
                            i,
                        )
                    best = own + relay_cost
                    decision = (False, relay_split)

                    # Option 2: v becomes a filter (real nodes, budget left).
                    if not is_dump and i >= 1:
                        e = min(x, 1)
                        if not kids:
                            filt_cost, filt_split = 0.0, 0
                        elif len(kids) == 1:
                            filt_cost, filt_split = (
                                self._table(kids[0], e)[i - 1],
                                i - 1,
                            )
                        else:
                            filt_cost, filt_split = self._combine(
                                self._table(kids[0], e),
                                self._table(kids[1], e),
                                i - 1,
                            )
                        if own + filt_cost < best:
                            best = own + filt_cost
                            decision = (True, filt_split)
                    table[i] = best
                    self.choice[(v, c_in, i)] = decision
                self.cost[(v, c_in)] = table
        return int(self._table(self.root, 0)[k])

    def cost_without_filters(self) -> int:
        """Receipt total with no filters — ``Φ(∅, V)`` on the tree."""
        total = 0
        stack: list[tuple[Node, int]] = [(self.root, 0)]
        while stack:
            v, c_in = stack.pop()
            x = c_in + (1 if v in self.from_source else 0)
            if not self.binary.is_dump(v):
                total += x
            for child in self.children[v]:
                stack.append((child, x))
        return total

    def reconstruct(self) -> set[Node]:
        chosen: set[Node] = set()
        stack: list[tuple[Node, int, int]] = [(self.root, 0, self.k)]
        while stack:
            v, c_in, i = stack.pop()
            x = c_in + (1 if v in self.from_source else 0)
            is_filter, split = self.choice[(v, c_in, i)]
            if is_filter:
                chosen.add(v)
                emit = min(x, 1)
                remaining = i - 1
            else:
                emit = x
                remaining = i
            kids = self.children[v]
            if len(kids) == 1:
                stack.append((kids[0], emit, remaining))
            elif len(kids) == 2:
                stack.append((kids[0], emit, split))
                stack.append((kids[1], emit, remaining - split))
        return chosen
