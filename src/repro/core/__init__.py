"""The paper's primary contribution: filter-placement algorithms.

Public surface:

* Objective machinery — ``Φ``, ``F``, the Filter Ratio, Proposition 1's
  minimal perfect filter set (:mod:`repro.core.objective`).
* Impact computation — the fast prefix/absorbing-suffix engine
  (:mod:`repro.core.impact`) and the paper-faithful ``plist`` engine
  (:mod:`repro.core.plist`).
* Placement algorithms — ``Greedy_All`` (Algorithm 1, the (1-1/e)
  approximation), ``Greedy_Max``, ``Greedy_1``, ``Greedy_L`` (Algorithm 2),
  the three randomized baselines, the exact tree dynamic program
  (Section 4.1), exhaustive search, and a betweenness-centrality strawman.
* :func:`repro.core.registry.get_algorithm` — name-based lookup shared by
  the CLI, the experiments and the benchmarks.
"""

from repro.core.base import PlacementResult, PlacementStep
from repro.core.objective import (
    filter_ratio,
    max_objective,
    minimal_perfect_filter_set,
    objective_value,
    phi,
)
from repro.core.impact import (
    absorbing_suffix,
    impacts,
    marginal_gain,
    marginal_gains,
)
from repro.core.plist import PlistTables, compute_plists, plist_impacts
from repro.core.celf import CelfGreedyAll, lazy_greedy_all
from repro.core.greedy_all import GreedyAll, LazyGreedyAll, greedy_all
from repro.core.greedy_max import GreedyMax, greedy_max
from repro.core.greedy_one import GreedyOne, greedy_one
from repro.core.greedy_l import GreedyL, greedy_l
from repro.core.random_placement import (
    RandomIndependent,
    RandomK,
    RandomWeighted,
)
from repro.core.tree_dp import TreeDynamicProgram, tree_optimal_placement
from repro.core.exhaustive import ExhaustiveSearch, optimal_placement
from repro.core.betweenness import BetweennessPlacement
from repro.core.registry import (
    ALGORITHM_NAMES,
    LAZY_CAPABLE_NAMES,
    PAPER_ALGORITHM_NAMES,
    STRATEGY_NAMES,
    get_algorithm,
    get_default_strategy,
    set_default_strategy,
    use_strategy,
)

__all__ = [
    "PlacementResult",
    "PlacementStep",
    "phi",
    "objective_value",
    "max_objective",
    "filter_ratio",
    "minimal_perfect_filter_set",
    "impacts",
    "marginal_gain",
    "marginal_gains",
    "absorbing_suffix",
    "PlistTables",
    "compute_plists",
    "plist_impacts",
    "GreedyAll",
    "LazyGreedyAll",
    "CelfGreedyAll",
    "greedy_all",
    "lazy_greedy_all",
    "GreedyMax",
    "greedy_max",
    "GreedyOne",
    "greedy_one",
    "GreedyL",
    "greedy_l",
    "RandomK",
    "RandomIndependent",
    "RandomWeighted",
    "TreeDynamicProgram",
    "tree_optimal_placement",
    "ExhaustiveSearch",
    "optimal_placement",
    "BetweennessPlacement",
    "get_algorithm",
    "get_default_strategy",
    "set_default_strategy",
    "use_strategy",
    "ALGORITHM_NAMES",
    "LAZY_CAPABLE_NAMES",
    "PAPER_ALGORITHM_NAMES",
    "STRATEGY_NAMES",
]
