"""The randomized baselines of Section 5.

* ``Rand_K`` — ``k`` filters uniformly at random, without replacement.
* ``Rand_I`` — every node becomes a filter independently with probability
  ``k/n`` (so only the *expected* set size is ``k``).
* ``Rand_W`` — every node ``v`` gets weight ``w(v) = Σ_{u ∈ children(v)}
  1/din(u)`` — its share of responsibility for its children's in-flow —
  and becomes a filter with probability ``w(v) · k/n`` (clipped to 1).

The paper runs each 25 times and averages the Filter Ratio;
:func:`repro.analysis.curves.average_filter_ratio` reproduces that harness.
Results are *not* prefix-consistent: each budget needs a fresh draw.
"""

from __future__ import annotations

import random
from typing import Hashable

from repro.core.base import PlacementResult, check_budget
from repro.graphs.cgraph import CGraph

Node = Hashable

#: Number of trials the paper averages randomized algorithms over.
PAPER_TRIALS = 25


def _require_rng(rng: random.Random | None) -> random.Random:
    return rng if rng is not None else random.Random(0)


class RandomK:
    """``Rand_K``: exactly ``k`` uniformly random filters."""

    name = "Rand_K"
    prefix_consistent = False

    def place(
        self,
        graph: CGraph,
        k: int,
        *,
        rng: random.Random | None = None,
    ) -> PlacementResult:
        """A uniformly random ``k``-subset of the nodes (``Rand_K``)."""
        check_budget(graph, k)
        rng = _require_rng(rng)
        chosen = tuple(rng.sample(list(graph.nodes()), k))
        return PlacementResult(
            algorithm=self.name,
            filters=chosen,
            requested_k=k,
            prefix_consistent=False,
        )


class RandomIndependent:
    """``Rand_I``: each node filters independently with probability k/n."""

    name = "Rand_I"
    prefix_consistent = False

    def place(
        self,
        graph: CGraph,
        k: int,
        *,
        rng: random.Random | None = None,
    ) -> PlacementResult:
        """Independent coin flips with ``p = k/n`` (``Rand_I``)."""
        check_budget(graph, k)
        rng = _require_rng(rng)
        n = graph.number_of_nodes()
        p = k / n if n else 0.0
        chosen = tuple(v for v in graph.nodes() if rng.random() < p)
        return PlacementResult(
            algorithm=self.name,
            filters=chosen,
            requested_k=k,
            prefix_consistent=False,
        )


def child_share_weight(graph: CGraph, node: Node) -> float:
    """``w(v) = Σ_{u ∈ children(v)} 1 / din(u)``.

    The intuition from the paper: ``v``'s influence on the copies child
    ``u`` receives is inversely proportional to how many other parents
    feed ``u``.
    """
    return sum(1.0 / graph.in_degree(u) for u in graph.successors(node))


class RandomWeighted:
    """``Rand_W``: filter probability proportional to child-share weight."""

    name = "Rand_W"
    prefix_consistent = False

    def place(
        self,
        graph: CGraph,
        k: int,
        *,
        rng: random.Random | None = None,
    ) -> PlacementResult:
        """Degree-weighted sampling without replacement (``Rand_W``)."""
        check_budget(graph, k)
        rng = _require_rng(rng)
        n = graph.number_of_nodes()
        scale = k / n if n else 0.0
        chosen: list[Node] = []
        for v in graph.nodes():
            p = min(1.0, child_share_weight(graph, v) * scale)
            if p > 0.0 and rng.random() < p:
                chosen.append(v)
        return PlacementResult(
            algorithm=self.name,
            filters=tuple(chosen),
            requested_k=k,
            prefix_consistent=False,
        )
