"""``Greedy_L`` — Algorithm 2, the prefix-times-fanout heuristic.

Scores every node by the *simplified impact*

    ``I'(v) = Prefix(v) × dout(v)``

— the number of copies ``v`` pushes to its immediate children — then
greedily picks the top node, recomputes prefixes under the enlarged filter
set, and repeats ``k`` times (``O(k·|E|)`` total).

``I'`` blends ``Greedy_1``'s locality with ``Greedy_Max``'s global prefix,
and the re-computation step lets earlier picks depress later scores.  Its
documented bias (Section 4.2 and the Figure 7/8 discussions): prefixes grow
multiplicatively with distance from the source, so ``Greedy_L`` drifts
toward nodes far down the graph and its FR curve converges more slowly.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Hashable

from collections.abc import Iterable

from repro.core.base import PlacementResult, PlacementStep, check_budget
from repro.graphs.cgraph import CGraph
from repro.propagation.engine import item_receipts_ids, loose_filter_mask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import PropagationBackend
    from repro.propagation.model import PropagationModel

Node = Hashable


def simplified_impacts(
    graph: CGraph,
    filters: set[Node],
    *,
    backend: "str | PropagationBackend | None" = None,
) -> dict[Node, int]:
    """``I'(v) = Prefix(v) × dout(v)`` under the current filter set.

    Prefixes aggregate one item per source, as everywhere else.  Routed
    through the pluggable backend registry; every backend returns
    identical integers.
    """
    from repro.backends.registry import resolve_backend

    return resolve_backend(backend).simplified_impacts(graph, filters)


def simplified_impacts_ids(
    graph: CGraph,
    filter_ids: Iterable[int] = (),
    *,
    backend: "str | PropagationBackend | None" = None,
) -> list[int]:
    """:func:`simplified_impacts` over interned ids (list indexed by id)."""
    from repro.backends.registry import resolve_backend

    return resolve_backend(backend).simplified_impacts_ids(graph, filter_ids)


def _scores_for_mask(compiled, mask: bytearray) -> list[int]:
    """``I'`` over ids via one aggregate ``T`` sweep (the bitpack tier).

    ``I'(v) = Prefix(v) × dout(v)`` sums one item per source, so the
    per-source prefixes collapse to the aggregate totals ``T(v)`` from
    :func:`~repro.propagation.engine.aggregate_receipts_ids` —
    source-count-independent, bit-identical to the lanes sweep.
    """
    from repro.propagation.engine import aggregate_receipts_ids

    totals = aggregate_receipts_ids(compiled, mask)
    out_degree = compiled.out_degree
    return [totals[v] * out_degree[v] for v in range(compiled.n)]


def _scores_for_mask_lanes(compiled, mask: bytearray) -> list[int]:
    """``I'`` over ids via one ``ψ`` sweep per source (the lanes tier)."""
    totals = [0] * compiled.n
    for origin_id in compiled.source_ids:
        psi = item_receipts_ids(compiled, origin_id, mask)
        for v, count in enumerate(psi):
            if count:
                totals[v] += count
    out_degree = compiled.out_degree
    return [totals[v] * out_degree[v] for v in range(compiled.n)]


def simplified_impacts_ids_exact(
    graph: CGraph,
    filter_ids: Iterable[int] = (),
) -> list[int]:
    """:func:`simplified_impacts_ids` via the exact aggregate sweep (the
    ``python`` backend's default *bitpack* tier)."""
    compiled = graph.compiled()
    return _scores_for_mask(compiled, compiled.filter_mask(filter_ids))


def simplified_impacts_ids_lanes_exact(
    graph: CGraph,
    filter_ids: Iterable[int] = (),
) -> list[int]:
    """:func:`simplified_impacts_ids` via one exact big-int ``ψ`` sweep
    per source (the *lanes* tier; the fuzz harness's reference)."""
    compiled = graph.compiled()
    return _scores_for_mask_lanes(compiled, compiled.filter_mask(filter_ids))


def simplified_impacts_exact(
    graph: CGraph,
    filters: set[Node],
    *,
    _order: tuple[Node, ...] | None = None,
) -> dict[Node, int]:
    """:func:`simplified_impacts` via the exact big-int index sweeps (the
    ``python`` backend's implementation).  ``_order`` is deprecated and
    ignored (the compiled view caches its own topological order)."""
    compiled = graph.compiled()
    scores = _scores_for_mask(compiled, loose_filter_mask(compiled, filters))
    # Keyed in graph.nodes() order — the cross-backend canonical order.
    return dict(zip(compiled.nodes, scores))


class GreedyL:
    """The paper's ``Greedy_L`` (Algorithm 2).

    Score sweeps run on the propagation backend given by ``backend``
    (None = the registry default).
    """

    name = "G_L"
    prefix_consistent = True

    def __init__(
        self,
        *,
        backend: "str | PropagationBackend | None" = None,
        model: "PropagationModel | None" = None,
    ) -> None:
        self.backend = backend
        self.model = model

    def place(
        self,
        graph: CGraph,
        k: int,
        *,
        rng: random.Random | None = None,
    ) -> PlacementResult:
        """One ``I'(v)`` sweep per pick (Algorithm 2).

        Runs on interned ids; the ascending scan with a strict ``>``
        reproduces the canonical lowest-rank tie-break, and user nodes
        reappear only at the result boundary.  Under a probabilistic
        relaying model the score is the summed-over-worlds
        ``Σ_t ψ_t(v) · dout_t(v)`` (live out-degree per world).
        """
        from repro.propagation.model import resolve_model

        check_budget(graph, k)
        model = resolve_model(self.model)
        compiled = graph.compiled()
        # Ensure the topological accessors exist up front — Greedy_L is
        # specified on DAGs and should fail fast on cyclic input.
        compiled.topo_order
        chosen_ids: list[int] = []
        steps: list[PlacementStep] = []
        placed = bytearray(compiled.n)
        for _ in range(k):
            if model is None:
                scores = simplified_impacts_ids(
                    graph, chosen_ids, backend=self.backend
                )
            else:
                from repro.backends.registry import resolve_backend

                scores = resolve_backend(
                    self.backend
                ).sampled_simplified_impacts_ids(
                    graph, chosen_ids, model=model
                )
            best = -1
            best_score = 0
            for v, score in enumerate(scores):
                if placed[v]:
                    continue
                # A node forwarding at most one copy per edge gains nothing
                # by filtering; requiring Prefix × dout > dout would need
                # the prefix, so Greedy_L's own coarse cut is score > 0.
                if score <= 0:
                    continue
                if best < 0 or score > best_score:
                    best = v
                    best_score = score
            if best < 0:
                break
            placed[best] = 1
            chosen_ids.append(best)
            steps.append(
                PlacementStep(
                    node=compiled.nodes[best],
                    gain=best_score,
                    evaluations=(("simplified_impacts", 1),),
                )
            )
        return PlacementResult(
            algorithm=self.name,
            filters=tuple(compiled.to_nodes(chosen_ids)),
            requested_k=k,
            steps=tuple(steps),
        )


def greedy_l(graph: CGraph, k: int) -> PlacementResult:
    """Functional convenience wrapper around :class:`GreedyL`."""
    return GreedyL().place(graph, k)
