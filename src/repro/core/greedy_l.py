"""``Greedy_L`` — Algorithm 2, the prefix-times-fanout heuristic.

Scores every node by the *simplified impact*

    ``I'(v) = Prefix(v) × dout(v)``

— the number of copies ``v`` pushes to its immediate children — then
greedily picks the top node, recomputes prefixes under the enlarged filter
set, and repeats ``k`` times (``O(k·|E|)`` total).

``I'`` blends ``Greedy_1``'s locality with ``Greedy_Max``'s global prefix,
and the re-computation step lets earlier picks depress later scores.  Its
documented bias (Section 4.2 and the Figure 7/8 discussions): prefixes grow
multiplicatively with distance from the source, so ``Greedy_L`` drifts
toward nodes far down the graph and its FR curve converges more slowly.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Hashable

from repro.core.base import PlacementResult, PlacementStep, check_budget
from repro.graphs.cgraph import CGraph
from repro.propagation.engine import item_receipts

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import PropagationBackend

Node = Hashable


def simplified_impacts(
    graph: CGraph,
    filters: set[Node],
    *,
    backend: "str | PropagationBackend | None" = None,
) -> dict[Node, int]:
    """``I'(v) = Prefix(v) × dout(v)`` under the current filter set.

    Prefixes aggregate one item per source, as everywhere else.  Routed
    through the pluggable backend registry; every backend returns
    identical integers.
    """
    from repro.backends.registry import resolve_backend

    return resolve_backend(backend).simplified_impacts(graph, filters)


def simplified_impacts_exact(
    graph: CGraph,
    filters: set[Node],
    *,
    _order: tuple[Node, ...] | None = None,
) -> dict[Node, int]:
    """:func:`simplified_impacts` via the exact big-int sweeps (the
    ``python`` backend's implementation)."""
    order = _order if _order is not None else graph.topological_order()
    totals: dict[Node, int] = dict.fromkeys(order, 0)
    for origin in graph.sources:
        psi = item_receipts(graph, origin, filters, _order=order)
        for v in order:
            totals[v] += psi[v]
    # Keyed in graph.nodes() order — the cross-backend canonical order.
    return {
        v: totals[v] * graph.out_degree(v)
        for v in graph.nodes()
    }


class GreedyL:
    """The paper's ``Greedy_L`` (Algorithm 2).

    Score sweeps run on the propagation backend given by ``backend``
    (None = the registry default).
    """

    name = "G_L"
    prefix_consistent = True

    def __init__(
        self,
        *,
        backend: "str | PropagationBackend | None" = None,
    ) -> None:
        self.backend = backend

    def place(
        self,
        graph: CGraph,
        k: int,
        *,
        rng: random.Random | None = None,
    ) -> PlacementResult:
        """One ``I'(v)`` sweep per pick (Algorithm 2)."""
        check_budget(graph, k)
        node_rank = {v: i for i, v in enumerate(graph.nodes())}
        order = graph.topological_order()
        chosen: list[Node] = []
        steps: list[PlacementStep] = []
        current: set[Node] = set()
        for _ in range(k):
            scores = simplified_impacts(graph, current, backend=self.backend)
            best: Node | None = None
            best_score = 0
            for v in order:
                if v in current:
                    continue
                score = scores[v]
                # A node forwarding at most one copy per edge gains nothing
                # by filtering; requiring Prefix × dout > dout would need
                # the prefix, so Greedy_L's own coarse cut is score > 0.
                if score <= 0:
                    continue
                if (
                    best is None
                    or score > best_score
                    or (score == best_score and node_rank[v] < node_rank[best])
                ):
                    best = v
                    best_score = score
            if best is None:
                break
            current.add(best)
            chosen.append(best)
            steps.append(
                PlacementStep(
                    node=best,
                    gain=best_score,
                    evaluations=(("simplified_impacts", 1),),
                )
            )
        return PlacementResult(
            algorithm=self.name,
            filters=tuple(chosen),
            requested_k=k,
            steps=tuple(steps),
        )


def greedy_l(graph: CGraph, k: int) -> PlacementResult:
    """Functional convenience wrapper around :class:`GreedyL`."""
    return GreedyL().place(graph, k)
