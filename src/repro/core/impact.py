"""Fast impact computation: prefix × absorbing-suffix.

The paper computes a node's impact as ``I(v) = (Prefix(v) − 1) × Suffix(v)``
where ``Prefix(v)`` is the number of copies ``v`` receives and ``Suffix(v)``
counts the directed paths leaving ``v`` — with the crucial refinement that a
filter's ``plist`` is *reset*, so paths are only followed until they hit an
existing filter (Section 4, "Implementation of Greedy All").

This module computes the same quantity with two linear passes instead of
per-node path dictionaries:

* ``ψ(v)`` — copies received given the current filter set ``A`` (forward
  topological pass; :func:`receipts_given_filters`).
* ``W(v)`` — the *absorbing suffix*: how many additional receipts one extra
  copy emitted by ``v`` on each out-edge creates downstream, filters
  absorbing the perturbation because their output is pinned at one copy
  (backward topological pass; :func:`absorbing_suffix`):
  ``W(v) = Σ_{u ∈ children(v)} (1 + [u ∉ A]·W(u))``.

The marginal gain of turning ``v`` into a filter is then exactly

    ``I(v | A) = max(ψ(v) − 1, 0) × W(v)``

because filtering drops ``v``'s per-edge emission from ``ψ(v)`` to 1 (when
``ψ(v) ≥ 1``; a node that never receives the item stays silent), the
perturbation propagates linearly through non-filter nodes, and reachability
is unchanged so no downstream filter flips on or off.  One pass per greedy
iteration instead of the paper's ``O(Δ·|E|)`` plist maintenance; the two
implementations are cross-checked in the test suite.

Everything aggregates over one item per source (distinct items, as in the
paper); ``W`` is item-independent, ``ψ`` is per-item.

All sweeps run over the graph's compiled view (interned ids, tuple
adjacency, cached topological order); :func:`absorbing_suffix_ids` and
:func:`marginal_gains_ids_exact` are the id-level primitives and the
node-keyed entry points translate only at the boundary.

:func:`marginal_gains` dispatches through the pluggable backend registry
(:mod:`repro.backends.registry`): the index sweeps below are the ``python``
backend's implementation, and the ``numpy`` backend computes the same
``ψ``/``W`` passes as batched level-synchronous array operations.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable
from typing import TYPE_CHECKING, Hashable

from repro.exceptions import MissingSourceError
from repro.graphs.cgraph import CGraph
from repro.graphs.validation import validate_filter_set
from repro.propagation.engine import (
    item_receipts,
    item_receipts_ids,
    loose_filter_mask,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import PropagationBackend
    from repro.graphs.compiled import CompiledGraph

Node = Hashable


def receipts_given_filters(
    graph: CGraph,
    origin: Node,
    filters: Collection[Node] = (),
) -> dict[Node, int]:
    """``ψ(v)``: copies of ``origin``'s item each node receives under ``A``.

    Alias of :func:`repro.propagation.engine.item_receipts`, re-exported
    under the paper's vocabulary ("Prefix") for the impact computation.
    """
    return item_receipts(graph, origin, filters)


def absorbing_suffix_ids(
    compiled: "CompiledGraph",
    mask: bytearray,
    succ: "tuple[tuple[int, ...], ...] | None" = None,
) -> list[int]:
    """``W`` as a list over interned ids — one backward index sweep.

    Maintains the filter-absorbed view ``w_eff(u) = [u ∉ A]·W(u)`` so the
    recurrence collapses to ``W(v) = dout(v) + Σ_u w_eff(u)`` and the
    per-edge work runs inside C (``sum(map(...))``), mirroring the
    gather-from-parents trick of the forward ψ sweep.

    ``succ`` substitutes a different successor table over the same node
    ids (a live-edge world's pruned adjacency, from the Monte-Carlo
    sampler); the cached topological order stays valid on any edge
    subset.  Default: the full graph's adjacency.
    """
    w = [0] * compiled.n
    w_eff = [0] * compiled.n
    w_eff_get = w_eff.__getitem__
    if succ is None:
        succ = compiled.succ_ids
    for v in reversed(compiled.topo_order):
        children = succ[v]
        if children:
            acc = len(children) + sum(map(w_eff_get, children))
            w[v] = acc
            if not mask[v]:
                w_eff[v] = acc
    return w


def absorbing_suffix(
    graph: CGraph,
    filters: Collection[Node] = (),
    *,
    _order: tuple[Node, ...] | None = None,
) -> dict[Node, int]:
    """``W(v)``: downstream receipts created per extra emitted copy.

    Equivalently (and as the tests verify): the number of non-empty
    directed paths starting at ``v`` whose *interior* contains no filter —
    the ``Suffix`` of the paper after plist resets.  Sinks have ``W = 0``.
    ``_order`` is deprecated and ignored (the compiled view caches its
    own topological order).
    """
    compiled = graph.compiled()
    w = absorbing_suffix_ids(compiled, loose_filter_mask(compiled, filters))
    return dict(zip(compiled.nodes, w))


def marginal_gains(
    graph: CGraph,
    filters: Collection[Node] = (),
    *,
    backend: "str | PropagationBackend | None" = None,
) -> dict[Node, int]:
    """``I(v | A) = F(A ∪ {v}) − F(A)`` for every node at once.

    Nodes already in ``A`` report 0 (re-adding them changes nothing).
    ``backend`` selects the propagation backend (name, instance, or None
    for the registry default); every backend returns identical integers.
    """
    from repro.backends.registry import resolve_backend

    return resolve_backend(backend).marginal_gains(graph, filters)


def marginal_gains_ids(
    graph: CGraph,
    filter_ids: Iterable[int] = (),
    *,
    backend: "str | PropagationBackend | None" = None,
) -> list[int]:
    """:func:`marginal_gains` over interned ids — the algorithms' hot path.

    Returns a plain list indexed by compiled node id (which equals the
    ``graph.nodes()`` rank, so an index compare is a rank tie-break).
    ``filter_ids`` must be valid interned ids of ``graph.compiled()``.
    """
    from repro.backends.registry import resolve_backend

    return resolve_backend(backend).marginal_gains_ids(graph, filter_ids)


def marginal_gains_ids_exact(
    graph: CGraph,
    filter_ids: Iterable[int] = (),
) -> list[int]:
    """:func:`marginal_gains_ids` via the exact bit-packed aggregate
    sweeps (the ``python`` backend's default *bitpack* tier).

    The per-source decomposition ``I(v | A) = Σ_s max(ψ_s(v) − 1, 0) ·
    W(v)`` collapses: the max only trims sources that never reach ``v``,
    so the sum is ``(T(v) − nreach(v)) · W(v)`` with ``T`` from one
    aggregate sweep (:func:`~repro.propagation.engine.
    aggregate_receipts_ids`) and ``nreach`` a cached per-graph constant
    (:func:`~repro.graphs.compiled.packed_reach_counts`).

    Cost: one ``W`` pass plus one ``T`` pass — independent of the source
    count, versus the lanes tier's ``S + 1`` sweeps.  Results are
    bit-identical to :func:`marginal_gains_ids_lanes_exact` (the fuzz
    harness holds the two to that).
    """
    from repro.propagation.engine import aggregate_receipts_ids

    if not graph.sources:
        raise MissingSourceError("graph has no sources")
    compiled = graph.compiled()
    mask = compiled.filter_mask(filter_ids)
    w = absorbing_suffix_ids(compiled, mask)
    nreach = compiled.reach_counts()
    totals = aggregate_receipts_ids(compiled, mask, nreach)
    gains = [0] * compiled.n
    for v in range(compiled.n):
        if mask[v]:
            continue
        excess = totals[v] - nreach[v]
        if excess:
            wv = w[v]
            if wv:
                gains[v] = excess * wv
    return gains


def marginal_gains_ids_lanes_exact(
    graph: CGraph,
    filter_ids: Iterable[int] = (),
) -> list[int]:
    """:func:`marginal_gains_ids` via one exact big-int ``ψ`` sweep per
    source (the ``python`` backend's *lanes* tier, and the differential
    reference the bitpack tier is fuzzed against).

    Cost: one ``W`` pass plus one ``ψ`` pass per source.
    """
    if not graph.sources:
        raise MissingSourceError("graph has no sources")
    compiled = graph.compiled()
    mask = compiled.filter_mask(filter_ids)
    w = absorbing_suffix_ids(compiled, mask)
    gains = [0] * compiled.n
    for origin_id in compiled.source_ids:
        psi = item_receipts_ids(compiled, origin_id, mask)
        for v, count in enumerate(psi):
            if count > 1 and not mask[v]:
                wv = w[v]
                if wv:
                    gains[v] += (count - 1) * wv
    return gains


def marginal_gains_exact(
    graph: CGraph,
    filters: Collection[Node] = (),
) -> dict[Node, int]:
    """:func:`marginal_gains` via the exact big-int index sweeps (the
    ``python`` backend's implementation)."""
    if not graph.sources:
        raise MissingSourceError("graph has no sources")
    filter_set = set(filters)
    validate_filter_set(graph, filter_set)
    compiled = graph.compiled()
    gains = marginal_gains_ids_exact(graph, compiled.to_ids(filter_set))
    # Keyed in graph.nodes() order — the cross-backend canonical order, so
    # serialized results match the numpy backend's byte for byte.
    return dict(zip(compiled.nodes, gains))


def impacts(
    graph: CGraph,
    *,
    backend: "str | PropagationBackend | None" = None,
) -> dict[Node, int]:
    """Initial impacts ``I(v) = I(v | ∅)`` — what ``Greedy_Max`` ranks by."""
    return marginal_gains(graph, (), backend=backend)


def marginal_gain(
    graph: CGraph,
    filters: Collection[Node],
    node: Node,
    *,
    backend: "str | PropagationBackend | None" = None,
) -> int:
    """``I(node | A)`` for a single node, via the same two-pass machinery."""
    return marginal_gains(graph, filters, backend=backend)[node]
