"""``Greedy_Max`` — impacts computed once, top-``k`` taken.

The first of the paper's two speed-up heuristics: compute every node's
initial impact ``I(v) = I(v | ∅)`` exactly as ``Greedy_All`` would, but skip
the re-computation between picks and simply return the ``k`` highest-impact
nodes.  Running time ``O(n · |E|)`` in the paper, one linear sweep here.

Its documented failure mode (Figure 10): nodes strung along a path all look
high-impact in isolation, yet a single filter upstream collapses the
impact of the rest — ``Greedy_Max`` buys the whole chain anyway, which is
why its FR curve plateaus on the citation graph (Figure 9).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Hashable

from repro.core.base import PlacementResult, PlacementStep, check_budget
from repro.core.impact import marginal_gains_ids
from repro.graphs.cgraph import CGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import PropagationBackend
    from repro.propagation.model import PropagationModel

Node = Hashable


class GreedyMax:
    """The paper's ``Greedy_Max`` heuristic.

    The single impact sweep runs on the propagation backend given by
    ``backend`` (None = the registry default).  Under a probabilistic
    relaying model the ranking uses the summed-over-worlds SAA impacts
    instead (same sweep shape, same tie-breaks).
    """

    name = "G_Max"
    prefix_consistent = True

    def __init__(
        self,
        *,
        backend: "str | PropagationBackend | None" = None,
        model: "PropagationModel | None" = None,
    ) -> None:
        self.backend = backend
        self.model = model

    def place(
        self,
        graph: CGraph,
        k: int,
        *,
        rng: random.Random | None = None,
    ) -> PlacementResult:
        """Rank once by ``I(v | ∅)`` and take the top ``k``.

        The sweep, ranking and tie-breaks all run on interned ids (an id
        is the ``graph.nodes()`` rank); nodes reappear at the boundary.
        """
        from repro.propagation.model import resolve_model

        check_budget(graph, k)
        model = resolve_model(self.model)
        compiled = graph.compiled()
        if model is None:
            scored = marginal_gains_ids(graph, (), backend=self.backend)
        else:
            from repro.backends.registry import resolve_backend

            scored = resolve_backend(
                self.backend
            ).sampled_marginal_gains_ids(graph, (), model=model)
        ranked = sorted(
            (v for v, gain in enumerate(scored) if gain > 0),
            key=lambda v: (-scored[v], v),
        )
        chosen_ids = ranked[:k]
        # The single sweep is charged to the first pick; later picks are
        # free table lookups.
        steps = tuple(
            PlacementStep(
                node=compiled.nodes[v],
                gain=scored[v],
                evaluations=(("marginal_gains", 1),) if i == 0 else (),
            )
            for i, v in enumerate(chosen_ids)
        )
        return PlacementResult(
            algorithm=self.name,
            filters=tuple(compiled.to_nodes(chosen_ids)),
            requested_k=k,
            steps=steps,
        )


def greedy_max(graph: CGraph, k: int) -> PlacementResult:
    """Functional convenience wrapper around :class:`GreedyMax`."""
    return GreedyMax().place(graph, k)
