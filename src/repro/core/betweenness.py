"""Betweenness-centrality placement — the related-work strawman.

Section 2 of the paper argues that filter placement is *not* a centrality
problem: content travels along **all** paths, not just shortest ones, so
the nodes lying on the most shortest paths can be useless filters.  In
Figure 1, ``x`` and ``y`` have the highest betweenness, yet the only node
where filtering helps is ``z2``.

This module makes the strawman executable: rank nodes by directed
betweenness centrality (via networkx's Brandes implementation, the paper's
reference [2]) and take the top ``k``.  The example scripts and the test
suite use it to reproduce the paper's argument quantitatively.
"""

from __future__ import annotations

import random
from typing import Hashable

from repro.core.base import PlacementResult, PlacementStep, check_budget
from repro.graphs.cgraph import CGraph

Node = Hashable


def betweenness_scores(graph: CGraph) -> dict[Node, float]:
    """Directed betweenness centrality of every node (endpoints excluded)."""
    import networkx as nx

    return nx.betweenness_centrality(graph.to_networkx(), normalized=True)


class BetweennessPlacement:
    """Top-``k`` betweenness nodes, as a comparison baseline."""

    name = "Betweenness"
    prefix_consistent = True

    def place(
        self,
        graph: CGraph,
        k: int,
        *,
        rng: random.Random | None = None,
    ) -> PlacementResult:
        """Take the ``k`` highest positive-betweenness nodes."""
        check_budget(graph, k)
        node_rank = {v: i for i, v in enumerate(graph.nodes())}
        scores = betweenness_scores(graph)
        ranked = sorted(
            (v for v, score in scores.items() if score > 0.0),
            key=lambda v: (-scores[v], node_rank[v]),
        )
        chosen = tuple(ranked[:k])
        steps = tuple(
            PlacementStep(node=v, gain=int(scores[v] * 10**9)) for v in chosen
        )
        return PlacementResult(
            algorithm=self.name,
            filters=chosen,
            requested_k=k,
            steps=steps,
        )
