"""Process-parallel sampled-world evaluation (split-by-world-range).

Worlds are an independent, common-random-number sample axis: trial ``t``
of a :class:`~repro.propagation.sampling.SampledWorlds` depends only on
``(graph, probabilities, trials, seed)`` — never on any other trial.
Splitting ``range(trials)`` into per-worker sub-ranges and summing the
shard results is therefore embarrassingly parallel, and because every
shard sum is an exact Python integer, the reduce is associative and
commutative: **any** shard ordering produces the bit-identical total the
serial loop produces.  That is the determinism contract
``tests/test_parallel_worlds.py`` locks down.

Sharding protocol
-----------------
Workers cannot share the parent's graph (compiled views hold weakrefs
and are deliberately unpicklable), so each shard ships a *picklable
spec* — ``(edges, nodes, sources)`` — and the worker rebuilds and
caches the graph per process.  Worlds are then **re-sampled in full**
inside the worker (one seeded pure-Python pass — cheap next to the
sweeps) and only the shard's ``[lo, hi)`` trial range is evaluated, so
every worker sees exactly the worlds the serial path sees.

The pool is armed per thread via :func:`use_world_workers` (or process-
wide via :func:`set_world_workers`, the CLI ``--workers`` wiring); the
sampling functions consult :func:`active_workers` and fall back to the
serial loop whenever the pool is off, the world count is below
:data:`MIN_WORLDS_FOR_POOL`, or they are already evaluating an explicit
shard (which is also what makes worker-side re-dispatch impossible under
``fork`` start methods).

Worker failures surface as :class:`WorldShardError` — a clean exception
in the caller, never a hang; the ``__crash__`` payload kind is the
regression seam the crash test injects through (monkeypatching module
attributes does not survive the spawn/forkserver start methods).
"""

from __future__ import annotations

import atexit
import threading
from collections import OrderedDict
from collections.abc import Iterator
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any

from repro.exceptions import ParameterError, ReproError
from repro.scoping import ScopedDefault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graphs.cgraph import CGraph
    from repro.propagation.model import PropagationModel

#: Below this many worlds the pool is never engaged: process dispatch
#: and world re-sampling overhead would dominate the sweeps saved.
MIN_WORLDS_FOR_POOL = 8

#: Payload kinds :func:`_shard_worker` evaluates.  ``__crash__`` is the
#: crash-path regression seam: it raises inside the worker process so
#: tests can assert the parent surfaces a clean error without hanging.
SHARD_KINDS: tuple[str, ...] = (
    "marginal_gains",
    "simplified_impacts",
    "total_receipts",
    "__crash__",
)


class WorldShardError(ReproError):
    """A worker shard failed; carries the original failure's text."""


# Per-thread scoping, like the backend/model defaults: the service's
# concurrent jobs must not inherit each other's worker counts.
_workers: ScopedDefault[int] = ScopedDefault(1)

# Diagnostics the threshold-skip test reads: how many evaluations went
# to the pool since process start (or the last reset).
_pool_dispatches = 0


def pool_dispatches() -> int:
    """Evaluations dispatched to the process pool so far."""
    return _pool_dispatches


def active_workers() -> int:
    """The effective world-worker count for the calling thread."""
    return _workers.get()


def _check_workers(workers: int) -> int:
    if not isinstance(workers, int) or isinstance(workers, bool):
        raise ParameterError("workers must be an integer")
    if workers < 1:
        raise ParameterError("workers must be positive")
    return workers


def set_world_workers(workers: int) -> None:
    """Set the process-wide world-worker count (1 = serial)."""
    _workers.set_global(_check_workers(workers))


@contextmanager
def use_world_workers(workers: int) -> Iterator[int]:
    """Scope the world-worker count for a ``with`` block (this thread)."""
    with _workers.scoped(_check_workers(workers)) as value:
        yield value


def shard_ranges(trials: int, workers: int) -> list[tuple[int, int]]:
    """Split ``range(trials)`` into ≤ ``workers`` contiguous sub-ranges.

    Remainder trials go to the leading shards, so shard sizes differ by
    at most one and no shard is ever empty.
    """
    workers = min(workers, trials)
    base, extra = divmod(trials, workers)
    ranges: list[tuple[int, int]] = []
    lo = 0
    for i in range(workers):
        hi = lo + base + (1 if i < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def graph_spec(graph: "CGraph") -> tuple:
    """The picklable identity a worker rebuilds the graph from."""
    return (
        tuple(graph.edges()),
        graph.nodes(),
        tuple(graph.sources) if graph.sources_explicit else None,
    )


# ----------------------------------------------------------------------
# Worker side (module-level: must pickle by qualified name)
# ----------------------------------------------------------------------

#: Graphs rebuilt in this worker process, LRU-bounded.  Keyed by the
#: spec itself (hashable tuples), so repeated shards of one placement
#: run rebuild — and re-sample worlds for — each graph exactly once.
_worker_graphs: "OrderedDict[tuple, CGraph]" = OrderedDict()

_MAX_WORKER_GRAPHS = 4


def _rebuild_graph(spec: tuple) -> "CGraph":
    from repro.graphs.cgraph import CGraph

    cached = _worker_graphs.get(spec)
    if cached is not None:
        _worker_graphs.move_to_end(spec)
        return cached
    edges, nodes, sources = spec
    graph = CGraph(edges, nodes=nodes, sources=sources)
    if graph.nodes() != tuple(nodes):
        # CGraph interns nodes in edge-endpoint first-appearance order,
        # which need not survive a round-trip through ``edges()``.  Node
        # order drives ``edges()`` iteration and therefore the world
        # sampler's RNG consumption — the determinism anchor of the
        # whole sharding contract — so restore the parent's order
        # verbatim before any derived state (topo order, compiled view,
        # sampled worlds) is built off it.
        graph._nodes = tuple(nodes)
    _worker_graphs[spec] = graph
    while len(_worker_graphs) > _MAX_WORKER_GRAPHS:
        _worker_graphs.popitem(last=False)
    return graph


def _shard_worker(payload: tuple) -> Any:
    """Evaluate one world shard in a worker process.

    ``payload`` is ``(kind, spec, filter_ids, model, tier, lo, hi)``.
    The explicit ``trial_range`` keeps the worker on the serial path —
    even when a ``fork``-started child inherits a process-wide worker
    count, it can never re-dispatch to a nested pool.
    """
    kind = payload[0]
    if kind == "__crash__":
        raise RuntimeError("injected crash (test seam)")
    kind, spec, filter_ids, model, tier, lo, hi = payload
    graph = _rebuild_graph(spec)
    from repro.propagation import sampling

    if kind == "marginal_gains":
        return sampling.sampled_marginal_gains_ids_exact(
            graph, filter_ids, model=model, tier=tier, trial_range=(lo, hi)
        )
    if kind == "simplified_impacts":
        return sampling.sampled_simplified_impacts_ids_exact(
            graph, filter_ids, model=model, tier=tier, trial_range=(lo, hi)
        )
    if kind == "total_receipts":
        compiled = graph.compiled()
        return sampling.sampled_total_receipts_exact(
            graph,
            compiled.to_nodes(filter_ids),
            model=model,
            tier=tier,
            trial_range=(lo, hi),
        )
    raise ParameterError(f"unknown shard kind {kind!r}")


# ----------------------------------------------------------------------
# Parent side: pool cache + sharded evaluation
# ----------------------------------------------------------------------

_pools: dict[int, Any] = {}
_pools_lock = threading.Lock()


def _get_pool(workers: int):
    from concurrent.futures import ProcessPoolExecutor

    with _pools_lock:
        pool = _pools.get(workers)
        if pool is None:
            pool = ProcessPoolExecutor(max_workers=workers)
            _pools[workers] = pool
        return pool


def _drop_pool(workers: int) -> None:
    """Forget a (possibly broken) pool so the next call starts fresh."""
    with _pools_lock:
        pool = _pools.pop(workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


@atexit.register
def _shutdown_pools() -> None:  # pragma: no cover - interpreter teardown
    with _pools_lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown(wait=False, cancel_futures=True)


def should_shard(trials: int, trial_range: "tuple[int, int] | None") -> bool:
    """True when the calling evaluation should go to the pool."""
    return (
        trial_range is None
        and active_workers() > 1
        and trials >= MIN_WORLDS_FOR_POOL
    )


def evaluate_sharded(
    kind: str,
    graph: "CGraph",
    filter_ids: list[int],
    model: "PropagationModel",
    tier: str,
    *,
    workers: int | None = None,
    order: str = "forward",
) -> Any:
    """Evaluate ``kind`` over all of ``model``'s worlds on the pool.

    Returns exactly what the serial function returns: shard results are
    integers (or lists of integers), and integer addition is associative
    and commutative, so the reduce is bit-identical to the serial loop
    for *any* ``order`` ("forward"/"reverse" submit-and-reduce order —
    both are exercised by the determinism tests).

    Any worker failure — an exception inside the shard or a died worker
    process — is re-raised here as :class:`WorldShardError`; the pool is
    dropped when broken so later calls recover with a fresh one.
    """
    global _pool_dispatches
    if kind not in SHARD_KINDS:
        raise ParameterError(f"unknown shard kind {kind!r}")
    if order not in ("forward", "reverse"):
        raise ParameterError(f"unknown shard order {order!r}")
    workers = _check_workers(
        active_workers() if workers is None else workers
    )
    spec = graph_spec(graph)
    ranges = shard_ranges(model.trials, workers)
    if order == "reverse":
        ranges = ranges[::-1]
    payloads = [
        (kind, spec, list(filter_ids), model, tier, lo, hi)
        for lo, hi in ranges
    ]
    pool = _get_pool(workers)
    _pool_dispatches += 1
    try:
        futures = [pool.submit(_shard_worker, p) for p in payloads]
        shard_results = [f.result() for f in futures]
    except WorldShardError:
        raise
    except Exception as exc:
        # BrokenProcessPool (a worker process died) poisons the pool;
        # plain worker exceptions do not, but dropping is always safe.
        _drop_pool(workers)
        raise WorldShardError(
            f"world shard failed ({kind}, {workers} workers): "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    first = shard_results[0]
    if isinstance(first, int):
        return sum(shard_results)
    total = list(first)
    for shard in shard_results[1:]:
        for v, value in enumerate(shard):
            if value:
                total[v] += value
    return total
