"""Exact receipt counting on DAGs.

For one item generated at ``origin`` and a filter set ``A``, the number of
copies each node receives is fully determined by one pass in topological
order:

* the origin emits exactly one copy on each outgoing edge;
* a non-filter node that receives ``ψ(v)`` copies emits ``ψ(v)`` copies on
  each outgoing edge;
* a filter node emits one copy on each outgoing edge — provided it received
  the item at all (a filter with nothing to forward emits nothing);
* ``ψ(v) = Σ_{p ∈ parents(v)} emit(p)``.

Hence ``Φ(A, V) = Σ_v ψ(v)``, the objective's raw material.  Counts grow as
path counts do — exponentially in the worst case — so everything stays in
exact Python integers.

Multiple sources generate *distinct* items (paper §3); per-item counts are
computed independently and summed.  Because copies of distinct items never
interact (filters deduplicate per item), this aggregation is exact.

The sweeps run on the graph's compiled view
(:meth:`repro.graphs.cgraph.CGraph.compiled`): interned integer ids, tuple
adjacency and a cached topological order, so the hot loops index flat
lists instead of hashing node objects.  :func:`item_receipts_ids` is the
id-level primitive; the node-keyed entry points translate at the boundary.

The aggregate entry points (:func:`node_receipts`, :func:`total_receipts`)
dispatch through the pluggable backend registry
(:mod:`repro.backends.registry`): the exact big-int sweeps below are the
``python`` backend's implementation, while the ``numpy`` backend batches
all sources into vectorized level sweeps and falls back here when int64
could overflow.  :func:`item_receipts` is the per-item primitive and always
runs exactly.
"""

from __future__ import annotations

from collections.abc import Collection, Mapping
from typing import TYPE_CHECKING, Hashable

from repro.exceptions import MissingNodeError, MissingSourceError
from repro.graphs.cgraph import CGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import PropagationBackend
    from repro.graphs.compiled import CompiledGraph

Node = Hashable


def loose_filter_mask(
    compiled: "CompiledGraph", filters: Collection[Node]
) -> bytearray:
    """A 0/1 mask over interned ids, silently ignoring unknown nodes.

    The per-item primitives historically tolerated filter sets referencing
    nodes outside the graph (membership validation is the backends' job,
    so every backend rejects identically); this helper preserves that.
    """
    mask = bytearray(compiled.n)
    index_get = compiled.index.get
    for v in filters:
        i = index_get(v)
        if i is not None:
            mask[i] = 1
    return mask


def item_receipts_ids(
    compiled: "CompiledGraph",
    origin_id: int,
    mask: bytearray,
    pred: "tuple[tuple[int, ...], ...] | None" = None,
) -> list[int]:
    """``ψ`` for one item as a list over interned ids — the hot primitive.

    ``mask`` is a dense 0/1 filter-membership array
    (:func:`loose_filter_mask` or
    :meth:`~repro.graphs.compiled.CompiledGraph.filter_mask`).

    The sweep gathers from predecessors (``ψ(v) = Σ_p emit(p)``) so the
    per-edge work runs inside C (``sum(map(emit.__getitem__, parents))``)
    instead of a Python scatter loop — the difference between the
    pre-compile and compiled pure-python engines at paper scale.

    ``pred`` substitutes a different predecessor table over the same node
    ids — the Monte-Carlo sampler passes a live-edge world's pruned
    adjacency so each trial reuses this sweep (and the cached topological
    order, which remains valid on any edge subset) instead of rebuilding
    a graph.  Default: the full graph's adjacency.
    """
    received = [0] * compiled.n
    emit = [0] * compiled.n
    emit_get = emit.__getitem__
    if pred is None:
        pred = compiled.pred_ids
    for v in compiled.topo_order:
        parents = pred[v]
        if parents:
            count = sum(map(emit_get, parents))
            if count:
                received[v] = count
                emit[v] = 1 if mask[v] else count
        if v == origin_id:
            emit[v] = 1
    return received


def aggregate_receipts_ids(
    compiled: "CompiledGraph",
    mask: bytearray,
    nreach: "list[int] | None" = None,
    pred: "tuple[tuple[int, ...], ...] | None" = None,
) -> list[int]:
    """``T(v) = Σ_s ψ_s(v)`` in **one** sweep — the bit-packed tier's
    deterministic workhorse.

    The per-source sweeps are collapsible because the only per-source
    fact a filter's emission depends on is *whether* that source's item
    arrived — and arrival is filter-independent (a filter forwards at
    least one copy of anything it receives), so it is exactly the
    reachability count ``nreach`` from
    :func:`repro.graphs.compiled.packed_reach_counts`.  Summing the
    per-item recurrence over sources gives one uniform emission rule::

        T(v)    = Σ_{p ∈ pred(v)} E(p)
        E(p)    = (nreach(p) if p ∈ A else T(p)) + [p is a source]

    A filter emits one copy per distinct item it received — ``nreach(p)``
    items; a non-filter relays everything — ``T(p)`` copies; a designated
    source additionally emits its own item once (``ψ_v(v) = 0`` in a
    DAG, so the own item never double-counts through a parent).

    ``nreach`` defaults to the graph's cached
    :meth:`~repro.graphs.compiled.CompiledGraph.reach_counts`; the
    Monte-Carlo samplers pass a live-edge world's pruned ``pred``
    together with that world's own reachability counts (both must
    describe the same edge subset, or the filter emissions disagree
    with what actually arrived).

    Cost: two sweeps per gains evaluation (this plus the suffix-weight
    pass) instead of ``S + 1`` — the asymptotic win the bitpack tier is
    built on.  Counts are exact Python ints, so no overflow ladder is
    needed here.
    """
    if pred is None:
        pred = compiled.pred_ids
    if nreach is None:
        nreach = compiled.reach_counts()
    bonus = compiled.source_mark()
    totals = [0] * compiled.n
    emit = [0] * compiled.n
    emit_get = emit.__getitem__
    for v in compiled.topo_order:
        parents = pred[v]
        t = sum(map(emit_get, parents)) if parents else 0
        totals[v] = t
        emit[v] = (nreach[v] if mask[v] else t) + bonus[v]
    return totals


def item_receipts(
    graph: CGraph,
    origin: Node,
    filters: Collection[Node] = (),
    *,
    _order: tuple[Node, ...] | None = None,
) -> dict[Node, int]:
    """Copies of a single item (generated at ``origin``) received per node.

    The origin's own receipt count is 0: in a DAG an item can never return
    to its generator.  Nodes unreachable from ``origin`` report 0.

    Parameters
    ----------
    graph:
        A DAG (raises :class:`~repro.exceptions.CyclicGraphError` otherwise).
    origin:
        The node generating the item.  It does not have to be a designated
        source of the graph — useful for what-if analyses.
    filters:
        Nodes equipped with deduplicating output filters.
    _order:
        Deprecated and ignored: the compiled view caches its own
        topological order, so there is nothing left to amortize.
    """
    compiled = graph.compiled()
    if origin not in compiled.index:
        raise MissingNodeError(origin)
    received = item_receipts_ids(
        compiled, compiled.index[origin], loose_filter_mask(compiled, filters)
    )
    return dict(zip(compiled.nodes, received))


def node_receipts(
    graph: CGraph,
    filters: Collection[Node] = (),
    *,
    items_per_source: int | Mapping[Node, int] = 1,
    backend: "str | PropagationBackend | None" = None,
) -> dict[Node, int]:
    """Total receipts per node, aggregated over all sources' items.

    Each source generates ``items_per_source`` distinct items (an int
    applies to every source; a mapping gives per-source counts).  Distinct
    items from the same source propagate identically, so their receipt
    counts are the single-item counts scaled — computed once and
    multiplied, exactly.

    ``backend`` selects the propagation backend (name, instance, or None
    for the registry default); every backend returns identical integers.
    """
    from repro.backends.registry import resolve_backend
    from repro.obs.trace import span

    resolved = resolve_backend(backend)
    with span("engine.node_receipts", backend=resolved.name):
        return resolved.node_receipts(
            graph, filters, items_per_source=items_per_source
        )


def node_receipts_exact(
    graph: CGraph,
    filters: Collection[Node] = (),
    *,
    items_per_source: int | Mapping[Node, int] = 1,
) -> dict[Node, int]:
    """:func:`node_receipts` via the exact big-int sweeps (the ``python``
    backend's implementation; fast backends fall back here on overflow)."""
    if not graph.sources:
        raise MissingSourceError("graph has no sources")
    compiled = graph.compiled()
    mask = loose_filter_mask(compiled, filters)
    totals = [0] * compiled.n
    for origin_id in compiled.source_ids:
        if isinstance(items_per_source, Mapping):
            weight = items_per_source.get(compiled.nodes[origin_id], 0)
        else:
            weight = items_per_source
        if weight <= 0:
            continue
        per_item = item_receipts_ids(compiled, origin_id, mask)
        for v, count in enumerate(per_item):
            if count:
                totals[v] += weight * count
    return dict(zip(compiled.nodes, totals))


def total_receipts(
    graph: CGraph,
    filters: Collection[Node] = (),
    *,
    items_per_source: int | Mapping[Node, int] = 1,
    backend: "str | PropagationBackend | None" = None,
) -> int:
    """``Φ(A, V)``: the grand total number of received copies."""
    from repro.backends.registry import resolve_backend
    from repro.obs.trace import span

    resolved = resolve_backend(backend)
    with span("engine.total_receipts", backend=resolved.name):
        return resolved.total_receipts(
            graph, filters, items_per_source=items_per_source
        )


def item_emissions(
    graph: CGraph,
    origin: Node,
    filters: Collection[Node] = (),
) -> dict[Node, int]:
    """Copies each node emits *per outgoing edge* for one item.

    Mostly a white-box testing aid: ``received[child] = Σ emissions[parent]``
    must hold edge-wise, and a filter's emission is capped at one.
    """
    received = item_receipts(graph, origin, filters)
    filter_set = set(filters)
    emissions: dict[Node, int] = {}
    for v in graph.nodes():
        if v == origin:
            emissions[v] = 1
        elif received[v] == 0:
            emissions[v] = 0
        elif v in filter_set:
            emissions[v] = 1
        else:
            emissions[v] = received[v]
    return emissions
