"""Exact receipt counting on DAGs.

For one item generated at ``origin`` and a filter set ``A``, the number of
copies each node receives is fully determined by one pass in topological
order:

* the origin emits exactly one copy on each outgoing edge;
* a non-filter node that receives ``ψ(v)`` copies emits ``ψ(v)`` copies on
  each outgoing edge;
* a filter node emits one copy on each outgoing edge — provided it received
  the item at all (a filter with nothing to forward emits nothing);
* ``ψ(v) = Σ_{p ∈ parents(v)} emit(p)``.

Hence ``Φ(A, V) = Σ_v ψ(v)``, the objective's raw material.  Counts grow as
path counts do — exponentially in the worst case — so everything stays in
exact Python integers.

Multiple sources generate *distinct* items (paper §3); per-item counts are
computed independently and summed.  Because copies of distinct items never
interact (filters deduplicate per item), this aggregation is exact.

The aggregate entry points (:func:`node_receipts`, :func:`total_receipts`)
dispatch through the pluggable backend registry
(:mod:`repro.backends.registry`): the exact big-int sweeps below are the
``python`` backend's implementation, while the ``numpy`` backend batches
all sources into vectorized level sweeps and falls back here when int64
could overflow.  :func:`item_receipts` is the per-item primitive and always
runs exactly.
"""

from __future__ import annotations

from collections.abc import Collection, Mapping
from typing import TYPE_CHECKING, Hashable

from repro.exceptions import MissingNodeError, MissingSourceError
from repro.graphs.cgraph import CGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import PropagationBackend

Node = Hashable


def item_receipts(
    graph: CGraph,
    origin: Node,
    filters: Collection[Node] = (),
    *,
    _order: tuple[Node, ...] | None = None,
) -> dict[Node, int]:
    """Copies of a single item (generated at ``origin``) received per node.

    The origin's own receipt count is 0: in a DAG an item can never return
    to its generator.  Nodes unreachable from ``origin`` report 0.

    Parameters
    ----------
    graph:
        A DAG (raises :class:`~repro.exceptions.CyclicGraphError` otherwise).
    origin:
        The node generating the item.  It does not have to be a designated
        source of the graph — useful for what-if analyses.
    filters:
        Nodes equipped with deduplicating output filters.
    """
    if origin not in graph:
        raise MissingNodeError(origin)
    filter_set = filters if isinstance(filters, (set, frozenset)) else set(filters)
    order = _order if _order is not None else graph.topological_order()

    received: dict[Node, int] = dict.fromkeys(order, 0)
    for v in order:
        if v == origin:
            emit = 1
        else:
            count = received[v]
            if count == 0:
                continue
            emit = 1 if v in filter_set else count
        if emit:
            for child in graph.successors(v):
                received[child] += emit
    return received


def node_receipts(
    graph: CGraph,
    filters: Collection[Node] = (),
    *,
    items_per_source: int | Mapping[Node, int] = 1,
    backend: "str | PropagationBackend | None" = None,
) -> dict[Node, int]:
    """Total receipts per node, aggregated over all sources' items.

    Each source generates ``items_per_source`` distinct items (an int
    applies to every source; a mapping gives per-source counts).  Distinct
    items from the same source propagate identically, so their receipt
    counts are the single-item counts scaled — computed once and
    multiplied, exactly.

    ``backend`` selects the propagation backend (name, instance, or None
    for the registry default); every backend returns identical integers.
    """
    from repro.backends.registry import resolve_backend

    return resolve_backend(backend).node_receipts(
        graph, filters, items_per_source=items_per_source
    )


def node_receipts_exact(
    graph: CGraph,
    filters: Collection[Node] = (),
    *,
    items_per_source: int | Mapping[Node, int] = 1,
) -> dict[Node, int]:
    """:func:`node_receipts` via the exact big-int sweeps (the ``python``
    backend's implementation; fast backends fall back here on overflow)."""
    if not graph.sources:
        raise MissingSourceError("graph has no sources")
    order = graph.topological_order()
    totals: dict[Node, int] = dict.fromkeys(graph.nodes(), 0)
    for source in graph.sources:
        if isinstance(items_per_source, Mapping):
            weight = items_per_source.get(source, 0)
        else:
            weight = items_per_source
        if weight <= 0:
            continue
        per_item = item_receipts(graph, source, filters, _order=order)
        for node, count in per_item.items():
            if count:
                totals[node] += weight * count
    return totals


def total_receipts(
    graph: CGraph,
    filters: Collection[Node] = (),
    *,
    items_per_source: int | Mapping[Node, int] = 1,
    backend: "str | PropagationBackend | None" = None,
) -> int:
    """``Φ(A, V)``: the grand total number of received copies."""
    from repro.backends.registry import resolve_backend

    return resolve_backend(backend).total_receipts(
        graph, filters, items_per_source=items_per_source
    )


def item_emissions(
    graph: CGraph,
    origin: Node,
    filters: Collection[Node] = (),
) -> dict[Node, int]:
    """Copies each node emits *per outgoing edge* for one item.

    Mostly a white-box testing aid: ``received[child] = Σ emissions[parent]``
    must hold edge-wise, and a filter's emission is capped at one.
    """
    received = item_receipts(graph, origin, filters)
    filter_set = set(filters)
    emissions: dict[Node, int] = {}
    for v in graph.nodes():
        if v == origin:
            emissions[v] = 1
        elif received[v] == 0:
            emissions[v] = 0
        elif v in filter_set:
            emissions[v] = 1
        else:
            emissions[v] = received[v]
    return emissions
