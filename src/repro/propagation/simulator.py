"""A literal event-driven relay simulator.

Where :mod:`repro.propagation.engine` computes receipt counts analytically,
this module actually *plays out* the paper's propagation protocol, one copy
at a time: tokens carrying ``(item, copy)`` hop along edges; non-filter
nodes re-emit every token on every outgoing edge; filter nodes re-emit only
the first token of each item and swallow the rest.

It is the semantic ground truth the analytic engine and the impact formulas
are tested against, and — unlike the engine — it also handles *cyclic*
graphs whenever the filter set breaks every reachable cycle (each filter
forwards an item at most once, so propagation terminates; see
:func:`is_propagation_finite`).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Collection
from dataclasses import dataclass, field
from typing import Hashable

from repro.exceptions import (
    DivergentPropagationError,
    MissingNodeError,
    MissingSourceError,
)
from repro.graphs.cgraph import CGraph

Node = Hashable

#: Defensive bound on relay events; :func:`is_propagation_finite` should make
#: this unreachable, but simulations of adversarial inputs stay safe.
DEFAULT_MAX_EVENTS = 50_000_000


@dataclass
class PropagationTrace:
    """Everything a simulation run observed.

    Attributes
    ----------
    received:
        ``received[v]`` — total copies (over all items) delivered to ``v``.
    received_by_item:
        ``received_by_item[item][v]`` — per-item breakdown.
    events:
        Number of edge-relay events executed.
    suppressed:
        Copies swallowed by filters (received but not re-emitted), a direct
        measure of the redundancy the filter set removes in flight.
    """

    received: dict[Node, int] = field(default_factory=dict)
    received_by_item: dict[Hashable, dict[Node, int]] = field(
        default_factory=dict
    )
    events: int = 0
    suppressed: int = 0

    def total(self) -> int:
        """``Φ(A, V)`` as observed by the simulation."""
        return sum(self.received.values())


def is_propagation_finite(
    graph: CGraph,
    filters: Collection[Node] = (),
    origins: Collection[Node] | None = None,
) -> bool:
    """Would deterministic propagation terminate?

    Propagation diverges iff some directed cycle consisting entirely of
    non-filter nodes is reachable from an origin: copies multiply around it
    forever.  Every cycle that contains a filter is harmless because a
    filter re-emits each item at most once.

    This is exactly the structure Theorem 1's SetCover gadget exploits:
    asking for ``k`` filters that keep ``Φ`` finite is asking for ``k`` sets
    covering every element-cycle.
    """
    if origins is None:
        origins = graph.sources
    if not origins:
        raise MissingSourceError("no origins supplied and graph has no sources")
    filter_set = set(filters)

    # Restrict to nodes reachable from the origins, then test whether the
    # induced subgraph on *non-filter* reachable nodes is acyclic.
    reachable: set[Node] = set()
    stack = [o for o in origins]
    for o in stack:
        if o not in graph:
            raise MissingNodeError(o)
    reachable.update(stack)
    while stack:
        node = stack.pop()
        for child in graph.successors(node):
            if child not in reachable:
                reachable.add(child)
                stack.append(child)

    candidates = reachable - filter_set
    # Kahn's algorithm on the induced subgraph.
    indegree: dict[Node, int] = {}
    for v in candidates:
        indegree[v] = sum(1 for p in graph.predecessors(v) if p in candidates)
    queue = deque(v for v, d in indegree.items() if d == 0)
    seen = 0
    while queue:
        v = queue.popleft()
        seen += 1
        for child in graph.successors(v):
            if child in candidates:
                indegree[child] -= 1
                if indegree[child] == 0:
                    queue.append(child)
    return seen == len(candidates)


def simulate(
    graph: CGraph,
    filters: Collection[Node] = (),
    *,
    origins: Collection[Node] | None = None,
    max_events: int = DEFAULT_MAX_EVENTS,
    check_finiteness: bool = True,
) -> PropagationTrace:
    """Run the relay protocol to completion and return its trace.

    Parameters
    ----------
    graph:
        Any directed c-graph; cycles are fine as long as the filter set
        breaks them (checked up front unless ``check_finiteness=False``).
    filters:
        The deduplicating nodes.
    origins:
        Item-generating nodes; defaults to ``graph.sources``.  Each origin
        generates exactly one distinct item named after the origin.
    max_events:
        Hard safety bound on relay events.

    Raises
    ------
    DivergentPropagationError
        If propagation provably diverges (or exceeds ``max_events``).
    """
    if origins is None:
        origins = graph.sources
    if not origins:
        raise MissingSourceError("no origins supplied and graph has no sources")
    filter_set = set(filters)
    if check_finiteness and not is_propagation_finite(
        graph, filter_set, origins
    ):
        raise DivergentPropagationError(
            "a filter-free cycle is reachable from an origin"
        )

    trace = PropagationTrace(
        received={v: 0 for v in graph.nodes()},
    )

    for origin in origins:
        item = origin
        per_item: dict[Node, int] = {}
        trace.received_by_item[item] = per_item
        forwarded_by: set[Node] = set()

        # Each queue entry is (node, copies) — a batch of identical copies
        # of this item arriving at `node`.  Batching keeps the simulation
        # honest (counts are per-copy) while avoiding one Python object per
        # copy on high-multiplicity graphs.
        queue: deque[tuple[Node, int]] = deque()
        for child in graph.successors(origin):
            queue.append((child, 1))

        while queue:
            node, copies = queue.popleft()
            trace.events += 1
            if trace.events > max_events:
                raise DivergentPropagationError(steps=trace.events)
            per_item[node] = per_item.get(node, 0) + copies
            trace.received[node] += copies
            if node in filter_set:
                if node in forwarded_by:
                    trace.suppressed += copies
                    continue
                forwarded_by.add(node)
                trace.suppressed += copies - 1
                emit = 1
            else:
                emit = copies
            for child in graph.successors(node):
                queue.append((child, emit))

    return trace
