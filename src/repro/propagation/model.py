"""The propagation-model axis: ``deterministic | live-edge | per-copy``.

The paper presents deterministic relaying "for ease of presentation" and
notes (§3) that the theory and experiments carry over when links relay
probabilistically.  This module makes that a first-class *axis* of every
placement request — alongside the algorithm, strategy and backend axes —
instead of an isolated analysis module:

* ``deterministic`` — every edge always relays.  The zero-cost default:
  a request under this model (or under ``p ≡ 1`` probabilities, which is
  the same thing) takes exactly the pre-existing exact integer paths and
  produces bit-identical placements.
* ``live-edge`` — each edge flips one coin per item world; if live, every
  copy crosses it (the independent-cascade convention of Kempe et al.).
* ``per-copy`` — every individual copy flips its own coin on each edge.

Both probabilistic mechanisms share the same *expected* filter-free flow
(linearity of expectation over path indicators), and the optimizers score
both through the same *sample-average approximation* (SAA): a fixed set of
``trials`` live-edge worlds is sampled once from ``seed`` and reused for
**every** gain evaluation of a run (common random numbers).  Each world's
objective is monotone submodular — it is the deterministic objective on a
subgraph — so the sample-average objective is too, which is exactly what
keeps CELF's stale-gain upper-bound argument valid under SAA
(:mod:`repro.propagation.sampling` holds the worlds; the backends evaluate
them).

A :class:`PropagationModel` is the resolved spec the layers thread around:
``(mechanism, probabilities, trials, seed)``.  ``deterministic`` is
represented by ``None`` — the absence of a model — so every pre-existing
code path stays untouched unless a model is actually in play;
:func:`build_model` normalizes names (and unit probabilities) to that
fast path.  :func:`use_model` scopes a default the same way
:func:`repro.backends.registry.use_backend` and
:func:`repro.core.registry.use_strategy` do, which is how the model
reaches the experiment drivers without threading a parameter through
every figure.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Hashable

from repro.exceptions import ParameterError
from repro.scoping import ScopedDefault

Node = Hashable
Edge = tuple[Node, Node]

#: Every value accepted on the model axis (CLI ``--model``, service
#: ``"model"`` field, bench scenarios).
MODEL_NAMES: tuple[str, ...] = ("deterministic", "live-edge", "per-copy")

#: The genuinely random mechanisms (everything except ``deterministic``).
MECHANISM_NAMES: tuple[str, ...] = ("live-edge", "per-copy")

#: Default Monte-Carlo sample count when a probabilistic model is
#: requested without an explicit ``trials``.
DEFAULT_TRIALS = 64


def _check_probability(p: float) -> float:
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"edge probability {p!r} outside [0, 1]")
    return p


@dataclass(frozen=True, eq=False)
class PropagationModel:
    """A resolved probabilistic relaying spec.

    Parameters
    ----------
    mechanism:
        ``"live-edge"`` or ``"per-copy"``.  Deterministic relaying is the
        *absence* of a model (``None``), never an instance.
    probabilities:
        A single float applied to every edge, or a mapping from ``(u, v)``
        edges to floats.  Values must lie in ``[0, 1]``; edges missing
        from a mapping default to 1 (deterministic relay).  Edge
        *membership* is validated when the model is bound to a graph
        (:meth:`repro.graphs.compiled.CompiledGraph.edge_probabilities`),
        the point where a graph first exists to validate against.
    trials:
        Number of sampled worlds the SAA objective averages over.
    seed:
        Seed of the world sampler.  Worlds are a pure function of
        ``(graph, probabilities, trials, seed)`` — same seed, same worlds,
        byte-reproducible results on every backend.
    """

    mechanism: str
    probabilities: "float | Mapping[Edge, float]" = 1.0
    trials: int = DEFAULT_TRIALS
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mechanism not in MECHANISM_NAMES:
            known = ", ".join(MECHANISM_NAMES)
            raise ParameterError(
                f"unknown mechanism {self.mechanism!r}; "
                f"known mechanisms: {known}"
            )
        if not isinstance(self.trials, int) or self.trials <= 0:
            raise ParameterError("trials must be a positive integer")
        if isinstance(self.probabilities, Mapping):
            for p in self.probabilities.values():
                _check_probability(p)
        else:
            _check_probability(self.probabilities)

    @property
    def is_unit(self) -> bool:
        """True when every edge relays with probability exactly 1.

        A unit model *is* deterministic relaying; :func:`build_model`
        collapses it to ``None`` so it rides the exact fast path.
        """
        if isinstance(self.probabilities, Mapping):
            return all(float(p) >= 1.0 for p in self.probabilities.values())
        return float(self.probabilities) >= 1.0

    def probabilities_key(self) -> "tuple[Any, ...]":
        """A hashable canonical key of the probability spec.

        ``repr`` keeps the int/string node distinction, mirroring the
        service digest convention.
        """
        if isinstance(self.probabilities, Mapping):
            return (
                "map",
                tuple(
                    sorted(
                        ((repr(u), repr(v)), float(p))
                        for (u, v), p in self.probabilities.items()
                    )
                ),
            )
        return ("uniform", float(self.probabilities))

    def worlds_key(self) -> "tuple[Any, ...]":
        """Cache key of the sampled worlds this model induces.

        Deliberately excludes ``mechanism``: both mechanisms are scored
        through the same live-edge SAA coupling, so they share worlds.
        """
        return (self.trials, self.seed, self.probabilities_key())

    def describe(self) -> dict[str, Any]:
        """JSON-compatible summary for payloads and bench records."""
        if isinstance(self.probabilities, Mapping):
            edge_prob: Any = f"per-edge({len(self.probabilities)})"
        else:
            edge_prob = float(self.probabilities)
        return {
            "name": self.mechanism,
            "edge_prob": edge_prob,
            "trials": self.trials,
            "seed": self.seed,
        }


def build_model(
    name: str,
    *,
    edge_prob: "float | Mapping[Edge, float]" = 1.0,
    trials: int = DEFAULT_TRIALS,
    seed: int = 0,
) -> PropagationModel | None:
    """Normalize a model-axis request to its resolved form.

    ``"deterministic"`` — and any probabilistic name whose probabilities
    are identically 1 — resolves to ``None``: the zero-cost exact path,
    bit-identical to a request that never mentioned a model at all.
    """
    if name not in MODEL_NAMES:
        known = ", ".join(MODEL_NAMES)
        raise ParameterError(
            f"unknown propagation model {name!r}; known models: {known}"
        )
    if name == "deterministic":
        return None
    model = PropagationModel(
        mechanism=name, probabilities=edge_prob, trials=trials, seed=seed
    )
    if model.is_unit:
        return None
    return model


# Scoped like the backend/strategy defaults: per-thread, so the service's
# concurrent jobs and nested experiment drivers cannot leak a model into
# each other's evaluations.
_default_model: ScopedDefault[PropagationModel | None] = ScopedDefault(None)


def get_default_model() -> PropagationModel | None:
    """The model used when an algorithm has none pinned (None = exact)."""
    return _default_model.get()


def set_default_model(model: PropagationModel | None) -> None:
    """Set the process-wide default propagation model."""
    _check_model_spec(model)
    _default_model.set_global(model)


def _check_model_spec(model: PropagationModel | None) -> None:
    if model is not None and not isinstance(model, PropagationModel):
        raise ParameterError(
            "model must be a PropagationModel instance or None; "
            "use build_model() to construct one from a name"
        )


@contextmanager
def use_model(
    model: PropagationModel | None,
) -> Iterator[PropagationModel | None]:
    """Scope the default propagation model to a ``with`` block (per-thread).

    This is how ``--model`` reaches the experiment drivers and the bench
    harness without threading a parameter through every figure function —
    the exact pattern of :func:`repro.core.registry.use_strategy`.
    """
    _check_model_spec(model)
    with _default_model.scoped(model):
        yield model


def resolve_model(
    spec: PropagationModel | None,
) -> PropagationModel | None:
    """Resolve an algorithm's pinned model (None = the scoped default)."""
    if spec is None:
        return _default_model.get()
    _check_model_spec(spec)
    return spec
