"""The blocked out-of-core reachability warm (the ``nreach`` builder).

``nreach[v] = #{s : ψ_s(v) > 0}`` is the per-graph constant every
aggregate gain formula consumes (see
:func:`repro.propagation.engine.aggregate_receipts_ids`).  PR 7/8 built
it by materializing the full n×S source-reachability bitset matrix —
O(n·S/8) bytes resident, which at S ≈ 0.3n is the superquadratic warm
wall the scale tier hit (3.4s at n=10^4 → 265s at 5·10^4,
non-terminating at 10^5).

This module replaces that with a **blocked sweep**: sources are iterated
in blocks of B lanes, each block runs the level-synchronous OR
recurrence ``B(v) = own(v) | OR_{p ∈ pred(v)} B(p)`` restricted to its
own lanes, popcounts into an int64 accumulator, and drops its lanes
before the next block starts.  Resident memory is O(n·B/8) — block
size, not source count — and because the blocks partition the source
set, the popcount sums are *exact integer addition*: the result is
bit-identical to the monolithic build for every block size, worker
count, and reduce order.

Two sweep engines, one contract:

* **NumPy plane** — a ``(B/64, n)`` uint64 plane swept with
  ``np.bitwise_or.reduceat`` over per-level in-CSR gathers (built once
  per call, shared by every block).  The fast path whenever NumPy is
  importable.
* **Pure python** — :func:`repro.graphs.compiled.blocked_reach_counts`:
  the same windows as B-bit python ints, dependency-free.

Independent blocks also shard over the cached ProcessPoolExecutor from
:mod:`repro.propagation.parallel`: each worker sweeps one contiguous
source range and returns raw popcount sums, the parent adds the int64
vectors elementwise and applies the source-mark correction once.  The
reduce is associative-commutative integer addition, so any worker count
or completion order produces the identical counts.

Knobs ride the same :class:`~repro.scoping.ScopedDefault` pattern as the
world-worker count — one process-wide default, thread-scoped overrides —
wired to the CLI's ``--reach-block`` / ``--warm-workers`` flags.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any

from repro.exceptions import ParameterError, ReproError
from repro.graphs.compiled import DEFAULT_REACH_BLOCK, blocked_reach_counts
from repro.scoping import ScopedDefault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graphs.compiled import CompiledGraph

#: Below this many sources the process pool is never engaged: worker
#: dispatch ships the in-CSR tables, and a sweep this small finishes
#: before the payloads would even unpickle.
MIN_SOURCES_FOR_POOL = 512


class ReachShardError(ReproError):
    """A blocked-warm worker shard failed; carries the failure's text."""


# Per-thread scoping, like the backend/model/world-worker defaults: the
# service's concurrent jobs must not inherit each other's knobs.
_block: ScopedDefault[int] = ScopedDefault(DEFAULT_REACH_BLOCK)
_warm_workers: ScopedDefault[int] = ScopedDefault(1)


def _check_block(block: int) -> int:
    if not isinstance(block, int) or isinstance(block, bool):
        raise ParameterError("reach block size must be an integer")
    if block < 1:
        raise ParameterError("reach block size must be positive")
    return block


def _check_workers(workers: int) -> int:
    if not isinstance(workers, int) or isinstance(workers, bool):
        raise ParameterError("warm workers must be an integer")
    if workers < 1:
        raise ParameterError("warm workers must be positive")
    return workers


def active_reach_block() -> int:
    """The effective source-block size for the calling thread."""
    return _block.get()


def active_warm_workers() -> int:
    """The effective warm-worker count for the calling thread."""
    return _warm_workers.get()


def set_reach_block(block: int) -> None:
    """Set the process-wide blocked-sweep source block size."""
    _block.set_global(_check_block(block))


def set_warm_workers(workers: int) -> None:
    """Set the process-wide warm-worker count (1 = serial)."""
    _warm_workers.set_global(_check_workers(workers))


@contextmanager
def use_reach_block(block: int) -> Iterator[int]:
    """Scope the source block size for a ``with`` block (this thread)."""
    with _block.scoped(_check_block(block)) as value:
        yield value


@contextmanager
def use_warm_workers(workers: int) -> Iterator[int]:
    """Scope the warm-worker count for a ``with`` block (this thread)."""
    with _warm_workers.scoped(_check_workers(workers)) as value:
        yield value


def _numpy_or_none():
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is present in CI
        return None
    return np


def warm_reach_counts(
    compiled: "CompiledGraph",
    *,
    block: int | None = None,
    workers: int | None = None,
) -> list:
    """Build (and cache) ``compiled``'s reach counts via the blocked sweep.

    The single entry point both backends' ``warm()`` paths, the bitpack
    ``_nreach`` build, and the service GraphStore route through.  Cached
    on the compiled graph — the same slot ``.fpc`` persistence
    (:func:`repro.graphs.largescale.save_compiled` /
    ``load_compiled``) round-trips, so a memory-mapped restart skips the
    sweep entirely.

    ``block``/``workers`` default to the thread's scoped knobs
    (:func:`use_reach_block` / :func:`use_warm_workers`).  Results are
    bit-identical across every (engine, block, workers) combination.
    """
    cached = compiled._reach_counts
    if cached is not None:
        return cached
    block = _check_block(active_reach_block() if block is None else block)
    workers = _check_workers(
        active_warm_workers() if workers is None else workers
    )
    from repro.obs.metrics import REGISTRY
    from repro.obs.trace import span

    num_sources = len(compiled.source_ids)
    started = time.perf_counter()
    with span(
        "warm.reach",
        n=compiled.n,
        sources=num_sources,
        block=block,
        workers=workers,
    ):
        np = _numpy_or_none()
        if np is None:
            counts = blocked_reach_counts(compiled, block)
        elif (
            workers > 1
            and num_sources >= MIN_SOURCES_FOR_POOL
            and num_sources > block
        ):
            counts = _sharded_reach_counts(np, compiled, block, workers)
        else:
            raw = _plane_sweep_counts(
                np,
                compiled.n,
                _as_int64(np, compiled.in_offsets),
                _as_int64(np, compiled.in_sources),
                _as_int64(np, compiled.topo_order),
                list(compiled.level_offsets),
                _as_int64(np, compiled.source_ids),
                block,
            )
            counts = _subtract_mark(np, raw, compiled).tolist()
    REGISTRY.counter(
        "fp_warm_reach_blocks_total",
        "Source blocks swept by the blocked reachability warm.",
    ).inc(max(1, -(-num_sources // block)) if num_sources else 0)
    REGISTRY.histogram(
        "fp_warm_seconds",
        "Seconds spent warming per-graph reachability counts.",
    ).observe(time.perf_counter() - started)
    compiled._reach_counts = counts
    return counts


def _as_int64(np, table) -> Any:
    """One contiguous int64 view/copy of a CSR table (list or ndarray)."""
    return np.ascontiguousarray(np.asarray(table, dtype=np.int64))


def _subtract_mark(np, counts, compiled: "CompiledGraph"):
    """Remove each source's own lane bit (``ψ_s(s) = 0`` in a DAG)."""
    if compiled.source_ids:
        counts[np.asarray(compiled.source_ids, dtype=np.intp)] -= 1
    return counts


def _multi_arange(np, starts, lengths):
    """Concatenate ``arange(start, start+length)`` runs, vectorized."""
    keep = lengths > 0
    starts, lengths = starts[keep], lengths[keep]
    if starts.size == 0:
        return np.empty(0, dtype=np.intp)
    steps = np.ones(int(lengths.sum()), dtype=np.intp)
    steps[0] = starts[0]
    run_ends = np.cumsum(lengths)[:-1]
    steps[run_ends] = starts[1:] - (starts[:-1] + lengths[:-1]) + 1
    return np.cumsum(steps)


def _level_gathers(np, n, in_offsets, in_sources, topo, level_offsets):
    """Per-level in-CSR gather tables, built once and shared by blocks.

    For each level L ≥ 1: the level's nodes, the concatenated
    predecessors of those nodes (in-CSR order), and the ``reduceat``
    segment starts.  Every level-L≥1 node has in-degree ≥ 1 (its depth
    is a longest path), so segments are non-empty — ``reduceat``-safe —
    but zero-degree nodes are filtered defensively anyway.
    """
    gathers = []
    for lvl in range(1, len(level_offsets) - 1):
        nodes = topo[level_offsets[lvl]:level_offsets[lvl + 1]]
        counts = in_offsets[nodes + 1] - in_offsets[nodes]
        has = counts > 0
        if not has.all():
            nodes, counts = nodes[has], counts[has]
        if not nodes.size:
            continue
        parents = in_sources[_multi_arange(np, in_offsets[nodes], counts)]
        seg_starts = np.concatenate(
            ([0], np.cumsum(counts)[:-1])
        ).astype(np.intp)
        gathers.append((nodes.astype(np.intp), parents.astype(np.intp),
                        seg_starts))
    return gathers


def _popcount_columns(np, packed):
    """Per-column popcount totals of a ``(lanes, n)`` uint64 plane."""
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0
        return np.bitwise_count(packed).sum(axis=0, dtype=np.int64)
    bits = np.unpackbits(packed.view(np.uint8), axis=1)
    return bits.reshape(packed.shape[0], -1, 64).sum(
        axis=(0, 2), dtype=np.int64
    )


def _plane_sweep_counts(
    np,
    n: int,
    in_offsets,
    in_sources,
    topo,
    level_offsets,
    sources,
    block: int,
):
    """Raw blocked popcount sums (source mark **not** subtracted).

    The engine both the serial path and the shard workers run: one
    ``(lanes, n)`` uint64 plane per source block, swept level by level
    with ``bitwise_or.reduceat`` over the shared in-CSR gathers, then
    popcounted into the int64 accumulator and dropped.
    """
    counts = np.zeros(n, dtype=np.int64)
    num_sources = int(sources.size)
    if not num_sources or not n:
        return counts
    gathers = _level_gathers(
        np, n, in_offsets, in_sources, topo, level_offsets
    )
    src = sources.astype(np.intp)
    for start in range(0, num_sources, block):
        chunk = src[start:start + block]
        width = int(chunk.size)
        lanes = (width + 63) // 64
        plane = np.zeros((lanes, n), dtype=np.uint64)
        rows = np.arange(width, dtype=np.uint64)
        plane[(rows >> np.uint64(6)).astype(np.intp), chunk] = (
            np.uint64(1) << (rows & np.uint64(63))
        )
        for nodes, parents, seg_starts in gathers:
            plane[:, nodes] |= np.bitwise_or.reduceat(
                plane[:, parents], seg_starts, axis=1
            )
        counts += _popcount_columns(np, plane)
    return counts


# ----------------------------------------------------------------------
# Process-parallel sharding (contiguous source ranges, exact reduce)
# ----------------------------------------------------------------------


def _reach_shard_worker(payload: tuple) -> bytes:
    """Sweep one contiguous source range in a worker process.

    ``payload`` ships the raw in-CSR and topo tables as native-endian
    int64 bytes — *not* a :func:`~repro.propagation.parallel.graph_spec`,
    which would materialize every edge as a python tuple and defeat the
    streamed tiers.  Returns the shard's raw popcount sums as int64
    bytes; the parent owns the source-mark correction.
    """
    (n, in_off_b, in_src_b, topo_b, level_offsets, src_b, lo, hi,
     block) = payload
    import numpy as np

    in_offsets = np.frombuffer(in_off_b, dtype=np.int64)
    in_sources = np.frombuffer(in_src_b, dtype=np.int64)
    topo = np.frombuffer(topo_b, dtype=np.int64)
    sources = np.frombuffer(src_b, dtype=np.int64)[lo:hi]
    counts = _plane_sweep_counts(
        np, n, in_offsets, in_sources, topo, level_offsets, sources, block
    )
    return counts.tobytes()


def _sharded_reach_counts(
    np, compiled: "CompiledGraph", block: int, workers: int
) -> list:
    """Shard contiguous source ranges over the cached process pool.

    Each worker returns an independent int64 popcount vector; the parent
    sums them elementwise (exact integer addition — any worker count or
    completion order yields bit-identical totals) and subtracts the
    source mark exactly once.
    """
    from repro.propagation.parallel import (
        _drop_pool,
        _get_pool,
        shard_ranges,
    )

    n = compiled.n
    src = _as_int64(np, compiled.source_ids)
    tables = (
        n,
        _as_int64(np, compiled.in_offsets).tobytes(),
        _as_int64(np, compiled.in_sources).tobytes(),
        _as_int64(np, compiled.topo_order).tobytes(),
        list(compiled.level_offsets),
        src.tobytes(),
    )
    ranges = shard_ranges(len(compiled.source_ids), workers)
    payloads = [tables + (lo, hi, block) for lo, hi in ranges]
    pool = _get_pool(workers)
    try:
        futures = [pool.submit(_reach_shard_worker, p) for p in payloads]
        shards = [f.result() for f in futures]
    except Exception as exc:
        # BrokenProcessPool (a died worker) poisons the pool; plain
        # worker exceptions do not, but dropping is always safe.
        _drop_pool(workers)
        raise ReachShardError(
            f"blocked warm shard failed ({workers} workers): "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    counts = np.zeros(n, dtype=np.int64)
    for shard in shards:
        counts += np.frombuffer(shard, dtype=np.int64)
    return _subtract_mark(np, counts, compiled).tolist()
