"""Sampled live-edge worlds over the compiled CSR — the SAA substrate.

One :class:`SampledWorlds` holds the ``trials`` live-edge coin flips a
probabilistic placement run averages over.  Three properties carry the
whole design:

* **No per-trial graph rebuilds.**  A world is a 0/1 mask over the
  compiled forward-CSR edge positions (one ``bytearray`` per trial) plus
  a lazily derived *pruned adjacency* (``pred``/``succ`` id tuples over
  the same interned ids).  The full graph's cached topological order and
  level partition remain valid on every edge subset — every edge still
  crosses strictly upward in depth — so all existing sweeps run unchanged
  on a world.
* **Common random numbers.**  Worlds are sampled *once* per
  ``(graph, probabilities, trials, seed)`` and reused for every gain
  evaluation of a run (cached here, weak-keyed by graph).  Under a fixed
  set of worlds the sample-average objective
  ``F̂(A) = (1/T) Σ_t F_t(A)`` is an average of deterministic objectives
  on subgraphs — monotone and submodular — so CELF's stale-gain
  upper-bound argument holds *exactly*, not just in expectation.  Fresh
  coins per evaluation would break it.
* **Backend-independent sampling.**  Masks come from one pure-Python
  ``random.Random(seed)`` pass in canonical forward-CSR edge order, so the
  python and numpy backends — and environments without NumPy — see the
  *same* worlds: SAA placements are identical across backends, and the
  equivalence tests can assert so bitwise.

The module also hosts the pure-Python sampled evaluations (the ``python``
backend's implementation and every backend's overflow fallback): per
world, the usual exact id sweeps over the pruned adjacency.  All sampled
quantities are **summed over trials as exact integers** — the mean is
taken only at reporting boundaries — so argmax/tie-break behaviour is
bit-identical everywhere and byte-reproducible for a fixed seed.
"""

from __future__ import annotations

import random
import weakref
from collections import OrderedDict
from time import perf_counter
from collections.abc import Collection, Iterable
from typing import TYPE_CHECKING, Hashable

from repro.exceptions import MissingSourceError
from repro.graphs.cgraph import CGraph
from repro.propagation.model import PropagationModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graphs.compiled import CompiledGraph

Node = Hashable


class SampledWorlds:
    """``trials`` live-edge worlds for one graph and probability spec.

    Construction samples the masks; the pruned per-world adjacency (what
    the pure-Python sweeps consume) and the stacked mask bytes (what the
    NumPy backend converts to an array once) are derived lazily and
    cached, so each representation is paid for only by the backend that
    uses it.
    """

    def __init__(self, graph: CGraph, model: PropagationModel) -> None:
        compiled = graph.compiled()
        compiled.topo_order  # DAG check up front, like every consumer
        probs = compiled.edge_probabilities(
            model.probabilities, key=model.probabilities_key()
        )
        self.compiled: "CompiledGraph" = compiled
        self.probs = probs
        self.trials = model.trials
        self.seed = model.seed

        rng = random.Random(model.seed)
        r = rng.random
        out_probs = probs.out_probs
        # One coin per (trial, edge) in canonical forward-CSR order —
        # the whole identity of a world, identical on every backend.
        self.masks: list[bytearray] = [
            bytearray(r() < p for p in out_probs)
            for _ in range(model.trials)
        ]
        self._adjacency: list[
            tuple[tuple[tuple[int, ...], ...], tuple[tuple[int, ...], ...]]
            | None
        ] = [None] * model.trials
        self._reach_counts: list[list[int] | None] = [None] * model.trials

    def adjacency(
        self, trial: int
    ) -> tuple[tuple[tuple[int, ...], ...], tuple[tuple[int, ...], ...]]:
        """``(pred_ids, succ_ids)`` of one world — pruned, cached.

        Built by replaying the forward-CSR scan against the trial's mask;
        after the first evaluation every later sweep of the run reuses
        the tuples (this is what replaced the per-trial ``CGraph``
        rebuild, which re-validated edges and re-derived sources on every
        single trial).
        """
        cached = self._adjacency[trial]
        if cached is not None:
            return cached
        compiled = self.compiled
        mask = self.masks[trial]
        pred_lists: list[list[int]] = [[] for _ in range(compiled.n)]
        succ_t: list[tuple[int, ...]] = []
        pos = 0
        for children in compiled.succ_ids:
            live: list[int] = []
            for c in children:
                if mask[pos]:
                    live.append(c)
                    pred_lists[c].append(len(succ_t))
                pos += 1
            succ_t.append(tuple(live))
        # pred_lists appended parent ids as the scan met them (ascending
        # u), matching the full graph's reverse-CSR convention.
        result = (
            tuple(tuple(ps) for ps in pred_lists),
            tuple(succ_t),
        )
        self._adjacency[trial] = result
        return result

    def reach_counts(self, trial: int) -> list[int]:
        """``nreach_t[v]``: sources reaching ``v`` in one world (cached).

        The per-world analogue of
        :meth:`~repro.graphs.compiled.CompiledGraph.reach_counts`, via
        the same bit-packed sweep over the world's pruned adjacency.
        Filter-independent within the world, so one sweep serves every
        gain evaluation of a run — the aggregate sampled sweeps' cached
        leg.
        """
        cached = self._reach_counts[trial]
        if cached is None:
            from repro.graphs.compiled import packed_reach_counts

            pred_t, _ = self.adjacency(trial)
            cached = packed_reach_counts(self.compiled, pred_t)
            self._reach_counts[trial] = cached
        return cached

    def mask_bytes(self) -> bytes:
        """All masks concatenated, trial-major — ``(trials · m)`` bytes.

        The NumPy backend reshapes this to its ``(trials, m)`` live
        matrix in one ``frombuffer`` call.
        """
        return b"".join(bytes(m) for m in self.masks)


# Weak-keyed so worlds die with their graphs; the inner mapping is keyed
# by the model's worlds_key() (mechanism-independent: both mechanisms
# score through the same live-edge SAA coupling) and LRU-bounded — in a
# long-lived service the (trials, seed) axis is client-controlled, and
# without a bound every fresh seed would pin another world set (masks
# plus pruned adjacency, megabytes each) for the graph's lifetime.
_worlds_cache: "weakref.WeakKeyDictionary[CGraph, OrderedDict]" = (
    weakref.WeakKeyDictionary()
)

#: Most world sets kept per resident graph (LRU beyond this).
MAX_WORLD_SETS_PER_GRAPH = 8


def get_worlds(graph: CGraph, model: PropagationModel) -> SampledWorlds:
    """The (cached) sampled worlds of ``graph`` under ``model``.

    Common-random-numbers contract: every evaluation of a run — eager
    sweeps, CELF session updates, objective scoring — receives the same
    worlds, so SAA gains are consistent and CELF's upper bounds are
    exact.  Eviction cannot break that: worlds are a pure function of
    ``(graph, probabilities, trials, seed)`` (the sampler is seeded and
    dependency-free), so a rebuilt set is bit-identical to the evicted
    one — the bound trades only rebuild time, never results.
    """
    from repro.obs.metrics import REGISTRY
    from repro.obs.trace import span

    cache_counter = REGISTRY.counter(
        "fp_sampling_world_cache_total",
        "Sampled-world cache lookups by outcome.",
        labels=("outcome",),
    )
    per_graph = _worlds_cache.get(graph)
    if per_graph is None:
        per_graph = _worlds_cache.setdefault(graph, OrderedDict())
    key = model.worlds_key()
    worlds = per_graph.get(key)
    if worlds is None:
        cache_counter.inc(outcome="miss")
        start = perf_counter()
        with span(
            "sampling.build_worlds", trials=model.trials, seed=model.seed
        ):
            worlds = SampledWorlds(graph, model)
        elapsed = perf_counter() - start
        REGISTRY.counter(
            "fp_sampling_worlds_built_total",
            "Sampled world sets constructed (cache misses that built).",
        ).inc()
        REGISTRY.histogram(
            "fp_sampling_world_build_seconds",
            "Wall-clock seconds spent sampling a world set.",
        ).observe(elapsed)
        per_graph[key] = worlds
        while len(per_graph) > MAX_WORLD_SETS_PER_GRAPH:
            per_graph.popitem(last=False)
    else:
        cache_counter.inc(outcome="hit")
        per_graph.move_to_end(key)
    return worlds


# ----------------------------------------------------------------------
# Pure-Python sampled evaluations (the exact/fallback implementations)
# ----------------------------------------------------------------------
#
# Every function below takes the same two extra axes:
#
# * ``tier`` — "bitpack" (default) runs the aggregate two-sweeps-per-
#   world formulation (one cached reachability sweep per world, then
#   T + W per evaluation); "lanes" runs the historical one-ψ-sweep-per-
#   source loop.  Bit-identical by contract.
# * ``trial_range`` — evaluate only worlds ``[lo, hi)``.  ``None`` means
#   all worlds *and* makes the call eligible for process-pool sharding
#   (:mod:`repro.propagation.parallel`): with the pool armed and enough
#   worlds, the call fans out to workers that each re-sample the same
#   seeded worlds and evaluate an explicit sub-range; the integer reduce
#   is bit-identical to this serial loop.


def _resolve_trials(
    worlds: SampledWorlds, trial_range: "tuple[int, int] | None"
) -> range:
    if trial_range is None:
        return range(worlds.trials)
    lo, hi = trial_range
    if not 0 <= lo <= hi <= worlds.trials:
        from repro.exceptions import ParameterError

        raise ParameterError(
            f"trial range [{lo}, {hi}) outside [0, {worlds.trials})"
        )
    return range(lo, hi)


def sampled_marginal_gains_ids_exact(
    graph: CGraph,
    filter_ids: Iterable[int] = (),
    *,
    model: PropagationModel,
    tier: str = "bitpack",
    trial_range: "tuple[int, int] | None" = None,
) -> list[int]:
    """``Σ_t I_t(v | A)`` over interned ids — exact big-int SAA gains.

    Per world: one ``W`` pass plus one aggregate ``T`` pass (bitpack) or
    one ``ψ`` pass per source (lanes), on the world's pruned adjacency.
    Summed (not averaged) so ties and argmax compare on exact integers;
    divide by ``model.trials`` for the mean.
    """
    from repro.core.impact import absorbing_suffix_ids
    from repro.propagation import parallel
    from repro.propagation.engine import (
        aggregate_receipts_ids,
        item_receipts_ids,
    )

    if not graph.sources:
        raise MissingSourceError("graph has no sources")
    compiled = graph.compiled()
    filter_ids = list(filter_ids)
    mask = compiled.filter_mask(filter_ids)
    worlds = get_worlds(graph, model)
    if parallel.should_shard(worlds.trials, trial_range):
        return parallel.evaluate_sharded(
            "marginal_gains", graph, filter_ids, model, tier
        )
    gains = [0] * compiled.n
    for trial in _resolve_trials(worlds, trial_range):
        pred_t, succ_t = worlds.adjacency(trial)
        w = absorbing_suffix_ids(compiled, mask, succ_t)
        if tier == "bitpack":
            nreach_t = worlds.reach_counts(trial)
            totals = aggregate_receipts_ids(compiled, mask, nreach_t, pred_t)
            for v in range(compiled.n):
                if mask[v]:
                    continue
                excess = totals[v] - nreach_t[v]
                if excess:
                    wv = w[v]
                    if wv:
                        gains[v] += excess * wv
        else:
            for origin_id in compiled.source_ids:
                psi = item_receipts_ids(compiled, origin_id, mask, pred_t)
                for v, count in enumerate(psi):
                    if count > 1 and not mask[v]:
                        wv = w[v]
                        if wv:
                            gains[v] += (count - 1) * wv
    return gains


def sampled_simplified_impacts_ids_exact(
    graph: CGraph,
    filter_ids: Iterable[int] = (),
    *,
    model: PropagationModel,
    tier: str = "bitpack",
    trial_range: "tuple[int, int] | None" = None,
) -> list[int]:
    """``Σ_t ψ_t(v) · dout_t(v)`` over interned ids (``Greedy_L``'s SAA
    score; ``dout_t`` counts the world's *live* out-edges)."""
    from repro.propagation import parallel
    from repro.propagation.engine import (
        aggregate_receipts_ids,
        item_receipts_ids,
    )

    compiled = graph.compiled()
    filter_ids = list(filter_ids)
    mask = compiled.filter_mask(filter_ids)
    worlds = get_worlds(graph, model)
    if parallel.should_shard(worlds.trials, trial_range):
        return parallel.evaluate_sharded(
            "simplified_impacts", graph, filter_ids, model, tier
        )
    scores = [0] * compiled.n
    for trial in _resolve_trials(worlds, trial_range):
        pred_t, succ_t = worlds.adjacency(trial)
        if tier == "bitpack":
            totals = aggregate_receipts_ids(
                compiled, mask, worlds.reach_counts(trial), pred_t
            )
        else:
            totals = [0] * compiled.n
            for origin_id in compiled.source_ids:
                psi = item_receipts_ids(compiled, origin_id, mask, pred_t)
                for v, count in enumerate(psi):
                    if count:
                        totals[v] += count
        for v, total in enumerate(totals):
            if total:
                scores[v] += total * len(succ_t[v])
    return scores


def sampled_total_receipts_exact(
    graph: CGraph,
    filters: Collection[Node] = (),
    *,
    model: PropagationModel,
    tier: str = "bitpack",
    trial_range: "tuple[int, int] | None" = None,
) -> int:
    """``Σ_t Φ_t(A, V)`` — the summed-over-worlds objective raw material.

    Exact integer; ``/ model.trials`` is the SAA estimate of
    ``E[Φ(A, V)]`` under live-edge relaying.
    """
    from repro.graphs.validation import validate_filter_set
    from repro.propagation import parallel
    from repro.propagation.engine import (
        aggregate_receipts_ids,
        item_receipts_ids,
    )

    if not graph.sources:
        raise MissingSourceError("graph has no sources")
    validate_filter_set(graph, set(filters))
    compiled = graph.compiled()
    filter_ids = compiled.to_ids(filters)
    mask = compiled.filter_mask(filter_ids)
    worlds = get_worlds(graph, model)
    if parallel.should_shard(worlds.trials, trial_range):
        return parallel.evaluate_sharded(
            "total_receipts", graph, filter_ids, model, tier
        )
    total = 0
    for trial in _resolve_trials(worlds, trial_range):
        pred_t, _ = worlds.adjacency(trial)
        if tier == "bitpack":
            total += sum(
                aggregate_receipts_ids(
                    compiled, mask, worlds.reach_counts(trial), pred_t
                )
            )
        else:
            for origin_id in compiled.source_ids:
                total += sum(
                    item_receipts_ids(compiled, origin_id, mask, pred_t)
                )
    return total
