"""Probabilistic relaying — the extension sketched in Section 3.

The paper adopts deterministic relaying "for ease of presentation" and
notes that both the theory and the experiments carry over when links relay
probabilistically.  This module holds the *estimation* surface of the
probabilistic layer — the model-axis spec itself lives in
:mod:`repro.propagation.model` and the placement-side SAA evaluation in
:mod:`repro.propagation.sampling` / the backends.  Two standard
mechanisms:

* ``live-edge``: each edge flips one coin per item world; if live, every
  copy of that item crosses it.  This matches the independent-cascade
  convention in the influence-maximization literature the paper cites
  (Kempe et al.).
* ``per-copy``: every individual copy flips its own coin on every edge —
  the "tendency of a node to propagate messages" reading.

Without filters both models have the same *expected* receipt counts (by
linearity of expectation over path indicators), computable exactly in one
topological pass.  With filters the expectation is no longer linear — a
filter's emission is ``min(ψ, 1)`` — so ``E[Φ(A, V)]`` is estimated by
seeded Monte-Carlo simulation.  Live-edge trials run as exact id sweeps
over pre-sampled worlds (:class:`~repro.propagation.sampling.SampledWorlds`
— masks over the compiled CSR, *no* per-trial graph rebuilds); per-copy
trials walk the compiled topological order with per-copy binomial coins.
"""

from __future__ import annotations

import random
from collections.abc import Collection, Mapping
from dataclasses import dataclass
from statistics import fmean, stdev
from typing import Hashable, Literal

from repro.exceptions import MissingEdgeError, MissingNodeError, ParameterError
from repro.graphs.cgraph import CGraph
from repro.propagation.model import DEFAULT_TRIALS, PropagationModel

Node = Hashable
Edge = tuple[Node, Node]


@dataclass(frozen=True)
class ProbabilisticModel:
    """A c-graph whose edges relay with given probabilities.

    This is the graph-*bound* form — probabilities validated against one
    concrete graph at construction.  The graph-free axis spec the
    placement layers thread around is
    :class:`repro.propagation.model.PropagationModel`; :meth:`to_model`
    converts.

    Parameters
    ----------
    graph:
        The underlying DAG.
    probabilities:
        Either a single float applied to every edge, or a mapping from
        edges to floats.  Values must lie in ``[0, 1]``; missing edges in
        a mapping default to 1 (deterministic relay).  A mapping entry
        whose edge the graph does not contain raises
        :class:`~repro.exceptions.MissingEdgeError`.
    """

    graph: CGraph
    probabilities: float | Mapping[Edge, float] = 1.0

    def __post_init__(self) -> None:
        if isinstance(self.probabilities, Mapping):
            for edge, p in self.probabilities.items():
                if not self.graph.has_edge(*edge):
                    raise MissingEdgeError(edge)
                _check_probability(p)
        else:
            _check_probability(self.probabilities)

    def edge_probability(self, u: Node, v: Node) -> float:
        if isinstance(self.probabilities, Mapping):
            return float(self.probabilities.get((u, v), 1.0))
        return float(self.probabilities)

    def compiled(self):
        """The probabilities as CSR-aligned arrays on the compiled view.

        Returns the graph's cached
        :class:`~repro.graphs.compiled.EdgeProbabilities` — built once
        per spec and shared with every sampler and backend that touches
        this graph (:meth:`CompiledGraph.edge_probabilities
        <repro.graphs.compiled.CompiledGraph.edge_probabilities>`).
        """
        return self.graph.compiled().edge_probabilities(self.probabilities)

    def to_model(
        self,
        mechanism: Literal["live-edge", "per-copy"] = "live-edge",
        *,
        trials: int = DEFAULT_TRIALS,
        seed: int = 0,
    ) -> PropagationModel:
        """The graph-free axis spec for these probabilities."""
        return PropagationModel(
            mechanism=mechanism,
            probabilities=self.probabilities,
            trials=trials,
            seed=seed,
        )


def _check_probability(p: float) -> None:
    if not 0.0 <= float(p) <= 1.0:
        raise ParameterError(f"edge probability {p!r} outside [0, 1]")


def expected_receipts_without_filters(
    model: ProbabilisticModel, origin: Node
) -> dict[Node, float]:
    """Exact ``E[ψ(v)]`` for one item when no filters are placed.

    ``E[ψ(v)] = Σ_{paths s→v} Π_{e ∈ path} p(e)`` — one topological pass,
    valid for both randomness models because expectation is linear in the
    per-path indicators.
    """
    graph = model.graph
    if origin not in graph:
        raise MissingNodeError(origin)
    order = graph.topological_order()
    expected: dict[Node, float] = dict.fromkeys(order, 0.0)
    emit: dict[Node, float] = dict.fromkeys(order, 0.0)
    emit[origin] = 1.0
    for v in order:
        if v != origin:
            emit[v] = expected[v]
        if emit[v] == 0.0:
            continue
        for child in graph.successors(v):
            expected[child] += emit[v] * model.edge_probability(v, child)
    return expected


def _simulate_per_copy_ids(
    compiled,
    out_probs: list[float],
    origin_id: int,
    mask: bytearray,
    rng: random.Random,
) -> int:
    """One per-copy trial on interned ids; returns the total receipts."""
    received = [0] * compiled.n
    succ = compiled.succ_ids
    offsets = compiled.out_offsets
    r = rng.random
    total = 0
    for v in compiled.topo_order:
        if v == origin_id:
            emit = 1
        elif not received[v]:
            continue
        elif mask[v]:
            emit = 1
        else:
            emit = received[v]
        base = offsets[v]
        for j, child in enumerate(succ[v]):
            p = out_probs[base + j]
            if p >= 1.0:
                crossed = emit
            else:
                # Each of `emit` copies crosses independently.
                crossed = sum(1 for _ in range(emit) if r() < p)
            if crossed:
                received[child] += crossed
                total += crossed
    return total


@dataclass(frozen=True)
class MonteCarloEstimate:
    """Mean/stddev/trials summary of a Monte-Carlo estimation run."""

    mean: float
    std: float
    trials: int


def estimate_total_receipts(
    model: ProbabilisticModel,
    filters: Collection[Node] = (),
    *,
    trials: int = 100,
    seed: int = 0,
    mechanism: Literal["live-edge", "per-copy"] = "live-edge",
) -> MonteCarloEstimate:
    """Monte-Carlo estimate of ``E[Φ(A, V)]`` under probabilistic relaying.

    Sums over one item per source, like the deterministic engines.  Fully
    deterministic for a given ``seed``.

    Live-edge trials are evaluated as exact id sweeps over pre-sampled
    world masks on the compiled CSR — the worlds are sampled once and
    their pruned adjacency is reused across trials, instead of the old
    per-trial ``CGraph`` rebuild that re-validated every edge and
    re-derived the source set on each draw.
    """
    if trials <= 0:
        raise ParameterError("trials must be positive")
    graph = model.graph
    compiled = graph.compiled()
    filter_set = set(filters)
    mask = compiled.filter_mask(compiled.to_ids(filter_set))
    totals: list[float] = []
    if mechanism == "live-edge":
        from repro.propagation.engine import item_receipts_ids
        from repro.propagation.sampling import get_worlds

        worlds = get_worlds(
            graph, model.to_model("live-edge", trials=trials, seed=seed)
        )
        for trial in range(trials):
            pred_t, _ = worlds.adjacency(trial)
            total = 0
            for origin_id in compiled.source_ids:
                total += sum(
                    item_receipts_ids(compiled, origin_id, mask, pred_t)
                )
            totals.append(float(total))
    elif mechanism == "per-copy":
        out_probs = model.compiled().out_probs
        rng = random.Random(seed)
        for _ in range(trials):
            total = 0
            for origin_id in compiled.source_ids:
                total += _simulate_per_copy_ids(
                    compiled, out_probs, origin_id, mask, rng
                )
            totals.append(float(total))
    else:
        raise ParameterError(f"unknown mechanism {mechanism!r}")
    return MonteCarloEstimate(
        mean=fmean(totals),
        std=stdev(totals) if len(totals) > 1 else 0.0,
        trials=trials,
    )
