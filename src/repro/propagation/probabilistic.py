"""Probabilistic relaying — the extension sketched in Section 3.

The paper adopts deterministic relaying "for ease of presentation" and
notes that both the theory and the experiments carry over when links relay
probabilistically.  This module makes that concrete with two standard
models:

* ``live-edge``: each edge flips one coin per item; if live, every copy of
  that item crosses it.  This matches the independent-cascade convention in
  the influence-maximization literature the paper cites (Kempe et al.).
* ``per-copy``: every individual copy flips its own coin on every edge —
  the "tendency of a node to propagate messages" reading.

Without filters both models have the same *expected* receipt counts (by
linearity of expectation over path indicators), computable exactly in one
topological pass.  With filters the expectation is no longer linear — a
filter's emission is ``min(ψ, 1)`` — so `E[Φ(A, V)]` is estimated by seeded
Monte-Carlo simulation.
"""

from __future__ import annotations

import random
from collections.abc import Collection, Mapping
from dataclasses import dataclass
from statistics import fmean, stdev
from typing import Hashable, Literal

from repro.exceptions import MissingNodeError, ParameterError
from repro.graphs.cgraph import CGraph
from repro.propagation.engine import item_receipts

Node = Hashable
Edge = tuple[Node, Node]


@dataclass(frozen=True)
class ProbabilisticModel:
    """A c-graph whose edges relay with given probabilities.

    Parameters
    ----------
    graph:
        The underlying DAG.
    probabilities:
        Either a single float applied to every edge, or a mapping from
        edges to floats.  Values must lie in ``[0, 1]``; missing edges in a
        mapping default to 1 (deterministic relay).
    """

    graph: CGraph
    probabilities: float | Mapping[Edge, float] = 1.0

    def __post_init__(self) -> None:
        if isinstance(self.probabilities, Mapping):
            for edge, p in self.probabilities.items():
                if not self.graph.has_edge(*edge):
                    raise MissingNodeError(edge)
                _check_probability(p)
        else:
            _check_probability(self.probabilities)

    def edge_probability(self, u: Node, v: Node) -> float:
        if isinstance(self.probabilities, Mapping):
            return float(self.probabilities.get((u, v), 1.0))
        return float(self.probabilities)


def _check_probability(p: float) -> None:
    if not 0.0 <= float(p) <= 1.0:
        raise ParameterError(f"edge probability {p!r} outside [0, 1]")


def expected_receipts_without_filters(
    model: ProbabilisticModel, origin: Node
) -> dict[Node, float]:
    """Exact ``E[ψ(v)]`` for one item when no filters are placed.

    ``E[ψ(v)] = Σ_{paths s→v} Π_{e ∈ path} p(e)`` — one topological pass,
    valid for both randomness models because expectation is linear in the
    per-path indicators.
    """
    graph = model.graph
    if origin not in graph:
        raise MissingNodeError(origin)
    order = graph.topological_order()
    expected: dict[Node, float] = dict.fromkeys(order, 0.0)
    emit: dict[Node, float] = dict.fromkeys(order, 0.0)
    emit[origin] = 1.0
    for v in order:
        if v != origin:
            emit[v] = expected[v]
        if emit[v] == 0.0:
            continue
        for child in graph.successors(v):
            expected[child] += emit[v] * model.edge_probability(v, child)
    return expected


def _sample_live_subgraph(
    model: ProbabilisticModel, rng: random.Random
) -> CGraph:
    live = [
        (u, v)
        for u, v in model.graph.edges()
        if rng.random() < model.edge_probability(u, v)
    ]
    sources = model.graph.sources if model.graph.sources else None
    return CGraph(live, nodes=model.graph.nodes(), sources=sources)


def _simulate_per_copy(
    model: ProbabilisticModel,
    origin: Node,
    filters: set[Node],
    rng: random.Random,
) -> int:
    """One per-copy trial; returns the item's total receipt count."""
    graph = model.graph
    order = graph.topological_order()
    received: dict[Node, int] = dict.fromkeys(order, 0)
    total = 0
    for v in order:
        if v == origin:
            emit = 1
        elif received[v] == 0:
            continue
        elif v in filters:
            emit = 1
        else:
            emit = received[v]
        for child in graph.successors(v):
            p = model.edge_probability(v, child)
            if p >= 1.0:
                crossed = emit
            else:
                # Each of `emit` copies crosses independently.
                crossed = sum(1 for _ in range(emit) if rng.random() < p)
            if crossed:
                received[child] += crossed
                total += crossed
    return total


@dataclass(frozen=True)
class MonteCarloEstimate:
    """Mean/stddev/trials summary of a Monte-Carlo estimation run."""

    mean: float
    std: float
    trials: int


def estimate_total_receipts(
    model: ProbabilisticModel,
    filters: Collection[Node] = (),
    *,
    trials: int = 100,
    seed: int = 0,
    mechanism: Literal["live-edge", "per-copy"] = "live-edge",
) -> MonteCarloEstimate:
    """Monte-Carlo estimate of ``E[Φ(A, V)]`` under probabilistic relaying.

    Sums over one item per source, like the deterministic engines.  Fully
    deterministic for a given ``seed``.
    """
    if trials <= 0:
        raise ParameterError("trials must be positive")
    filter_set = set(filters)
    rng = random.Random(seed)
    totals: list[float] = []
    sources = list(model.graph.sources)
    for _ in range(trials):
        total = 0
        if mechanism == "live-edge":
            live = _sample_live_subgraph(model, rng)
            for source in sources:
                per_item = item_receipts(live, source, filter_set)
                total += sum(per_item.values())
        elif mechanism == "per-copy":
            for source in sources:
                total += _simulate_per_copy(model, source, filter_set, rng)
        else:
            raise ParameterError(f"unknown mechanism {mechanism!r}")
        totals.append(float(total))
    return MonteCarloEstimate(
        mean=fmean(totals),
        std=stdev(totals) if len(totals) > 1 else 0.0,
        trials=trials,
    )
