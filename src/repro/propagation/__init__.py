"""Information-propagation substrate.

Implements the paper's propagation model (Section 3): sources generate
distinct items; every node blindly relays every received copy to all
out-neighbours; *filter* nodes forward exactly one copy per distinct item.

Three engines, one semantics:

* :mod:`repro.propagation.engine` — exact receipt counts on DAGs via
  topological passes; the workhorse behind every algorithm and experiment.
  Its aggregate entry points dispatch through the pluggable backend
  registry (:mod:`repro.backends`), so the vectorized NumPy engine drops
  in transparently when available.
* :mod:`repro.propagation.simulator` — a literal event-driven relay
  simulator; slower, but works on cyclic graphs with cycle-breaking filter
  sets and serves as the ground-truth oracle in the test suite.
* :mod:`repro.propagation.probabilistic` — the probabilistic relaying
  extension the paper sketches, with Monte-Carlo estimation.

The probabilistic extension is a first-class *axis* of every placement
request, not an island: :mod:`repro.propagation.model` defines the
``deterministic | live-edge | per-copy`` spec the registry, backends,
CLI and service thread through, and :mod:`repro.propagation.sampling`
holds the seeded live-edge worlds (masks over the compiled CSR, common
random numbers) that every sample-average gain evaluation shares.
"""

from repro.propagation.engine import (
    item_receipts,
    node_receipts,
    total_receipts,
)
from repro.propagation.model import (
    MODEL_NAMES,
    PropagationModel,
    build_model,
    use_model,
)
from repro.propagation.simulator import (
    PropagationTrace,
    is_propagation_finite,
    simulate,
)
from repro.propagation.probabilistic import (
    ProbabilisticModel,
    estimate_total_receipts,
    expected_receipts_without_filters,
)

__all__ = [
    "item_receipts",
    "node_receipts",
    "total_receipts",
    "simulate",
    "is_propagation_finite",
    "PropagationTrace",
    "MODEL_NAMES",
    "PropagationModel",
    "build_model",
    "use_model",
    "ProbabilisticModel",
    "estimate_total_receipts",
    "expected_receipts_without_filters",
]
