"""Dataset statistics and degree distributions.

Backs the paper's Figure 4 and Figure 6 (in-degree CDFs) and the in-text
dataset characterizations ("almost 70% of the nodes are sinks and almost
50% of the nodes have in-degree one").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Literal

from repro.exceptions import ParameterError
from repro.graphs.cgraph import CGraph

Node = Hashable


@dataclass(frozen=True)
class GraphStats:
    """Structural summary of a c-graph."""

    nodes: int
    edges: int
    sources: int
    sinks: int
    sink_fraction: float
    indegree_one_fraction: float
    merge_nodes: int
    max_in_degree: int
    max_out_degree: int
    is_dag: bool

    def as_row(self) -> list[str]:
        """Row representation for :func:`repro.analysis.report.format_table`."""
        return [
            str(self.nodes),
            str(self.edges),
            str(self.sources),
            f"{self.sink_fraction:.2f}",
            f"{self.indegree_one_fraction:.2f}",
            str(self.merge_nodes),
            str(self.max_in_degree),
            str(self.max_out_degree),
        ]


def describe(graph: CGraph) -> GraphStats:
    """Compute a :class:`GraphStats` summary."""
    n = graph.number_of_nodes()
    sinks = len(graph.sinks())
    indegree_one = sum(1 for v in graph.nodes() if graph.in_degree(v) == 1)
    return GraphStats(
        nodes=n,
        edges=graph.number_of_edges(),
        sources=len(graph.sources),
        sinks=sinks,
        sink_fraction=sinks / n if n else 0.0,
        indegree_one_fraction=indegree_one / n if n else 0.0,
        merge_nodes=len(graph.merge_nodes()),
        max_in_degree=max(
            (graph.in_degree(v) for v in graph.nodes()), default=0
        ),
        max_out_degree=max(
            (graph.out_degree(v) for v in graph.nodes()), default=0
        ),
        is_dag=graph.is_dag(),
    )


def degree_cdf(
    graph: CGraph, kind: Literal["in", "out"] = "in"
) -> list[tuple[int, float]]:
    """Empirical CDF of node degrees, as plotted in Figures 4 and 6.

    Returns ``(degree, P[deg ≤ degree])`` pairs at every distinct observed
    degree, in increasing order.
    """
    if kind == "in":
        degrees = sorted(graph.in_degree(v) for v in graph.nodes())
    elif kind == "out":
        degrees = sorted(graph.out_degree(v) for v in graph.nodes())
    else:
        raise ParameterError(f"kind must be 'in' or 'out', got {kind!r}")
    n = len(degrees)
    if n == 0:
        return []
    points: list[tuple[int, float]] = []
    for i, d in enumerate(degrees):
        if i + 1 == n or degrees[i + 1] != d:
            points.append((d, (i + 1) / n))
    return points


def cdf_value_at(cdf: list[tuple[int, float]], degree: int) -> float:
    """``P[deg ≤ degree]`` read off a :func:`degree_cdf` result."""
    value = 0.0
    for d, p in cdf:
        if d > degree:
            break
        value = p
    return value
