"""Wall-clock and evaluation-count comparison of algorithms (Figure 11).

The paper measures seconds to place ten filters on the Twitter graph.
Absolute numbers are hardware- and engine-dependent (this library's impact
engine is asymptotically faster than the paper's plist bookkeeping, by
design); the reproduced claim is the *relative ordering*
``G_1 ≪ {G_L, G_Max} < G_All``.

Beyond the stopwatch, every measurement carries the propagation
evaluation counters (via :class:`repro.bench.instrument.CountingBackend`)
— **total** and **per placement step** — so the lazy-greedy savings are
visible where they happen: eager ``Greedy_All`` charges one
``marginal_gains`` sweep to every step, while CELF charges one
``session_init`` sweep to the first step and only regional
``session_update``/``session_refresh`` operations to the rest.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.registry import get_algorithm
from repro.exceptions import ParameterError
from repro.graphs.cgraph import CGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import PropagationBackend


@dataclass(frozen=True)
class RuntimeMeasurement:
    """Cost to place ``k`` filters with one algorithm.

    ``evaluations`` is the ground-truth counter ledger of one placement
    run (keys from :data:`repro.bench.instrument.EVALUATION_KINDS`).
    ``step_evaluations`` breaks the work down per placement step, from
    the algorithm's own :class:`~repro.core.base.PlacementStep` records —
    one dict per chosen filter, in selection order.
    """

    algorithm: str
    k: int
    seconds: float
    filters_found: int
    evaluations: dict[str, int] = field(default_factory=dict)
    step_evaluations: tuple[dict[str, int], ...] = ()

    def sweeps(self) -> int:
        """Full-graph propagation sweeps this run performed."""
        from repro.bench.instrument import sweep_count

        return sweep_count(self.evaluations)


def time_algorithm(
    graph: CGraph,
    algorithm_name: str,
    k: int,
    *,
    repeats: int = 1,
    backend: "str | PropagationBackend | None" = None,
) -> RuntimeMeasurement:
    """Best-of-``repeats`` wall-clock time of one placement run.

    ``backend`` scopes the propagation backend for the timed runs (None =
    the registry default), so Figure 11 can be produced per-engine.  The
    backend is wrapped in a counting shim (negligible overhead: one dict
    increment per evaluation) so the measurement also reports how many
    propagation evaluations of each kind the run needed, in total and
    per placement step.
    """
    if repeats <= 0:
        raise ParameterError("repeats must be positive")
    from repro.backends.registry import get_default_backend, use_backend
    from repro.bench.instrument import CountingBackend

    algorithm = get_algorithm(algorithm_name)
    best = float("inf")
    result = None
    with use_backend(
        backend if backend is not None else get_default_backend()
    ) as active:
        # Warm per-graph preprocessing outside the timed region: fig11
        # compares algorithms, and one-time setup (levelization plans,
        # cached topological orders) would otherwise land on whichever
        # propagation-using algorithm happens to run first.
        active.warm(graph)
        counting = CountingBackend(active)
        with use_backend(counting):
            for _ in range(repeats):
                counting.reset()
                start = time.perf_counter()
                result = algorithm.place(graph, k)
                elapsed = time.perf_counter() - start
                best = min(best, elapsed)
    assert result is not None  # repeats >= 1
    return RuntimeMeasurement(
        algorithm=algorithm_name,
        k=k,
        seconds=best,
        filters_found=len(result.filters),
        evaluations=dict(counting.counts),
        step_evaluations=tuple(
            step.evaluation_counts() for step in result.steps
        ),
    )


def runtime_comparison(
    graph: CGraph,
    algorithm_names: Sequence[str],
    k: int,
    *,
    repeats: int = 1,
    backend: "str | PropagationBackend | None" = None,
) -> list[RuntimeMeasurement]:
    """Figure 11's bar chart as a list of measurements, in given order."""
    return [
        time_algorithm(graph, name, k, repeats=repeats, backend=backend)
        for name in algorithm_names
    ]
