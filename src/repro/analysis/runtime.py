"""Wall-clock comparison of placement algorithms (Figure 11).

The paper measures seconds to place ten filters on the Twitter graph.
Absolute numbers are hardware- and engine-dependent (this library's impact
engine is asymptotically faster than the paper's plist bookkeeping, by
design); the reproduced claim is the *relative ordering*
``G_1 ≪ {G_L, G_Max} < G_All``.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.registry import get_algorithm
from repro.exceptions import ParameterError
from repro.graphs.cgraph import CGraph


@dataclass(frozen=True)
class RuntimeMeasurement:
    """Seconds to place ``k`` filters with one algorithm."""

    algorithm: str
    k: int
    seconds: float
    filters_found: int


def time_algorithm(
    graph: CGraph,
    algorithm_name: str,
    k: int,
    *,
    repeats: int = 1,
) -> RuntimeMeasurement:
    """Best-of-``repeats`` wall-clock time of one placement run."""
    if repeats <= 0:
        raise ParameterError("repeats must be positive")
    algorithm = get_algorithm(algorithm_name)
    best = float("inf")
    found = 0
    for _ in range(repeats):
        start = time.perf_counter()
        result = algorithm.place(graph, k)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        found = len(result.filters)
    return RuntimeMeasurement(
        algorithm=algorithm_name, k=k, seconds=best, filters_found=found
    )


def runtime_comparison(
    graph: CGraph,
    algorithm_names: Sequence[str],
    k: int,
    *,
    repeats: int = 1,
) -> list[RuntimeMeasurement]:
    """Figure 11's bar chart as a list of measurements, in given order."""
    return [
        time_algorithm(graph, name, k, repeats=repeats)
        for name in algorithm_names
    ]
