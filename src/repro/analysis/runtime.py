"""Wall-clock comparison of placement algorithms (Figure 11).

The paper measures seconds to place ten filters on the Twitter graph.
Absolute numbers are hardware- and engine-dependent (this library's impact
engine is asymptotically faster than the paper's plist bookkeeping, by
design); the reproduced claim is the *relative ordering*
``G_1 ≪ {G_L, G_Max} < G_All``.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.registry import get_algorithm
from repro.exceptions import ParameterError
from repro.graphs.cgraph import CGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import PropagationBackend


@dataclass(frozen=True)
class RuntimeMeasurement:
    """Seconds to place ``k`` filters with one algorithm."""

    algorithm: str
    k: int
    seconds: float
    filters_found: int


def time_algorithm(
    graph: CGraph,
    algorithm_name: str,
    k: int,
    *,
    repeats: int = 1,
    backend: "str | PropagationBackend | None" = None,
) -> RuntimeMeasurement:
    """Best-of-``repeats`` wall-clock time of one placement run.

    ``backend`` scopes the propagation backend for the timed runs (None =
    the registry default), so Figure 11 can be produced per-engine.
    """
    if repeats <= 0:
        raise ParameterError("repeats must be positive")
    from repro.backends.registry import get_default_backend, use_backend

    algorithm = get_algorithm(algorithm_name)
    best = float("inf")
    found = 0
    with use_backend(
        backend if backend is not None else get_default_backend()
    ) as active:
        # Warm per-graph preprocessing outside the timed region: fig11
        # compares algorithms, and one-time setup (levelization plans,
        # cached topological orders) would otherwise land on whichever
        # propagation-using algorithm happens to run first.
        active.warm(graph)
        for _ in range(repeats):
            start = time.perf_counter()
            result = algorithm.place(graph, k)
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
            found = len(result.filters)
    return RuntimeMeasurement(
        algorithm=algorithm_name, k=k, seconds=best, filters_found=found
    )


def runtime_comparison(
    graph: CGraph,
    algorithm_names: Sequence[str],
    k: int,
    *,
    repeats: int = 1,
    backend: "str | PropagationBackend | None" = None,
) -> list[RuntimeMeasurement]:
    """Figure 11's bar chart as a list of measurements, in given order."""
    return [
        time_algorithm(graph, name, k, repeats=repeats, backend=backend)
        for name in algorithm_names
    ]
