"""Filter-Ratio-versus-k sweeps — the measurement behind Figures 5/7/8/9.

For deterministic, prefix-consistent algorithms (the greedy family) a
single run at the largest budget yields the whole curve: the budget-``j``
filter set is the first ``j`` selections.  For the randomized baselines
each budget is sampled afresh and averaged over ``trials`` runs (25 in the
paper).
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Hashable

from repro.analysis.metrics import describe
from repro.core.objective import filter_ratio, max_objective, phi
from repro.core.registry import get_algorithm
from repro.exceptions import ParameterError
from repro.graphs.cgraph import CGraph

Node = Hashable

#: Trials the paper averages randomized algorithms over.
DEFAULT_TRIALS = 25


@dataclass(frozen=True)
class FRCurve:
    """One algorithm's Filter-Ratio curve.

    ``values[i]`` is the (possibly trial-averaged) FR at budget ``ks[i]``.
    """

    algorithm: str
    ks: tuple[int, ...]
    values: tuple[float, ...]

    def as_dict(self) -> dict[int, float]:
        return dict(zip(self.ks, self.values))

    def final(self) -> float:
        """FR at the largest measured budget."""
        return self.values[-1] if self.values else 0.0

    def first_k_reaching(self, target: float) -> int | None:
        """Smallest measured budget with FR ≥ ``target`` (None if never)."""
        for k, value in zip(self.ks, self.values):
            if value >= target:
                return k
        return None


def fr_curve(
    graph: CGraph,
    algorithm_name: str,
    ks: Sequence[int],
    *,
    trials: int = DEFAULT_TRIALS,
    seed: int = 0,
    phi_empty: int | None = None,
    f_max: int | None = None,
) -> FRCurve:
    """Measure one algorithm's FR at each budget in ``ks``."""
    ks = tuple(sorted(set(int(k) for k in ks)))
    if not ks:
        raise ParameterError("ks must be non-empty")
    if min(ks) < 0:
        raise ParameterError("budgets must be non-negative")
    if phi_empty is None:
        phi_empty = phi(graph, ())
    if f_max is None:
        f_max = max_objective(graph, phi_empty=phi_empty)

    algorithm = get_algorithm(algorithm_name)
    values: list[float] = []
    if algorithm.prefix_consistent:
        result = algorithm.place(graph, max(ks))
        for k in ks:
            values.append(
                filter_ratio(
                    graph,
                    result.filters[:k],
                    phi_empty=phi_empty,
                    f_max=f_max,
                )
            )
    else:
        for k in ks:
            values.append(
                average_filter_ratio(
                    graph,
                    algorithm_name,
                    k,
                    trials=trials,
                    seed=seed,
                    phi_empty=phi_empty,
                    f_max=f_max,
                )
            )
    return FRCurve(algorithm=algorithm_name, ks=ks, values=tuple(values))


def average_filter_ratio(
    graph: CGraph,
    algorithm_name: str,
    k: int,
    *,
    trials: int = DEFAULT_TRIALS,
    seed: int = 0,
    phi_empty: int | None = None,
    f_max: int | None = None,
) -> float:
    """Mean FR of a (randomized) algorithm over ``trials`` fresh runs.

    Deterministic algorithms simply run ``trials`` identical times; the
    harness does not special-case them so comparisons stay honest.
    """
    if trials <= 0:
        raise ParameterError("trials must be positive")
    algorithm = get_algorithm(algorithm_name)
    total = 0.0
    for trial in range(trials):
        # Seeding with a string is deterministic regardless of
        # PYTHONHASHSEED (random.seed hashes str/bytes itself).
        rng = random.Random(f"{seed}:{algorithm_name}:{k}:{trial}")
        result = algorithm.place(graph, k, rng=rng)
        total += filter_ratio(
            graph, result.filters, phi_empty=phi_empty, f_max=f_max
        )
    return total / trials


def fr_curves(
    graph: CGraph,
    algorithm_names: Sequence[str],
    ks: Sequence[int],
    *,
    trials: int = DEFAULT_TRIALS,
    seed: int = 0,
) -> dict[str, FRCurve]:
    """FR curves for several algorithms, sharing the Φ(∅)/F(V) baselines."""
    phi_empty = phi(graph, ())
    f_max = max_objective(graph, phi_empty=phi_empty)
    describe(graph)  # cheap sanity walk; raises early on malformed input
    return {
        name: fr_curve(
            graph,
            name,
            ks,
            trials=trials,
            seed=seed,
            phi_empty=phi_empty,
            f_max=f_max,
        )
        for name in algorithm_names
    }
