"""Plain-text tables for experiment output.

Every experiment renders through these helpers so terminal output, the
benchmark logs and EXPERIMENTS.md all show the same rows the paper's
figures plot.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.analysis.curves import FRCurve
from repro.analysis.metrics import GraphStats


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """Render an aligned monospace table."""
    columns = len(headers)
    widths = [len(h) for h in headers]
    normalized: list[list[str]] = []
    for row in rows:
        cells = [str(c) for c in row]
        if len(cells) != columns:
            cells += [""] * (columns - len(cells))
        normalized.append(cells)
        for i, cell in enumerate(cells[:columns]):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in normalized)
    return "\n".join(out)


def format_curve_table(curves: Mapping[str, FRCurve]) -> str:
    """One row per budget, one column per algorithm — a figure as text."""
    names = list(curves)
    if not names:
        return "(no curves)"
    ks = curves[names[0]].ks
    headers = ["k"] + names
    rows = []
    for i, k in enumerate(ks):
        row = [str(k)]
        for name in names:
            curve = curves[name]
            row.append(f"{curve.values[i]:.3f}" if i < len(curve.values) else "")
        rows.append(row)
    return format_table(headers, rows)


def format_cdf_table(
    cdf: Sequence[tuple[int, float]], *, max_rows: int = 20
) -> str:
    """Degree-CDF sample points (down-sampled evenly past ``max_rows``)."""
    if not cdf:
        return "(empty graph)"
    points = list(cdf)
    if len(points) > max_rows:
        step = (len(points) - 1) / (max_rows - 1)
        points = [points[round(i * step)] for i in range(max_rows)]
    return format_table(
        ["degree", "P[deg<=d]"],
        [[str(d), f"{p:.3f}"] for d, p in points],
    )


def format_stats_table(stats: Mapping[str, GraphStats]) -> str:
    """Dataset-summary table (the in-text numbers of Section 5)."""
    headers = [
        "dataset", "nodes", "edges", "sources",
        "sink_frac", "din1_frac", "merge", "max_din", "max_dout",
    ]
    rows = [[name, *s.as_row()] for name, s in stats.items()]
    return format_table(headers, rows)
