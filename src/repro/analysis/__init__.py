"""Analysis utilities: the measurements behind every figure.

* :mod:`repro.analysis.metrics` — dataset statistics and degree CDFs
  (Figures 4 and 6, the in-text "dataset summary" numbers).
* :mod:`repro.analysis.curves` — Filter-Ratio-versus-k sweeps with the
  paper's 25-trial averaging for randomized algorithms (Figures 5/7/8/9).
* :mod:`repro.analysis.runtime` — wall-clock comparison (Figure 11).
* :mod:`repro.analysis.report` — plain-text tables for terminals, logs
  and EXPERIMENTS.md.
"""

from repro.analysis.metrics import GraphStats, degree_cdf, describe
from repro.analysis.curves import (
    FRCurve,
    average_filter_ratio,
    fr_curve,
    fr_curves,
)
from repro.analysis.runtime import RuntimeMeasurement, runtime_comparison
from repro.analysis.report import (
    format_cdf_table,
    format_curve_table,
    format_stats_table,
    format_table,
)

__all__ = [
    "GraphStats",
    "describe",
    "degree_cdf",
    "FRCurve",
    "fr_curve",
    "fr_curves",
    "average_filter_ratio",
    "RuntimeMeasurement",
    "runtime_comparison",
    "format_table",
    "format_curve_table",
    "format_cdf_table",
    "format_stats_table",
]
