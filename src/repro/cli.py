"""Command-line interface: ``filter-placement`` / ``python -m repro``.

Subcommands
-----------
``place``
    Run a placement algorithm on a dataset (built-in or edge-list file)
    and print the chosen filters with their Filter Ratio.  ``--json``
    emits the machine-readable payload instead — the *same* payload the
    HTTP service returns, produced by the shared serializer
    (:mod:`repro.service.serialize`).
``stats``
    Structural summary of a dataset (``--json`` for machine-readable).
``experiment``
    Run paper-figure experiments (thin wrapper over
    :mod:`repro.experiments.runner`).
``generate``
    Write a built-in dataset to an edge-list file.  The header records
    the generating spec (dataset, seed, scale) and the structural
    directives that make the file a lossless round-trip — re-registering
    the generated file yields the same content digest.
``bench``
    Run a benchmark suite (:mod:`repro.bench`), print the table, write
    ``BENCH.json``, and optionally compare against a prior run.
``serve``
    Boot the placement service (:mod:`repro.service`): a graph store,
    placement cache and worker pool behind a stdlib HTTP JSON API.

``--backend {python,numpy,auto}`` selects the propagation backend
(``auto``, the default, uses NumPy when available); every backend returns
identical results.

``--strategy {exact,lazy,sketch}`` (on ``place`` and ``experiment``)
selects the execution strategy: ``exact`` runs the direct
implementations, ``lazy`` runs lazy-capable algorithms (the
``Greedy_All`` family) as CELF on the incremental gain engine —
identical selections and objective values, one full propagation sweep
instead of one per placement — and ``sketch`` runs sketch-capable
algorithms on bottom-k reachability estimates (:mod:`repro.sketches`),
the million-node scale tier.  ``--sketch-k`` / ``--epsilon`` /
``--sketch-seed`` (on ``place``) tune the estimator; ``--streamed``
builds ``--dataset scale-dag`` through the streaming compiler
(:mod:`repro.graphs.largescale`) instead of materializing a python
edge list, which is how ``--scale 10`` (n = 10^6) stays feasible.

``--trace`` / ``--profile PATH`` (on ``place``, ``experiment`` and
``bench``) record the run's spans via :mod:`repro.obs` and print the
timing tree / write Chrome ``trace_event`` JSON.  ``serve`` grows
``--log-format {text,json}`` for the access log and traces every job so
``GET /traces/{job_id}`` serves the solve's span tree (``--no-trace``
opts out).

``--model {deterministic,live-edge,per-copy}`` with ``--edge-prob`` and
``--trials`` (on ``place``, ``experiment`` and ``bench``) selects the
propagation model: ``deterministic`` (the default, and anything with
edge probability 1) takes the exact integer fast path unchanged, while
the probabilistic models score every model-aware evaluation as a seeded
sample average over live-edge worlds (the run's ``--seed`` seeds the
sampler).

Examples
--------
::

    filter-placement place --dataset quote --algorithm G_All -k 4
    filter-placement place --edges my_graph.txt --algorithm G_Max -k 10
    filter-placement place --dataset citation -k 10 --backend numpy
    filter-placement place --dataset citation -k 10 --strategy lazy --json
    filter-placement place --dataset scale-dag --scale 1.0 --streamed \
        -k 10 --strategy sketch --sketch-k 64
    filter-placement place --dataset quote -k 8 --model live-edge \
        --edge-prob 0.7 --trials 64
    filter-placement stats --dataset citation --scale 0.1 --json
    filter-placement experiment fig7 --fast
    filter-placement generate --dataset twitter --scale 0.05 --seed 7 -o t.txt
    filter-placement bench --suite toy --out BENCH.json
    filter-placement bench --suite probabilistic --out BENCH.prob.json
    filter-placement bench --suite default --compare BENCH.prior.json
    filter-placement serve --port 8080 --workers 8
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from collections.abc import Sequence

from repro.analysis.metrics import describe
from repro.analysis.report import format_stats_table, format_table
from repro.backends.registry import BACKEND_NAMES, use_backend
from repro.core.objective import filter_ratio, max_objective, phi
from repro.core.registry import (
    ALGORITHM_NAMES,
    STRATEGY_NAMES,
    get_algorithm,
)
from repro.datasets.loaders import load_real_dataset
from repro.datasets.registry import DATASET_NAMES, get_dataset
from repro.exceptions import ReproError
from repro.graphs.cgraph import CGraph
from repro.graphs.io import write_edge_list


def _load_graph(args: argparse.Namespace) -> CGraph:
    if args.edges is not None:
        return load_real_dataset(args.edges, initiator=args.initiator)
    kwargs: dict[str, object] = {"seed": args.seed}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if getattr(args, "streamed", False):
        if args.dataset != "scale-dag":
            from repro.exceptions import ParameterError

            raise ParameterError(
                "--streamed applies to --dataset scale-dag only; the "
                "other datasets materialize python edge lists by design"
            )
        kwargs["streamed"] = True
    return get_dataset(args.dataset, **kwargs)


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--dataset",
        choices=DATASET_NAMES,
        help="built-in dataset name",
    )
    group.add_argument("--edges", help="edge-list file (one 'u v' per line)")
    parser.add_argument(
        "--initiator",
        default=None,
        help="source node for edge-list input (default: auto-detect)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=None)


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="auto",
        help="propagation backend (default: auto = numpy when available)",
    )


def _add_strategy_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--strategy",
        choices=STRATEGY_NAMES,
        default="exact",
        help="execution strategy: exact = direct implementations, "
        "lazy = CELF with incremental impact updates (same results, "
        "fewer propagation sweeps), sketch = CELF on bottom-k "
        "reachability estimates (the scale tier; default: exact)",
    )


def _add_sketch_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.sketches.bottomk import DEFAULT_SKETCH_K

    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--sketch-k",
        type=int,
        default=None,
        metavar="K",
        help="bottom-k sketch registers per node under --strategy sketch "
        f"(default: {DEFAULT_SKETCH_K}; more registers, tighter estimates)",
    )
    group.add_argument(
        "--epsilon",
        type=float,
        default=None,
        metavar="EPS",
        help="target relative estimator error under --strategy sketch; "
        "chooses the register count k(EPS) instead of --sketch-k",
    )
    parser.add_argument(
        "--sketch-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="seed of the sketch's source hashes (default: 0; any fixed "
        "seed gives byte-reproducible sketches)",
    )
    parser.add_argument(
        "--streamed",
        action="store_true",
        help="build --dataset scale-dag through the streaming compiler "
        "(no python edge list; required for --scale 10, n = 10^6)",
    )


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.propagation.model import DEFAULT_TRIALS, MODEL_NAMES

    parser.add_argument(
        "--model",
        choices=MODEL_NAMES,
        default="deterministic",
        help="propagation model: deterministic = every edge always "
        "relays (exact integers, the default), live-edge / per-copy = "
        "probabilistic relaying scored by a seeded sample average over "
        "live-edge worlds",
    )
    parser.add_argument(
        "--edge-prob",
        type=float,
        default=1.0,
        metavar="P",
        help="uniform edge relay probability for probabilistic models "
        "(default: 1.0, which is deterministic relaying)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=DEFAULT_TRIALS,
        help="Monte-Carlo worlds the sample-average objective uses "
        f"(default: {DEFAULT_TRIALS}; the run's --seed seeds the sampler)",
    )


def _add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record spans for the run and print the timing tree",
    )
    parser.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="write the run's spans as Chrome trace_event JSON to PATH "
        "(load in chrome://tracing or Perfetto)",
    )


def _add_warm_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--reach-block",
        type=int,
        default=None,
        metavar="B",
        help="source-block size of the blocked reachability warm "
        "(default: 1024 lanes; one sweep holds O(n·B/8) bytes)",
    )
    parser.add_argument(
        "--warm-workers",
        type=int,
        default=None,
        metavar="W",
        help="process-pool workers sharding the reachability warm over "
        "source ranges (default: 1 = in-process sweep; results are "
        "bit-identical for every worker count)",
    )


@contextlib.contextmanager
def _warm_scoped(args: argparse.Namespace):
    """Scope the blocked-warm knobs around a command.

    ``--reach-block`` / ``--warm-workers`` bind the thread-scoped
    defaults in :mod:`repro.propagation.reach` for the command's
    duration; unset flags leave the process defaults untouched.
    """
    from repro.propagation.reach import use_reach_block, use_warm_workers

    with contextlib.ExitStack() as stack:
        if getattr(args, "reach_block", None) is not None:
            stack.enter_context(use_reach_block(args.reach_block))
        if getattr(args, "warm_workers", None) is not None:
            stack.enter_context(use_warm_workers(args.warm_workers))
        yield


@contextlib.contextmanager
def _observed(args: argparse.Namespace):
    """Enable tracing around a command when ``--trace``/``--profile`` ask.

    The command's spans collect under one explicit trace; on exit the
    tree is printed (``--trace``) and/or dumped as Chrome ``trace_event``
    JSON (``--profile PATH``).  Without either flag this is a no-op and
    the instrumentation stays on its disabled fast path.
    """
    trace_flag = getattr(args, "trace", False)
    profile_path = getattr(args, "profile", None)
    if not trace_flag and profile_path is None:
        yield
        return
    from repro.obs.trace import TRACER, chrome_trace, format_trace

    was_enabled = TRACER.enabled
    TRACER.enable()
    try:
        with TRACER.trace(command=args.command) as trace:
            yield
    finally:
        if not was_enabled:
            TRACER.disable()
    if trace_flag:
        print()
        print(format_trace(trace))
    if profile_path is not None:
        with open(profile_path, "w", encoding="utf-8") as fh:
            json.dump(chrome_trace(trace), fh, indent=2, sort_keys=True)
        print(f"wrote Chrome trace to {profile_path}")


def _build_cli_model(args: argparse.Namespace):
    """The resolved PropagationModel of a command line (None = exact)."""
    from repro.propagation.model import build_model

    return build_model(
        args.model,
        edge_prob=args.edge_prob,
        trials=args.trials,
        seed=args.seed,
    )


def _cmd_place(args: argparse.Namespace) -> int:
    # Scoped, not set_default_backend: main() is also a library entry
    # point and must not leak a changed process default to its caller.
    with use_backend(args.backend):
        # _warm_scoped outside _observed: its first-use import of the
        # reach module must not bill milliseconds to the trace that the
        # place.* phase spans cannot account for.
        with _warm_scoped(args), _observed(args):
            return _run_place(args)


def _run_place(args: argparse.Namespace) -> int:
    from repro.obs.trace import span

    with span("place.load", seed=args.seed):
        graph = _load_graph(args)
        model = _build_cli_model(args)
        algorithm = get_algorithm(
            args.algorithm,
            strategy=args.strategy,
            model=model,
            sketch_k=args.sketch_k,
            epsilon=args.epsilon,
            sketch_seed=args.sketch_seed,
        )
    with span("place.solve", algorithm=args.algorithm, k=args.k):
        result = algorithm.place(graph, args.k)
    with span("place.score"):
        return _report_place(args, graph, model, result)


def _report_place(args, graph, model, result) -> int:
    if args.json:
        from repro.service.serialize import placement_payload

        print(json.dumps(placement_payload(graph, result, model=model),
                         indent=2, sort_keys=True))
        return 0
    rows = [[str(i + 1), repr(v)] for i, v in enumerate(result.filters)]
    print(format_table(["#", "filter node"], rows))
    print()
    print(f"algorithm      : {result.algorithm}")
    print(f"requested k    : {args.k}")
    print(f"filters chosen : {len(result.filters)}")
    if result.rescored is not None:
        status = "exactly rescored" if result.rescored else "estimate only"
        print(f"sketch gains   : {status}")
    if result.rescored is False:
        # The graph sits beyond the sketch tier's exact-rescore guard;
        # two more full sweeps just to print Φ would defeat the tier.
        estimate = float(sum(result.estimated_gains))
        print(f"F(A) estimate  : {estimate:g}  (bottom-k estimator)")
        return 0
    if model is not None:
        # SAA estimates over the model's sampled worlds — floats, and
        # mutually consistent because every value shares the worlds.
        from repro.core.objective import expected_phi

        phi_empty_x = expected_phi(graph, (), model=model)
        phi_a_x = expected_phi(graph, result.filters, model=model)
        f_max_x = phi_empty_x - expected_phi(
            graph, graph.nodes(), model=model
        )
        objective_x = phi_empty_x - phi_a_x
        fr_x = 1.0 if f_max_x == 0 else objective_x / f_max_x
        print(f"model          : {model.mechanism} "
              f"(edge prob {args.edge_prob:g}, {model.trials} trials, "
              f"seed {model.seed})")
        print(f"E[Phi(empty)]  : {phi_empty_x:.3f}")
        print(f"E[Phi(A)]      : {phi_a_x:.3f}")
        print(f"E[F(A)]        : {objective_x:.3f}")
        print(f"Filter Ratio   : {fr_x:.4f}  (sample average)")
        return 0
    phi_empty = phi(graph, ())
    f_max = max_objective(graph, phi_empty=phi_empty)
    fr = filter_ratio(
        graph, result.filters, phi_empty=phi_empty, f_max=f_max
    )
    print(f"Phi(empty)     : {phi_empty}")
    print(f"Phi(A)         : {phi(graph, result.filters)}")
    print(f"F(A)           : {phi_empty - phi(graph, result.filters)}")
    print(f"Filter Ratio   : {fr:.4f}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    name = args.dataset or str(args.edges)
    if args.json:
        from repro.service.serialize import stats_payload

        print(json.dumps(stats_payload(name, describe(graph)), indent=2,
                         sort_keys=True))
        return 0
    print(format_stats_table({name: describe(graph)}))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    # Record the generating spec so the workload documents its own
    # provenance; a fixed --seed makes the file byte-reproducible.
    meta: dict[str, object] = {"seed": args.seed}
    if args.dataset is not None:
        meta["dataset"] = args.dataset
    else:
        meta["edges"] = str(args.edges)
    if args.scale is not None:
        meta["scale"] = args.scale
    write_edge_list(graph, args.output, meta=meta)
    print(
        f"wrote {graph.number_of_nodes()} nodes / "
        f"{graph.number_of_edges()} edges to {args.output}"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import logging

    from repro.obs.trace import TRACER
    from repro.service.app import ServiceApp
    from repro.service.http import make_server

    # Access logs (repro.service at INFO) need a handler to be seen;
    # json lines stay unadorned so each stderr line is one JSON object.
    logger = logging.getLogger("repro.service")
    if not logger.handlers:
        handler = logging.StreamHandler()
        if args.log_format == "text":
            handler.setFormatter(
                logging.Formatter("%(asctime)s %(levelname)s %(message)s")
            )
        logger.addHandler(handler)
    logger.setLevel(logging.INFO)
    # Jobs trace their solves under the job id so GET /traces/{job_id}
    # can serve the span tree; --no-trace opts the service out.
    if args.no_trace:
        TRACER.disable()
    else:
        TRACER.enable()
    # Warm knobs bind process-wide here (not thread-scoped): jobs warm
    # graphs from pool threads, which would never see a scoped override
    # made on the boot thread.
    if args.reach_block is not None or args.warm_workers is not None:
        from repro.propagation.reach import (
            set_reach_block,
            set_warm_workers,
        )

        if args.reach_block is not None:
            set_reach_block(args.reach_block)
        if args.warm_workers is not None:
            set_warm_workers(args.warm_workers)
    app = ServiceApp(
        workers=args.workers,
        pool=args.pool,
        cache_entries=args.cache_entries,
        cache_bytes=args.cache_bytes,
        max_graphs=args.max_graphs,
        world_workers=args.world_workers,
        persist_dir=args.persist_dir,
    )
    for spec in args.preload:
        entry, _ = app.store.register_dataset(spec)
        print(f"preloaded {entry.name} as {entry.digest[:12]}")
    server = make_server(
        app,
        args.host,
        args.port,
        verbose=args.verbose,
        log_format=args.log_format,
    )
    # Ephemeral binds (--port 0) print the real port; scripts parse this.
    print(
        f"filter-placement service listening on "
        f"http://{args.host}:{server.port}",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.shutdown()
        server.server_close()
        app.close()
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.runner import main as runner_main

    forwarded = list(args.names)
    if args.fast:
        forwarded.append("--fast")
    if args.scale is not None:
        forwarded.extend(["--scale", str(args.scale)])
    forwarded.extend(["--seed", str(args.seed)])
    forwarded.extend(["--backend", args.backend])
    forwarded.extend(["--strategy", args.strategy])
    forwarded.extend(["--model", args.model])
    forwarded.extend(["--edge-prob", str(args.edge_prob)])
    # The runner's own --trials is the experiments' repetition knob, so
    # the Monte-Carlo sample count travels under a distinct name.
    forwarded.extend(["--mc-trials", str(args.trials)])
    with _observed(args):
        return runner_main(forwarded)


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.compare import compare_documents, format_comparison
    from repro.bench.harness import render_records, run_suite
    from repro.bench.results import (
        build_document,
        load_bench_json,
        write_document,
    )
    from repro.bench.scenarios import get_suite

    if args.fail_on_regression is not None:
        if args.compare is None:
            print(
                "error: --fail-on-regression requires --compare "
                "(there is no prior to regress against)",
                file=sys.stderr,
            )
            return 2
        if args.fail_on_regression <= 1.0:
            print(
                "error: --fail-on-regression must exceed 1.0 "
                "(it is a current/prior slowdown ratio)",
                file=sys.stderr,
            )
            return 2
    # Fail fast on an unwritable --out before spending minutes on the
    # suite; the write itself is still guarded below for late failures.
    out_parent = os.path.dirname(os.path.abspath(args.out))
    if not os.path.isdir(out_parent):
        print(
            f"error: output directory {out_parent!r} does not exist",
            file=sys.stderr,
        )
        return 2
    # Load the prior before writing --out: the two may be the same path
    # (the committed BENCH.json trajectory file is compared in place).
    prior = None
    if args.compare is not None:
        try:
            prior = load_bench_json(args.compare)
        except (OSError, ValueError) as exc:
            print(
                f"error: cannot load prior bench file {args.compare!r}: {exc}",
                file=sys.stderr,
            )
            return 2
    scenarios = get_suite(args.suite, backends=args.backends, seed=args.seed)
    if args.model != "deterministic":
        from repro.bench.scenarios import apply_model

        scenarios = apply_model(
            scenarios,
            model=args.model,
            edge_prob=args.edge_prob,
            trials=args.trials,
        )
    if args.workers < 1:
        print("error: --workers must be at least 1", file=sys.stderr)
        return 2
    # --workers scopes an ambient world-shard pool over the whole run;
    # cells that pin their own worker count (the parallel suite) rebind
    # the scope per-cell inside the harness and therefore win.
    from repro.propagation.parallel import use_world_workers

    with _warm_scoped(args), _observed(args), use_world_workers(args.workers):
        records = run_suite(
            scenarios,
            repeats=args.repeats,
            progress=None if args.quiet else print,
        )
    print()
    print(render_records(records))
    doc = build_document(
        records,
        meta={
            "suite": args.suite,
            "repeats": args.repeats,
            "seed": args.seed,
            "workers": args.workers,
        },
    )
    report = None
    if prior is not None:
        report = compare_documents(
            prior, doc, regression_ratio=args.fail_on_regression or 1.5
        )
    # A failing gate must not clobber the baseline it just compared
    # against (an immediate re-run would self-compare and pass): park the
    # regressed results next to it instead.  Beyond regressions/drift,
    # the gate also rejects runs it cannot meaningfully compare: zero
    # overlapping cells (stale baseline after a suite/seed change),
    # mismatched --repeats (best-of-N timings are not comparable across
    # N), and runs that would silently shrink the baseline's coverage.
    gate_reason = None
    if args.fail_on_regression is not None:
        prior_repeats = (prior.get("meta") or {}).get("repeats")
        if report is None or not report.cells:
            gate_reason = (
                "no overlapping scenarios with the prior — stale baseline?"
            )
        elif prior_repeats is not None and prior_repeats != args.repeats:
            gate_reason = (
                f"prior was measured with --repeats {prior_repeats}, "
                f"this run with {args.repeats}"
            )
        elif report.only_in_prior:
            gate_reason = (
                f"this run covers {len(report.only_in_prior)} fewer cell(s) "
                "than the prior baseline"
            )
        elif not report.ok:
            gate_reason = "regressions or result drift detected"
    gate_failed = gate_reason is not None
    out_path = f"{args.out}.rejected" if gate_failed else args.out
    try:
        write_document(out_path, doc)
    except OSError as exc:
        print(
            f"error: cannot write bench file {out_path!r}: {exc}",
            file=sys.stderr,
        )
        return 2
    print(f"\nwrote {len(records)} result(s) to {out_path}")
    if report is not None:
        print()
        print(format_comparison(report))
    if gate_failed:
        print(
            f"regression gate failed: {gate_reason}; baseline {args.out!r} "
            f"left untouched; current results parked at {out_path!r}",
            file=sys.stderr,
        )
        return 3
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="filter-placement",
        description="Filter placement for minimizing information multiplicity "
        "(VLDB 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    place = sub.add_parser("place", help="choose filter nodes")
    _add_graph_arguments(place)
    place.add_argument(
        "--algorithm",
        default="G_All",
        choices=ALGORITHM_NAMES,
    )
    place.add_argument("-k", type=int, required=True, help="filter budget")
    _add_backend_argument(place)
    _add_strategy_argument(place)
    _add_sketch_arguments(place)
    _add_model_arguments(place)
    place.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable payload (identical to the "
        "service's POST /placements result)",
    )
    _add_observability_arguments(place)
    _add_warm_arguments(place)
    place.set_defaults(func=_cmd_place)

    stats = sub.add_parser("stats", help="dataset structural summary")
    _add_graph_arguments(stats)
    stats.add_argument(
        "--json", action="store_true", help="emit machine-readable stats"
    )
    stats.set_defaults(func=_cmd_stats)

    generate = sub.add_parser("generate", help="write dataset edge list")
    _add_graph_arguments(generate)
    generate.add_argument("-o", "--output", required=True)
    generate.set_defaults(func=_cmd_generate)

    experiment = sub.add_parser("experiment", help="run paper experiments")
    experiment.add_argument("names", nargs="+")
    experiment.add_argument("--fast", action="store_true")
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--scale", type=float, default=None)
    _add_backend_argument(experiment)
    _add_strategy_argument(experiment)
    _add_model_arguments(experiment)
    _add_observability_arguments(experiment)
    experiment.set_defaults(func=_cmd_experiment)

    from repro.bench.scenarios import SUITE_NAMES

    bench = sub.add_parser(
        "bench", help="run a benchmark suite, write BENCH.json"
    )
    bench.add_argument(
        "--suite",
        choices=SUITE_NAMES,
        default="default",
        help="scenario matrix to run (default: default)",
    )
    bench.add_argument(
        "-o", "--out", default="BENCH.json", help="results file to write"
    )
    bench.add_argument(
        "--compare",
        default=None,
        metavar="PRIOR_JSON",
        help="prior BENCH.json to diff against",
    )
    bench.add_argument(
        "--fail-on-regression",
        type=float,
        default=None,
        metavar="RATIO",
        help="exit 3 when any cell slows beyond RATIO (requires --compare)",
    )
    bench.add_argument("--repeats", type=int, default=1)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--workers",
        type=int,
        default=1,
        help="world-shard process-pool workers for probabilistic cells "
        "(1 = serial; cells that pin their own worker count win)",
    )
    bench.add_argument(
        "--backends",
        nargs="+",
        choices=("python", "numpy"),
        default=None,
        help="restrict the backend axis (default: all available)",
    )
    bench.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress"
    )
    _add_model_arguments(bench)
    _add_observability_arguments(bench)
    _add_warm_arguments(bench)
    bench.set_defaults(func=_cmd_bench)

    from repro.service.jobs import POOL_KINDS

    serve = sub.add_parser(
        "serve", help="run the placement service (HTTP JSON API)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="TCP port (0 = ephemeral; the bound port is printed)",
    )
    serve.add_argument(
        "--workers", type=int, default=4, help="placement worker pool size"
    )
    serve.add_argument(
        "--world-workers",
        type=int,
        default=1,
        help="process-pool workers sharding Monte-Carlo worlds inside "
        "each placement job (1 = serial evaluation)",
    )
    serve.add_argument(
        "--pool",
        choices=POOL_KINDS,
        default="thread",
        help="worker pool kind: thread shares the resident graphs, "
        "process isolates long big-int exact runs (default: thread)",
    )
    serve.add_argument(
        "--cache-entries",
        type=int,
        default=1024,
        help="placement cache entry bound (default: 1024)",
    )
    serve.add_argument(
        "--cache-bytes",
        type=int,
        default=32 * 1024 * 1024,
        help="placement cache size bound in bytes (default: 32 MiB)",
    )
    serve.add_argument(
        "--max-graphs",
        type=int,
        default=None,
        help="LRU bound on resident graphs (default: unbounded)",
    )
    serve.add_argument(
        "--preload",
        nargs="*",
        default=[],
        metavar="DATASET",
        help="built-in datasets to register at boot",
    )
    serve.add_argument(
        "--persist-dir",
        default=None,
        metavar="DIR",
        help="directory of .fpc plan snapshots: DAG registrations are "
        "persisted there (compiled tables + warmed reach counts) and "
        "memory-mapped back at the next boot",
    )
    _add_warm_arguments(serve)
    from repro.service.http import LOG_FORMATS

    serve.add_argument(
        "--log-format",
        choices=LOG_FORMATS,
        default="text",
        help="access-log rendering: text = human-readable lines, "
        "json = one JSON object per line (default: text)",
    )
    serve.add_argument(
        "--no-trace",
        action="store_true",
        help="disable job tracing (GET /traces/{job_id} will 404)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    serve.set_defaults(func=_cmd_serve)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
