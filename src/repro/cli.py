"""Command-line interface: ``filter-placement`` / ``python -m repro``.

Subcommands
-----------
``place``
    Run a placement algorithm on a dataset (built-in or edge-list file)
    and print the chosen filters with their Filter Ratio.
``stats``
    Structural summary of a dataset.
``experiment``
    Run paper-figure experiments (thin wrapper over
    :mod:`repro.experiments.runner`).
``generate``
    Write a built-in dataset to an edge-list file.

Examples
--------
::

    filter-placement place --dataset quote --algorithm G_All -k 4
    filter-placement place --edges my_graph.txt --algorithm G_Max -k 10
    filter-placement stats --dataset citation --scale 0.1
    filter-placement experiment fig7 --fast
    filter-placement generate --dataset twitter --scale 0.05 -o twitter.txt
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.metrics import describe
from repro.analysis.report import format_stats_table, format_table
from repro.core.objective import filter_ratio, max_objective, phi
from repro.core.registry import ALGORITHM_NAMES, get_algorithm
from repro.datasets.loaders import load_real_dataset
from repro.datasets.registry import DATASET_NAMES, get_dataset
from repro.exceptions import ReproError
from repro.graphs.cgraph import CGraph
from repro.graphs.io import write_edge_list


def _load_graph(args: argparse.Namespace) -> CGraph:
    if args.edges is not None:
        return load_real_dataset(args.edges, initiator=args.initiator)
    kwargs: dict[str, object] = {"seed": args.seed}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    return get_dataset(args.dataset, **kwargs)


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--dataset",
        choices=DATASET_NAMES,
        help="built-in dataset name",
    )
    group.add_argument("--edges", help="edge-list file (one 'u v' per line)")
    parser.add_argument(
        "--initiator",
        default=None,
        help="source node for edge-list input (default: auto-detect)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=None)


def _cmd_place(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    algorithm = get_algorithm(args.algorithm)
    result = algorithm.place(graph, args.k)
    phi_empty = phi(graph, ())
    f_max = max_objective(graph, phi_empty=phi_empty)
    fr = filter_ratio(
        graph, result.filters, phi_empty=phi_empty, f_max=f_max
    )
    rows = [[str(i + 1), repr(v)] for i, v in enumerate(result.filters)]
    print(format_table(["#", "filter node"], rows))
    print()
    print(f"algorithm      : {result.algorithm}")
    print(f"requested k    : {args.k}")
    print(f"filters chosen : {len(result.filters)}")
    print(f"Phi(empty)     : {phi_empty}")
    print(f"Phi(A)         : {phi(graph, result.filters)}")
    print(f"F(A)           : {phi_empty - phi(graph, result.filters)}")
    print(f"Filter Ratio   : {fr:.4f}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    name = args.dataset or str(args.edges)
    print(format_stats_table({name: describe(graph)}))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    write_edge_list(graph, args.output)
    print(
        f"wrote {graph.number_of_nodes()} nodes / "
        f"{graph.number_of_edges()} edges to {args.output}"
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.runner import main as runner_main

    forwarded = list(args.names)
    if args.fast:
        forwarded.append("--fast")
    if args.scale is not None:
        forwarded.extend(["--scale", str(args.scale)])
    forwarded.extend(["--seed", str(args.seed)])
    return runner_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="filter-placement",
        description="Filter placement for minimizing information multiplicity "
        "(VLDB 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    place = sub.add_parser("place", help="choose filter nodes")
    _add_graph_arguments(place)
    place.add_argument(
        "--algorithm",
        default="G_All",
        choices=ALGORITHM_NAMES,
    )
    place.add_argument("-k", type=int, required=True, help="filter budget")
    place.set_defaults(func=_cmd_place)

    stats = sub.add_parser("stats", help="dataset structural summary")
    _add_graph_arguments(stats)
    stats.set_defaults(func=_cmd_stats)

    generate = sub.add_parser("generate", help="write dataset edge list")
    _add_graph_arguments(generate)
    generate.add_argument("-o", "--output", required=True)
    generate.set_defaults(func=_cmd_generate)

    experiment = sub.add_parser("experiment", help="run paper experiments")
    experiment.add_argument("names", nargs="+")
    experiment.add_argument("--fast", action="store_true")
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--scale", type=float, default=None)
    experiment.set_defaults(func=_cmd_experiment)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
