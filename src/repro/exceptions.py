"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  The finer-grained
subclasses distinguish the three failure families that matter in practice:
malformed graphs, invalid algorithm parameters, and propagation that cannot
terminate (cycles reachable from a source under the deterministic relay
model).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphStructureError(ReproError):
    """The supplied graph violates a structural requirement.

    Examples: a DAG-only routine received a cyclic graph, a c-tree routine
    received a non-tree, a node id was referenced that is not in the graph.
    """


class CyclicGraphError(GraphStructureError):
    """A directed cycle was found where an acyclic graph was required."""


class MissingNodeError(GraphStructureError):
    """A referenced node id does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class MissingEdgeError(GraphStructureError):
    """A referenced edge does not exist in the graph.

    Distinct from :class:`MissingNodeError`: both endpoints may well be
    present — the *connection* is what is missing (e.g. an edge-probability
    mapping keyed by an edge the graph does not contain).
    """

    def __init__(self, edge: object) -> None:
        try:
            u, v = edge  # type: ignore[misc]
            message = f"edge {u!r} -> {v!r} is not in the graph"
        except (TypeError, ValueError):
            message = f"edge {edge!r} is not in the graph"
        super().__init__(message)
        self.edge = edge


class MissingSourceError(GraphStructureError):
    """An operation needing at least one source found none."""


class ParameterError(ReproError, ValueError):
    """An algorithm received an invalid parameter (e.g. negative ``k``)."""


class DivergentPropagationError(ReproError):
    """Deterministic propagation would relay infinitely many copies.

    Raised by the message-passing simulator when an item reaches a directed
    cycle and no filter breaks the loop (see Theorem 1 of the paper, whose
    SetCover gadget relies on exactly this blow-up).
    """

    def __init__(self, message: str = "", *, steps: int | None = None) -> None:
        if not message:
            message = "propagation did not terminate (cycle reachable from a source)"
        if steps is not None:
            message = f"{message} after {steps} relay steps"
        super().__init__(message)
        self.steps = steps
