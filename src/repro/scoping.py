"""A process-wide default with thread-local override scopes.

Both registries — propagation backends and execution strategies — need
the same shape: one process-wide default, overridable for a ``with``
block *on the current thread only*, so the service's concurrent
placement jobs can each pin their own backend/strategy without leaking
into one another.  :class:`ScopedDefault` is that shape, written once.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from contextlib import contextmanager
from typing import Generic, TypeVar

T = TypeVar("T")


class ScopedDefault(Generic[T]):
    """One default value, with nestable per-thread override scopes.

    Reads resolve to the innermost active :meth:`scoped` block on the
    calling thread, falling back to the process-wide value set at
    construction or via :meth:`set_global`.
    """

    def __init__(self, initial: T) -> None:
        self._global = initial
        self._local = threading.local()

    def _stack(self) -> list[T]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def get(self) -> T:
        """The effective value for the calling thread."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else self._global

    def set_global(self, value: T) -> None:
        """Set the process-wide fallback (all threads, outside scopes)."""
        self._global = value

    def get_global(self) -> T:
        """The process-wide fallback, ignoring any active scope."""
        return self._global

    @contextmanager
    def scoped(self, value: T) -> Iterator[T]:
        """Override the value for a ``with`` block on this thread only."""
        stack = self._stack()
        stack.append(value)
        try:
            yield value
        finally:
            stack.pop()
