"""Graph traversals used throughout the library.

These are deliberately implemented iteratively (no recursion) so they work on
the paper-scale graphs — the Twitter-like cascade has ~90k nodes, far beyond
CPython's default recursion limit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable

from repro.exceptions import MissingNodeError
from repro.graphs.cgraph import CGraph

Node = Hashable


def topological_order(graph: CGraph) -> tuple[Node, ...]:
    """A topological order of ``graph``'s nodes (Kahn's algorithm).

    Raises :class:`~repro.exceptions.CyclicGraphError` on cyclic input.
    This simply defers to the cached order on the graph object; it exists as
    a free function because call sites read more naturally with it.
    """
    return graph.topological_order()


def reachable_from(graph: CGraph, roots: Node | list[Node]) -> set[Node]:
    """All nodes reachable from ``roots`` by directed paths (roots included)."""
    if isinstance(roots, list):
        frontier = list(roots)
    else:
        frontier = [roots]
    for root in frontier:
        if root not in graph:
            raise MissingNodeError(root)
    seen: set[Node] = set(frontier)
    while frontier:
        node = frontier.pop()
        for child in graph.successors(node):
            if child not in seen:
                seen.add(child)
                frontier.append(child)
    return seen


def bfs_levels(graph: CGraph, root: Node) -> dict[Node, int]:
    """Map each node reachable from ``root`` to its BFS level (root = 0).

    The Twitter dataset of the paper was collected as a six-level BFS crawl;
    the twitter-like generator and its tests use this to check level shape.
    """
    if root not in graph:
        raise MissingNodeError(root)
    level = {root: 0}
    queue: deque[Node] = deque([root])
    while queue:
        node = queue.popleft()
        for child in graph.successors(node):
            if child not in level:
                level[child] = level[node] + 1
                queue.append(child)
    return level


@dataclass
class DfsResult:
    """Outcome of a depth-first traversal from a single root.

    Attributes
    ----------
    discovery:
        ``discovery[v]`` is the DFS discovery time of ``v`` — the paper's
        ``σ(v)`` in Section 4.3.
    finish:
        ``finish[v]`` is the DFS finishing time.
    tree_edges:
        The edges of the DFS tree ``T`` in the order they were used.
    parent:
        ``parent[v]`` is ``v``'s parent in the DFS tree (roots map to None).
    """

    discovery: dict[Node, int] = field(default_factory=dict)
    finish: dict[Node, int] = field(default_factory=dict)
    tree_edges: list[tuple[Node, Node]] = field(default_factory=list)
    parent: dict[Node, Node | None] = field(default_factory=dict)

    def is_ancestor(self, u: Node, v: Node) -> bool:
        """True when ``u`` is an ancestor of ``v`` in the DFS forest.

        Uses the classic parenthesis property of discovery/finish times.
        Every node is an ancestor of itself.
        """
        return (
            self.discovery[u] <= self.discovery[v]
            and self.finish[v] <= self.finish[u]
        )


def dfs_forest(graph: CGraph, roots: list[Node]) -> DfsResult:
    """Iterative depth-first search from ``roots`` (in order).

    Children are explored in adjacency order, so the traversal — and hence
    the discovery times the ``Acyclic`` algorithm depends on — is fully
    deterministic for a given graph.
    """
    result = DfsResult()
    clock = 0
    for root in roots:
        if root not in graph:
            raise MissingNodeError(root)
        if root in result.discovery:
            continue
        result.parent[root] = None
        # Stack holds (node, iterator over remaining children).
        result.discovery[root] = clock
        clock += 1
        stack: list[tuple[Node, int]] = [(root, 0)]
        while stack:
            node, child_index = stack[-1]
            children = graph.successors(node)
            advanced = False
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in result.discovery:
                    stack[-1] = (node, child_index)
                    result.discovery[child] = clock
                    clock += 1
                    result.parent[child] = node
                    result.tree_edges.append((node, child))
                    stack.append((child, 0))
                    advanced = True
                    break
            else:
                stack[-1] = (node, child_index)
            if not advanced and child_index >= len(children):
                result.finish[node] = clock
                clock += 1
                stack.pop()
    return result


def longest_path_length(graph: CGraph) -> int:
    """Number of edges on a longest directed path in a DAG.

    Used by dataset tests to sanity-check generated level structure.
    Raises on cyclic input.
    """
    order = graph.topological_order()
    best: dict[Node, int] = {v: 0 for v in order}
    for v in order:
        for child in graph.successors(v):
            if best[v] + 1 > best[child]:
                best[child] = best[v] + 1
    return max(best.values(), default=0)


def count_paths_between(graph: CGraph, origin: Node, target: Node) -> int:
    """``#paths(origin, target)``: the number of distinct directed paths.

    This is the quantity the paper's ``plist`` bookkeeping tracks.  A
    single topological pass computes it exactly on DAGs; counts can grow
    exponentially, which Python integers absorb without overflow.
    """
    if origin not in graph:
        raise MissingNodeError(origin)
    if target not in graph:
        raise MissingNodeError(target)
    order = graph.topological_order()
    paths: dict[Node, int] = {v: 0 for v in order}
    paths[origin] = 1
    for v in order:
        if paths[v] == 0:
            continue
        for child in graph.successors(v):
            paths[child] += paths[v]
        if v == target:
            break
    return paths[target] if origin != target else 1


def strongly_connected_components(graph: CGraph) -> list[set[Node]]:
    """Tarjan's strongly connected components, iteratively.

    Needed by the general-graph pipeline to report which cycles forced the
    ``Acyclic`` pre-processing step to drop edges.
    """
    index_counter = 0
    index: dict[Node, int] = {}
    lowlink: dict[Node, int] = {}
    on_stack: set[Node] = set()
    stack: list[Node] = []
    components: list[set[Node]] = []

    for start in graph.nodes():
        if start in index:
            continue
        work: list[tuple[Node, int]] = [(start, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = index_counter
                lowlink[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack.add(node)
            children = graph.successors(node)
            recurred = False
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in index:
                    work[-1] = (node, child_index)
                    work.append((child, 0))
                    recurred = True
                    break
                if child in on_stack and index[child] < lowlink[node]:
                    lowlink[node] = index[child]
            if recurred:
                continue
            work[-1] = (node, child_index)
            if child_index >= len(children):
                work.pop()
                if work:
                    parent = work[-1][0]
                    if lowlink[node] < lowlink[parent]:
                        lowlink[parent] = lowlink[node]
                if lowlink[node] == index[node]:
                    component: set[Node] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    components.append(component)
    return components
