"""The million-node scale tier: streamed ingestion and on-disk graphs.

The :class:`~repro.graphs.cgraph.CGraph` pipeline materializes a python
edge list, per-node tuple adjacency and a dict index — hundreds of bytes
per edge, which caps it around matrix scale.  This module grows the
graph layer past that in three pieces:

* :func:`compile_edge_stream` — compile straight from an edge
  *iterator* into :meth:`CompiledGraph.from_tables
  <repro.graphs.compiled.CompiledGraph.from_tables>`: node ids are
  interned to ``int32`` on the fly (or taken as-is via ``num_nodes``,
  the identity fast path the generators use), edges accumulate in two
  flat ``array('i')`` buffers, and the CSR is built by NumPy stable
  sorts (a pure-python counting build mirrors it bit-for-bit without
  NumPy).  No python edge list ever exists.
* :func:`scale_dag` / :func:`scale_dag_edges` — a seeded SNAP-style
  layered-DAG generator whose edge stream is a pure function of
  ``(scale, seed)``: ``scale=1.0`` is ``n = 10^5``, ``scale=10.0`` is
  ``n = 10^6``.  Edges always point from lower to higher node id, so
  the stream is acyclic by construction and never needs buffering.
* :func:`save_compiled` / :func:`load_compiled` — a ``.fpc`` on-disk
  layout (one directory: ``meta.json`` + raw little-endian arrays) that
  persists the CSR, the topo levelization and the cached reach counts,
  and loads back as ``np.memmap`` views so a million-node graph opens
  in milliseconds and its tables live in the page cache, not the heap.
  :meth:`CompiledGraph.nbytes_split` reports those tables under
  ``"mapped"``.

:class:`StreamedGraph` is the thin graph-protocol face over a
table-built :class:`~repro.graphs.compiled.CompiledGraph` — enough of
the :class:`CGraph` surface (``sources``, ``number_of_nodes``,
``compiled()``, adjacency accessors) for the placement algorithms and
backends to consume it unchanged.
"""

from __future__ import annotations

import json
import sys
from array import array
from collections.abc import Iterable, Iterator
from math import sqrt
from pathlib import Path
from typing import Hashable

from repro.exceptions import (
    GraphStructureError,
    MissingNodeError,
    ParameterError,
)
from repro.graphs.compiled import CompiledGraph
from repro.graphs.io import EdgeListStream
from repro.sketches.hashing import hash_stream

try:  # CSR sort fast path; every entry point works without it.
    import numpy as _np
except Exception:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

Node = Hashable

#: ``.fpc`` directory format identifier (bump on layout changes).
FPC_FORMAT = "fpc-1"

#: Maximum interned node count of the int32 tier.
_INT32_NODES = 2**31 - 1


class StreamedGraph:
    """A graph that exists only as compiled tables.

    Produced by :func:`compile_edge_stream`, :func:`scale_dag` and
    :func:`load_compiled`; holds no edge list, no adjacency dicts and
    (for identity-interned graphs) not even a node list.  Exposes the
    slice of the :class:`~repro.graphs.cgraph.CGraph` protocol the
    placement stack actually touches; everything routes through the
    compiled tables.  Like ``CGraph``, instances are immutable.
    """

    __slots__ = ("_compiled", "_sources_cache", "__weakref__")

    def __init__(self) -> None:
        self._compiled: CompiledGraph | None = None
        self._sources_cache: frozenset | None = None

    def compiled(self) -> CompiledGraph:
        """The backing :class:`CompiledGraph` (no compile step: it *is*
        the graph)."""
        return self._compiled

    @property
    def sources(self) -> frozenset:
        """The item-generating nodes, as user nodes."""
        if self._sources_cache is None:
            compiled = self._compiled
            nodes = compiled.nodes
            self._sources_cache = frozenset(
                nodes[s] for s in compiled.source_ids
            )
        return self._sources_cache

    @property
    def sources_explicit(self) -> bool:
        """Table-built graphs always carry a pinned source set."""
        return True

    def number_of_nodes(self) -> int:
        return self._compiled.n

    def number_of_edges(self) -> int:
        return self._compiled.m

    def nodes(self):
        """All user nodes in interned-id order (a ``range`` when the
        graph is identity-interned)."""
        return self._compiled.nodes

    def edges(self) -> Iterator[tuple[Node, Node]]:
        """Yield edges in CSR order without materializing them."""
        compiled = self._compiled
        nodes = compiled.nodes
        offsets = compiled.out_offsets
        targets = compiled.out_targets
        for u in range(compiled.n):
            u_node = nodes[u]
            for e in range(offsets[u], offsets[u + 1]):
                yield (u_node, nodes[int(targets[e])])

    def successors(self, node: Node) -> tuple:
        compiled = self._compiled
        i = compiled.to_id(node)
        offsets, targets = compiled.out_offsets, compiled.out_targets
        nodes = compiled.nodes
        return tuple(
            nodes[int(targets[e])]
            for e in range(offsets[i], offsets[i + 1])
        )

    def predecessors(self, node: Node) -> tuple:
        compiled = self._compiled
        i = compiled.to_id(node)
        offsets, sources = compiled.in_offsets, compiled.in_sources
        nodes = compiled.nodes
        return tuple(
            nodes[int(sources[e])]
            for e in range(offsets[i], offsets[i + 1])
        )

    def out_degree(self, node: Node) -> int:
        compiled = self._compiled
        return int(compiled.out_degree[compiled.to_id(node)])

    def in_degree(self, node: Node) -> int:
        compiled = self._compiled
        return int(compiled.in_degree[compiled.to_id(node)])

    def merge_nodes(self) -> tuple:
        """Nodes with in-degree > 1 and at least one outgoing edge."""
        compiled = self._compiled
        nodes = compiled.nodes
        return tuple(nodes[i] for i in compiled.merge_ids)

    def is_dag(self) -> bool:
        return self._compiled.is_dag

    def __contains__(self, node: Node) -> bool:
        try:
            self._compiled.to_id(node)
        except MissingNodeError:
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        c = self._compiled
        return (
            f"StreamedGraph(n={c.n}, m={c.m}, "
            f"sources={len(c.source_ids)}, dag={c.is_dag})"
        )


def _wrap_tables(
    *,
    n: int,
    out_offsets,
    out_targets,
    in_offsets,
    in_sources,
    source_ids,
    nodes=None,
    levels=None,
    mapped=None,
) -> StreamedGraph:
    """Build the StreamedGraph ↔ CompiledGraph pair (weakly linked)."""
    graph = StreamedGraph()
    compiled = CompiledGraph.from_tables(
        n=n,
        out_offsets=out_offsets,
        out_targets=out_targets,
        in_offsets=in_offsets,
        in_sources=in_sources,
        source_ids=source_ids,
        nodes=nodes,
        graph=graph,
        levels=levels,
        mapped=mapped,
    )
    graph._compiled = compiled
    return graph


# ----------------------------------------------------------------------
# Streamed compilation
# ----------------------------------------------------------------------


def compile_edge_stream(
    edges: Iterable[tuple[Node, Node]],
    *,
    sources: Iterable[Node] | None = None,
    isolated: Iterable[Node] = (),
    num_nodes: int | None = None,
) -> StreamedGraph:
    """Compile an edge iterator without materializing an edge list.

    Edges stream once into two flat ``int32`` buffers; node ids are
    interned in first-seen ``(u, v)`` order — exactly
    :class:`~repro.graphs.cgraph.CGraph`'s node order, so compiling the
    same edges here or through ``CGraph(...).compiled()`` yields
    identical tables.  ``num_nodes`` switches to the identity fast
    path: node ids must already be ints in ``[0, num_nodes)`` and are
    used as-is (``nodes`` becomes a memory-free ``range``) — the
    generators' and ``.fpc`` files' case.

    ``sources`` pins the source set (defaulting to the in-degree-zero
    nodes, like ``CGraph``); ``isolated`` adds edge-free nodes.
    Self-loops and duplicate edges raise
    :class:`~repro.exceptions.GraphStructureError`, unknown sources
    :class:`~repro.exceptions.MissingNodeError` — the same contracts as
    the materialized path.
    """
    us = array("i")
    vs = array("i")

    if num_nodes is not None:
        n = int(num_nodes)
        if n < 0 or n > _INT32_NODES:
            raise ParameterError(
                f"num_nodes={num_nodes!r} outside the int32 tier [0, 2^31)"
            )
        for u, v in edges:
            if not (isinstance(u, int) and 0 <= u < n):
                raise MissingNodeError(u)
            if not (isinstance(v, int) and 0 <= v < n):
                raise MissingNodeError(v)
            if u == v:
                raise GraphStructureError(
                    f"self-loop {u!r} -> {v!r} is not allowed in a c-graph"
                )
            us.append(u)
            vs.append(v)
        nodes = None
        node_list = range(n)
    else:
        index: dict[Node, int] = {}
        node_list = []
        append_node = node_list.append
        get_id = index.get
        for u, v in edges:
            iu = get_id(u)
            if iu is None:
                iu = index[u] = len(node_list)
                append_node(u)
            iv = get_id(v)
            if iv is None:
                iv = index[v] = len(node_list)
                append_node(v)
            if iu == iv:
                raise GraphStructureError(
                    f"self-loop {u!r} -> {v!r} is not allowed in a c-graph"
                )
            us.append(iu)
            vs.append(iv)
        for node in isolated:
            if node not in index:
                index[node] = len(node_list)
                append_node(node)
        n = len(node_list)
        if n > _INT32_NODES:  # pragma: no cover - 2^31 nodes
            raise ParameterError("graph exceeds the int32 interning tier")
        nodes = node_list

    m = len(us)
    if _np is not None:
        tables = _csr_from_buffers_numpy(n, m, us, vs, node_list)
    else:
        tables = _csr_from_buffers_python(n, m, us, vs, node_list)
    out_offsets, out_targets, in_offsets, in_sources = tables

    if sources is None:
        if _np is not None:
            indeg = in_offsets[1:] - in_offsets[:-1]
            source_ids = tuple(int(i) for i in (indeg == 0).nonzero()[0])
        else:
            source_ids = tuple(
                i
                for i in range(n)
                if in_offsets[i + 1] == in_offsets[i]
            )
    else:
        if num_nodes is not None:
            ids = set()
            for s in sources:
                if not (isinstance(s, int) and 0 <= s < n):
                    raise MissingNodeError(s)
                ids.add(s)
        else:
            ids = set()
            for s in sources:
                i = index.get(s)
                if i is None:
                    raise MissingNodeError(s)
                ids.add(i)
        source_ids = tuple(sorted(ids))

    return _wrap_tables(
        n=n,
        out_offsets=out_offsets,
        out_targets=out_targets,
        in_offsets=in_offsets,
        in_sources=in_sources,
        source_ids=source_ids,
        nodes=nodes,
    )


def _csr_from_buffers_numpy(n: int, m: int, us: array, vs: array, nodes):
    """Forward + reverse CSR by stable sorts.

    Ordering contract (must match ``CompiledGraph.__init__``): forward
    adjacency groups by ``u`` ascending, keeping input edge order
    within a ``u``; reverse adjacency lists each node's parents by
    ascending interned id.  A stable sort on ``u`` gives the first; a
    stable re-sort of that array on ``v`` gives the second, because
    within one ``v`` the u-sorted order *is* ascending-``u`` order.
    """
    np = _np
    if m == 0:
        empty_off = np.zeros(n + 1, dtype=np.int64)
        empty = np.empty(0, dtype=np.int32)
        return empty_off, empty, empty_off.copy(), empty
    us_a = np.frombuffer(us, dtype=np.int32)
    vs_a = np.frombuffer(vs, dtype=np.int32)
    loops = us_a == vs_a
    if loops.any():
        u = nodes[int(us_a[int(loops.nonzero()[0][0])])]
        raise GraphStructureError(
            f"self-loop {u!r} -> {u!r} is not allowed in a c-graph"
        )
    key = us_a.astype(np.int64) * n + vs_a
    key.sort()
    dup = (key[1:] == key[:-1]).nonzero()[0]
    if len(dup):
        k = int(key[int(dup[0])])
        raise GraphStructureError(
            f"duplicate edge {nodes[k // n]!r} -> {nodes[k % n]!r}"
        )
    order_u = np.argsort(us_a, kind="stable")
    out_targets = np.ascontiguousarray(vs_a[order_u])
    sorted_us = us_a[order_u]
    out_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(us_a, minlength=n), out=out_offsets[1:])
    order_v = np.argsort(out_targets, kind="stable")
    in_sources = np.ascontiguousarray(sorted_us[order_v])
    in_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(vs_a, minlength=n), out=in_offsets[1:])
    return out_offsets, out_targets, in_offsets, in_sources


def _csr_from_buffers_python(n: int, m: int, us: array, vs: array, nodes):
    """The NumPy-free CSR build: counting sort, same ordering contract."""
    out_counts = [0] * n
    in_counts = [0] * n
    seen: set[int] = set()
    for e in range(m):
        u = us[e]
        v = vs[e]
        k = u * n + v
        if k in seen:
            raise GraphStructureError(
                f"duplicate edge {nodes[u]!r} -> {nodes[v]!r}"
            )
        seen.add(k)
        out_counts[u] += 1
        in_counts[v] += 1
    del seen
    out_offsets = [0] * (n + 1)
    in_offsets = [0] * (n + 1)
    for i in range(n):
        out_offsets[i + 1] = out_offsets[i] + out_counts[i]
        in_offsets[i + 1] = in_offsets[i] + in_counts[i]
    # Forward CSR: group by u (stable, so input order survives within u).
    fill = list(out_offsets[:-1])
    out_targets = array("i", bytes(4 * m))
    for e in range(m):
        u = us[e]
        out_targets[fill[u]] = vs[e]
        fill[u] += 1
    # Reverse CSR: walk the forward CSR in ascending u, appending to each
    # target's slot — parents come out ascending by id, exactly like
    # ``CompiledGraph.__init__``'s pred pass.
    fill = list(in_offsets[:-1])
    in_sources = array("i", bytes(4 * m))
    for u in range(n):
        for e in range(out_offsets[u], out_offsets[u + 1]):
            v = out_targets[e]
            in_sources[fill[v]] = u
            fill[v] += 1
    return out_offsets, out_targets, in_offsets, in_sources


def compile_edge_list(
    path: str | Path,
    *,
    sources: Iterable[Node] | None = None,
) -> StreamedGraph:
    """Stream an edge-list file (text or ``.gz``) into compiled tables.

    The chunked reader honors every header directive: ``# sources:``
    pins the source set (unless ``sources`` overrides it) and
    ``# isolated:`` restores edge-free nodes — the same round-trip
    :func:`repro.graphs.io.read_edge_list` guarantees, without the
    intermediate :class:`CGraph`.
    """
    stream = EdgeListStream(path)
    us = array("i")
    vs = array("i")
    index: dict[Node, int] = {}
    node_list: list[Node] = []

    def intern(x: Node) -> int:
        i = index.get(x)
        if i is None:
            i = index[x] = len(node_list)
            node_list.append(x)
        return i

    for u, v in stream.edges():
        iu = intern(u)
        iv = intern(v)
        if iu == iv:
            raise GraphStructureError(
                f"self-loop {u!r} -> {v!r} is not allowed in a c-graph"
            )
        us.append(iu)
        vs.append(iv)
    # Directives are complete once the stream is exhausted.
    for node in stream.isolated:
        intern(node)
    n = len(node_list)
    m = len(us)
    if _np is not None:
        tables = _csr_from_buffers_numpy(n, m, us, vs, node_list)
    else:
        tables = _csr_from_buffers_python(n, m, us, vs, node_list)
    out_offsets, out_targets, in_offsets, in_sources = tables
    if sources is None and stream.sources:
        sources = stream.sources
    if sources is None:
        source_ids = tuple(
            i for i in range(n) if in_offsets[i + 1] == in_offsets[i]
        )
    else:
        ids = set()
        for s in sources:
            i = index.get(s)
            if i is None:
                raise MissingNodeError(s)
            ids.add(i)
        source_ids = tuple(sorted(ids))
    return _wrap_tables(
        n=n,
        out_offsets=out_offsets,
        out_targets=out_targets,
        in_offsets=in_offsets,
        in_sources=in_sources,
        source_ids=source_ids,
        nodes=node_list,
    )


# ----------------------------------------------------------------------
# The scale-dag generator
# ----------------------------------------------------------------------


def scale_dag_size(scale: float) -> int:
    """Node count of the scale-dag at ``scale`` (``1.0`` → ``10^5``)."""
    if scale <= 0:
        raise ParameterError(f"scale must be positive, got {scale!r}")
    return max(10, int(round(100_000 * scale)))


#: Second splitmix stream for parent draws (decorrelated from routing).
_PARENT_STREAM = 0x632BE59BD9B4E019


def scale_dag_edges(
    scale: float = 1.0,
    seed: int = 7,
) -> Iterator[tuple[int, int]]:
    """The scale-dag's edge stream: seeded, layered, id-ascending.

    Nodes ``0..n-1`` partition into ``Θ(√scale)`` contiguous levels.
    Level 0 is parentless; in later levels ~30% of nodes are
    *spontaneous* (new roots — keeping the source count a constant
    fraction of ``n``, the regime the paper's trace datasets show) and
    the rest draw 1–5 distinct parents from a nearby earlier level.
    Every edge satisfies ``u < v``, so the stream is acyclic by
    construction and compiles without buffering.  The stream is a pure
    function of ``(scale, seed)`` — byte-reproducible across runs,
    platforms and NumPy availability.
    """
    n = scale_dag_size(scale)
    levels = max(8, int(round(40.0 * sqrt(scale))))
    per = max(1, n // levels)
    parent_seed = seed ^ _PARENT_STREAM
    for v in range(per, n):
        level = min(v // per, levels - 1)
        h = hash_stream(seed, v)
        if h % 1000 < 300:
            continue  # spontaneous: a fresh root
        hp = h >> 10
        degree = 1 + hp % 5
        back = (hp >> 3) % 4
        j = level - 1 - back
        if j < 0:
            j = 0
        lo = j * per
        width = (j + 1) * per - lo  # level j is per wide for j < levels-1
        # Parents come from a narrow window of the parent level rather
        # than the whole of it: nearby nodes share windows, so parent
        # sets overlap and paths re-converge — the information
        # multiplicity the filter-placement objective actually measures.
        window = width if width < 48 else 48
        base = lo + (hp >> 6) % (width - window + 1)
        picked: list[int] = []
        for t in range(degree):
            u = base + hash_stream(parent_seed, (v << 3) | t) % window
            if u in picked:
                continue  # duplicate draw; degree shrinks by one
            picked.append(u)
            yield (u, v)


def scale_dag(scale: float = 1.0, seed: int = 7) -> StreamedGraph:
    """Compile the scale-dag at ``scale`` via the streamed path.

    ``scale=1.0`` is the 10^5-node tier, ``scale=10.0`` the 10^6 one;
    memory stays at the compiled-table footprint (a few int32 words per
    edge) regardless of scale.  Sources default to the in-degree-zero
    nodes: all of level 0 plus every spontaneous node.
    """
    return compile_edge_stream(
        scale_dag_edges(scale, seed), num_nodes=scale_dag_size(scale)
    )


# ----------------------------------------------------------------------
# The .fpc on-disk layout
# ----------------------------------------------------------------------

#: Array-name → (dtype tag, element size) of the fpc layout.
_DTYPE_CODES = {"int32": ("i", 4), "int64": ("q", 8)}


def _write_array(path: Path, values, typecode: str) -> int:
    """Persist one table as raw native-endian words; returns its length."""
    if _np is not None and type(values).__module__.startswith("numpy"):
        dtype = {"i": _np.int32, "q": _np.int64}[typecode]
        arr = _np.ascontiguousarray(values, dtype=dtype)
        with open(path, "wb") as handle:
            handle.write(arr.tobytes())
        return int(arr.shape[0])
    arr = array(typecode, (int(x) for x in values))
    with open(path, "wb") as handle:
        handle.write(arr.tobytes())
    return len(arr)


def save_compiled(
    graph,
    path: str | Path,
    *,
    include_reach: bool = True,
) -> Path:
    """Persist a compiled graph as a ``.fpc`` directory.

    ``graph`` may be a :class:`StreamedGraph`, a
    :class:`~repro.graphs.cgraph.CGraph` or a raw
    :class:`~repro.graphs.compiled.CompiledGraph`.  The directory holds
    ``meta.json`` plus one raw little-endian binary file per table:
    both CSR directions, the source ids, the full topo levelization,
    and — with ``include_reach`` (default) — the cached per-node reach
    counts when the graph has them, so a reloaded graph skips that
    sweep too.  Index arrays are ``int32`` whenever ``n < 2^31``.

    Node identity: identity-interned graphs (``nodes == range(n)``)
    need no node table; int/str node lists persist as ``nodes.json``;
    anything else (tuple-noded derived graphs) is rejected — those
    belong in the JSON graph format.
    """
    compiled = graph if isinstance(graph, CompiledGraph) else graph.compiled()
    target = Path(path)
    target.mkdir(parents=True, exist_ok=True)
    n = compiled.n
    index_code = "i" if n <= _INT32_NODES else "q"
    index_dtype = "int32" if index_code == "i" else "int64"

    nodes_payload = None
    nodes = compiled.nodes
    if not (isinstance(nodes, range) and nodes == range(n)):
        node_list = list(nodes)
        if node_list == list(range(n)):
            nodes_payload = None
        else:
            for node in node_list:
                if not isinstance(node, (int, str)):
                    raise ParameterError(
                        ".fpc supports int/str node ids, got "
                        f"{node!r}; use the JSON graph format"
                    )
            nodes_payload = node_list

    arrays: dict[str, dict] = {}

    def persist(name: str, values, typecode: str) -> None:
        length = _write_array(target / f"{name}.bin", values, typecode)
        arrays[name] = {
            "dtype": "int32" if typecode == "i" else "int64",
            "len": length,
        }

    persist("out_offsets", compiled.out_offsets, "q")
    persist("out_targets", compiled.out_targets, index_code)
    persist("in_offsets", compiled.in_offsets, "q")
    persist("in_sources", compiled.in_sources, index_code)
    persist("source_ids", compiled.source_ids, index_code)
    if compiled.is_dag:
        persist("topo_order", compiled.topo_order, index_code)
        persist("topo_index", compiled.topo_index, index_code)
        persist("depth", compiled.depth, index_code)
        persist("level_offsets", compiled.level_offsets, "q")
    if include_reach and compiled._reach_counts is not None:
        persist("reach_counts", compiled._reach_counts, "q")

    meta = {
        "format": FPC_FORMAT,
        "byteorder": sys.byteorder,
        "n": n,
        "m": compiled.m,
        "is_dag": compiled.is_dag,
        "num_levels": compiled.num_levels,
        "index_dtype": index_dtype,
        "arrays": arrays,
    }
    with open(target / "meta.json", "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=1, sort_keys=True)
    if nodes_payload is not None:
        with open(target / "nodes.json", "w", encoding="utf-8") as handle:
            json.dump(nodes_payload, handle)
    return target


def load_compiled(path: str | Path) -> StreamedGraph:
    """Open a ``.fpc`` directory as a memory-mapped compiled graph.

    With NumPy, every table comes back as a read-only ``np.memmap`` —
    the open is O(1) in the graph size, pages fault in on demand, and
    :meth:`~repro.graphs.compiled.CompiledGraph.nbytes_split` charges
    the tables to the ``"mapped"`` pool.  Without NumPy the arrays load
    resident (``array.array``) — correct, just not lazy.
    """
    source = Path(path)
    meta_path = source / "meta.json"
    try:
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
    except FileNotFoundError:
        raise ParameterError(f"{source}: not a .fpc directory") from None
    if meta.get("format") != FPC_FORMAT:
        raise ParameterError(
            f"{source}: unsupported format {meta.get('format')!r} "
            f"(expected {FPC_FORMAT!r})"
        )
    if meta.get("byteorder") != sys.byteorder:
        raise ParameterError(
            f"{source}: written on a {meta.get('byteorder')}-endian "
            f"machine, this one is {sys.byteorder}-endian"
        )
    n = int(meta["n"])
    arrays = meta["arrays"]
    loaded: dict[str, object] = {}
    mapped: dict[str, int] = {}
    for name, spec in arrays.items():
        file_path = source / f"{name}.bin"
        dtype = spec["dtype"]
        typecode, width = _DTYPE_CODES[dtype]
        expected = int(spec["len"]) * width
        actual = file_path.stat().st_size
        if actual != expected:
            raise ParameterError(
                f"{file_path}: expected {expected} bytes "
                f"({spec['len']} × {dtype}), found {actual}"
            )
        if _np is not None:
            np_dtype = _np.int32 if dtype == "int32" else _np.int64
            if expected:
                table = _np.memmap(
                    file_path, dtype=np_dtype, mode="r"
                )
            else:
                table = _np.empty(0, dtype=np_dtype)
            mapped[name] = expected
        else:
            table = array(typecode)
            if expected:
                with open(file_path, "rb") as handle:
                    table.frombytes(handle.read())
        loaded[name] = table

    nodes = None
    nodes_path = source / "nodes.json"
    if nodes_path.exists():
        with open(nodes_path, "r", encoding="utf-8") as handle:
            nodes = json.load(handle)

    levels = None
    if meta["is_dag"] and "topo_order" in loaded:
        levels = (
            loaded["topo_order"],
            loaded["topo_index"],
            loaded["depth"],
            [int(x) for x in loaded["level_offsets"]],
        )
        # Materialized on load (small); don't double-charge as mapped.
        mapped.pop("level_offsets", None)
    mapped.pop("source_ids", None)  # from_tables copies it to a tuple

    graph = _wrap_tables(
        n=n,
        out_offsets=loaded["out_offsets"],
        out_targets=loaded["out_targets"],
        in_offsets=loaded["in_offsets"],
        in_sources=loaded["in_sources"],
        source_ids=[int(s) for s in loaded["source_ids"]],
        nodes=nodes,
        levels=levels,
        mapped=mapped or None,
    )
    compiled = graph.compiled()
    if "reach_counts" in loaded:
        counts = loaded["reach_counts"]
        # Materialize: the exact sweeps index it per node, and an int
        # list is both faster and honestly charged as resident.
        compiled._reach_counts = [int(c) for c in counts]
        compiled._mapped.pop("reach_counts", None)
    return graph
