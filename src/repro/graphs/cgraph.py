"""The communication graph (c-graph) data structure.

Section 3 of the paper models an information network as a directed graph
``G(V, E)`` in which designated *source* nodes generate items and every other
node blindly relays received copies to all out-neighbours.  :class:`CGraph`
captures exactly that: a simple directed graph plus a set of source nodes.

Design notes
------------
* **Immutability.**  A :class:`CGraph` never changes after construction.
  Algorithms that "modify" a graph (adding a super-source, dropping edges to
  break cycles, ...) build a new instance.  Immutability lets the class cache
  derived data (degree tables, a topological order) safely, which the
  placement algorithms query heavily.
* **Hashable node ids.**  Nodes may be any hashable Python objects: ints,
  strings, tuples.  The dataset generators use ints and short strings.
* **Sources.**  The paper treats sources as the origins of *distinct* items.
  If no explicit source set is given we default to the nodes with in-degree
  zero, which matches every dataset in the paper's evaluation (each has a
  single root after pre-processing).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping, Sequence
from typing import Any

from repro.exceptions import (
    GraphStructureError,
    MissingNodeError,
    MissingSourceError,
    ParameterError,
)

Node = Hashable
Edge = tuple[Node, Node]


class CGraph:
    """An immutable directed communication graph.

    Parameters
    ----------
    edges:
        Iterable of ``(u, v)`` pairs meaning *u relays items to v*.
        Parallel duplicate edges are rejected (the propagation model of the
        paper is defined on simple digraphs); self-loops are rejected because
        a node relaying to itself would loop forever under blind relaying.
    nodes:
        Optional extra nodes that may not appear in any edge (isolated
        nodes are legal and occasionally produced by subgraph operations).
    sources:
        Optional explicit source set.  Defaults to all nodes with in-degree
        zero.  Sources are the nodes that *generate* items; they are allowed
        to have incoming edges when given explicitly (the paper's SetCover
        gadget wires a source into a cyclic core).

    Examples
    --------
    The toy network of Figure 1::

        >>> g = CGraph([
        ...     ("s", "x"), ("s", "y"),
        ...     ("x", "z1"), ("x", "z2"), ("y", "z2"), ("y", "z3"),
        ...     ("z1", "w"), ("z2", "w"), ("z3", "w"),
        ... ])
        >>> sorted(g.sources)
        ['s']
        >>> g.in_degree("z2"), g.out_degree("z2")
        (2, 1)
    """

    __slots__ = (
        "_succ",
        "_pred",
        "_nodes",
        "_sources",
        "_sources_explicit",
        "_num_edges",
        "_topo_cache",
        "_is_dag_cache",
        "_compiled_cache",
        # Weak referencing enables external per-graph caches (the numpy
        # backend's levelized plan adapters) without pinning graphs alive.
        "__weakref__",
    )

    def __init__(
        self,
        edges: Iterable[Edge] = (),
        *,
        nodes: Iterable[Node] = (),
        sources: Iterable[Node] | None = None,
    ) -> None:
        succ: dict[Node, list[Node]] = {}
        pred: dict[Node, list[Node]] = {}
        seen: set[Edge] = set()

        def ensure(node: Node) -> None:
            if node not in succ:
                succ[node] = []
                pred[node] = []

        for u, v in edges:
            if u == v:
                raise GraphStructureError(
                    f"self-loop {u!r} -> {v!r} is not allowed in a c-graph"
                )
            if (u, v) in seen:
                raise GraphStructureError(f"duplicate edge {u!r} -> {v!r}")
            seen.add((u, v))
            ensure(u)
            ensure(v)
            succ[u].append(v)
            pred[v].append(u)

        for node in nodes:
            ensure(node)

        self._succ: dict[Node, tuple[Node, ...]] = {
            u: tuple(vs) for u, vs in succ.items()
        }
        self._pred: dict[Node, tuple[Node, ...]] = {
            v: tuple(us) for v, us in pred.items()
        }
        self._nodes: tuple[Node, ...] = tuple(self._succ)
        self._num_edges = len(seen)

        if sources is None:
            source_set = frozenset(
                node for node in self._nodes if not self._pred[node]
            )
        else:
            source_set = frozenset(sources)
            for s in source_set:
                if s not in self._succ:
                    raise MissingNodeError(s)
        self._sources: frozenset[Node] = source_set
        # Whether the source set was *given* (vs defaulted to in-degree-0
        # nodes).  Derived-graph constructors preserve explicit sources but
        # re-default defaulted ones, so edge edits can promote new roots.
        self._sources_explicit: bool = sources is not None
        self._topo_cache: tuple[Node, ...] | None = None
        self._is_dag_cache: bool | None = None
        self._compiled_cache: "Any | None" = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def sources(self) -> frozenset[Node]:
        """The item-generating nodes."""
        return self._sources

    @property
    def sources_explicit(self) -> bool:
        """True when the source set was given explicitly at construction.

        Defaulted sources (the in-degree-zero nodes) are a *derived*
        property: graphs built from this one by edge edits re-derive them
        instead of pinning this graph's roots.  Explicit sources are part
        of the graph's identity and are carried over.
        """
        return self._sources_explicit

    def nodes(self) -> tuple[Node, ...]:
        """All nodes, in insertion order (stable across runs)."""
        return self._nodes

    def edges(self) -> Iterator[Edge]:
        """Iterate over all ``(u, v)`` edges in insertion order."""
        for u in self._nodes:
            for v in self._succ[u]:
                yield (u, v)

    def successors(self, node: Node) -> tuple[Node, ...]:
        """Out-neighbours of ``node`` (the nodes it relays items to)."""
        try:
            return self._succ[node]
        except KeyError:
            raise MissingNodeError(node) from None

    def predecessors(self, node: Node) -> tuple[Node, ...]:
        """In-neighbours of ``node`` (the nodes it receives items from)."""
        try:
            return self._pred[node]
        except KeyError:
            raise MissingNodeError(node) from None

    def in_degree(self, node: Node) -> int:
        """Number of incoming edges of ``node`` (``din`` in the paper)."""
        return len(self.predecessors(node))

    def out_degree(self, node: Node) -> int:
        """Number of outgoing edges of ``node`` (``dout`` in the paper)."""
        return len(self.successors(node))

    def number_of_nodes(self) -> int:
        return len(self._nodes)

    def number_of_edges(self) -> int:
        return self._num_edges

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._succ and v in self._succ[u]

    def has_node(self, node: Node) -> bool:
        return node in self._succ

    def __contains__(self, node: object) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CGraph(n={self.number_of_nodes()}, m={self.number_of_edges()}, "
            f"sources={len(self._sources)})"
        )

    # ------------------------------------------------------------------
    # Derived node families
    # ------------------------------------------------------------------

    def sinks(self) -> tuple[Node, ...]:
        """Nodes with no outgoing edges."""
        return tuple(v for v in self._nodes if not self._succ[v])

    def merge_nodes(self) -> tuple[Node, ...]:
        """Non-sink nodes with in-degree greater than one.

        Proposition 1 of the paper: placing a filter on *every* merge node
        (and nowhere else) is the unique minimal filter set achieving the
        maximum objective value ``F(V)``.
        """
        return tuple(
            v
            for v in self._nodes
            if len(self._pred[v]) > 1 and self._succ[v]
        )

    def max_degree(self) -> int:
        """``Δ``: the maximum of in- and out-degrees over all nodes."""
        if not self._nodes:
            return 0
        return max(
            max(len(self._succ[v]), len(self._pred[v])) for v in self._nodes
        )

    # ------------------------------------------------------------------
    # Structure queries (cached because the graph is immutable)
    # ------------------------------------------------------------------

    def is_dag(self) -> bool:
        """True when the graph has no directed cycle."""
        if self._is_dag_cache is None:
            self._is_dag_cache = self._compute_topological_order() is not None
        return self._is_dag_cache

    def topological_order(self) -> tuple[Node, ...]:
        """A topological order of the nodes.

        Raises
        ------
        GraphStructureError
            If the graph contains a directed cycle.
        """
        order = self._compute_topological_order()
        if order is None:
            from repro.exceptions import CyclicGraphError

            raise CyclicGraphError("graph contains a directed cycle")
        return order

    def _compute_topological_order(self) -> tuple[Node, ...] | None:
        if self._topo_cache is not None:
            return self._topo_cache
        if self._is_dag_cache is False:
            return None
        indeg = {v: len(self._pred[v]) for v in self._nodes}
        stack = [v for v in self._nodes if indeg[v] == 0]
        order: list[Node] = []
        while stack:
            v = stack.pop()
            order.append(v)
            for u in self._succ[v]:
                indeg[u] -= 1
                if indeg[u] == 0:
                    stack.append(u)
        if len(order) != len(self._nodes):
            self._is_dag_cache = False
            return None
        self._topo_cache = tuple(order)
        self._is_dag_cache = True
        return self._topo_cache

    def compiled(self) -> "Any":
        """The graph's :class:`~repro.graphs.compiled.CompiledGraph` view.

        Built on first access and cached for the life of the graph (safe
        because the graph is immutable) — every layer that sweeps this
        graph shares the one compiled plan.  Derived graphs
        (:meth:`subgraph`, :meth:`reversed`, :meth:`without_edges`, ...)
        are new objects and therefore compile fresh; a stale plan can
        never leak across a structural change.
        """
        if self._compiled_cache is None:
            from repro.graphs.compiled import CompiledGraph

            self._compiled_cache = CompiledGraph(self)
        return self._compiled_cache

    # ------------------------------------------------------------------
    # Constructive operations (return new graphs)
    # ------------------------------------------------------------------

    def with_sources(self, sources: Iterable[Node]) -> "CGraph":
        """A copy of this graph with a different designated source set."""
        return CGraph(self.edges(), nodes=self._nodes, sources=sources)

    def subgraph(self, keep: Iterable[Node]) -> "CGraph":
        """The induced subgraph on ``keep``.

        If this graph's sources were explicit, the result keeps the
        retained ones (defaulting to in-degree-zero nodes only when none
        survive).  Defaulted sources are re-derived on the subgraph, so a
        node whose last in-edge was cut becomes a source instead of the
        parent graph's roots being pinned.
        """
        keep_set = set(keep)
        for node in keep_set:
            if node not in self._succ:
                raise MissingNodeError(node)
        edges = [
            (u, v) for u, v in self.edges() if u in keep_set and v in keep_set
        ]
        surviving_sources = (
            self._sources & keep_set if self._sources_explicit else frozenset()
        )
        return CGraph(
            edges,
            nodes=keep_set,
            sources=surviving_sources if surviving_sources else None,
        )

    def reversed(self) -> "CGraph":
        """The graph with every edge direction flipped.

        The sources of the reversed graph default to its in-degree-zero
        nodes (the sinks of this graph).
        """
        return CGraph(
            ((v, u) for u, v in self.edges()), nodes=self._nodes
        )

    def without_edges(self, drop: Iterable[Edge]) -> "CGraph":
        """A copy of this graph with the edges in ``drop`` removed.

        Explicit sources are preserved; defaulted sources are re-derived,
        so a node that loses its last in-edge is promoted to a source
        rather than left orphaned by the parent's pinned root set.
        """
        drop_set = set(drop)
        for u, v in drop_set:
            if not self.has_edge(u, v):
                raise GraphStructureError(
                    f"cannot drop missing edge {u!r} -> {v!r}"
                )
        kept_sources = self._sources if self._sources_explicit else None
        return CGraph(
            (e for e in self.edges() if e not in drop_set),
            nodes=self._nodes,
            sources=kept_sources,
        )

    def with_edges(self, add: Iterable[Edge]) -> "CGraph":
        """A copy of this graph with the edges in ``add`` inserted.

        Explicit sources are preserved; defaulted sources are re-derived,
        so a root gaining its first in-edge stops being a source.
        """
        new_edges = list(self.edges())
        new_edges.extend(add)
        kept_sources = self._sources if self._sources_explicit else None
        graph = CGraph(new_edges, nodes=self._nodes, sources=kept_sources)
        return graph

    # ------------------------------------------------------------------
    # Interoperability
    # ------------------------------------------------------------------

    def to_networkx(self) -> "Any":
        """Convert to a :class:`networkx.DiGraph`.

        Source membership is recorded in the ``source`` node attribute so a
        round-trip through :meth:`from_networkx` is lossless.
        """
        import networkx as nx

        g = nx.DiGraph()
        for node in self._nodes:
            g.add_node(node, source=node in self._sources)
        g.add_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, graph: "Any") -> "CGraph":
        """Build a :class:`CGraph` from a :class:`networkx.DiGraph`.

        Nodes flagged with a truthy ``source`` attribute become sources; if
        no node carries the attribute, sources default to in-degree-zero
        nodes.
        """
        flagged = [
            node
            for node, data in graph.nodes(data=True)
            if data.get("source", False)
        ]
        return cls(
            graph.edges(),
            nodes=graph.nodes(),
            sources=flagged if flagged else None,
        )

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_adjacency(
        cls,
        adjacency: Mapping[Node, Sequence[Node]],
        *,
        sources: Iterable[Node] | None = None,
    ) -> "CGraph":
        """Build a graph from a ``{node: [successors]}`` mapping."""
        edges = [
            (u, v) for u, children in adjacency.items() for v in children
        ]
        return cls(edges, nodes=adjacency.keys(), sources=sources)

    def single_source(self) -> Node:
        """Return the unique source, or raise.

        Raises
        ------
        MissingSourceError
            If the graph has no source.
        ParameterError
            If the graph has more than one source (the caller should use
            :func:`repro.graphs.ensure_single_source` first).
        """
        if not self._sources:
            raise MissingSourceError("graph has no source node")
        if len(self._sources) > 1:
            raise ParameterError(
                f"graph has {len(self._sources)} sources; expected exactly one"
            )
        return next(iter(self._sources))
