"""The compile-once graph core: interned node ids + shared CSR plans.

Every quantity the placement layers compute — ``Φ`` evaluations, marginal
gains, plists, incremental sessions — is a topological sweep over the same
c-graph, yet historically each layer re-derived its own view of it: the
exact engine walked dict-of-tuples adjacency, the NumPy backend built a
private CSR plan, the incremental sessions built their own topo index
maps, and the service warmed one plan per backend.  :class:`CompiledGraph`
replaces all of that with **one** frozen, integer-interned view, built in
a single pass and cached on the immutable :class:`~repro.graphs.cgraph.CGraph`
(:meth:`~repro.graphs.cgraph.CGraph.compiled`).

Layout
------
Nodes are *interned*: node ``i`` is ``nodes[i]`` and ``index[node] = i``,
with ``i`` running in ``graph.nodes()`` insertion order — the canonical
cross-backend order every tie-break and serialization already uses, so an
index compare *is* a rank compare.  On top of the tables sit:

* ``succ_ids`` / ``pred_ids`` — adjacency as tuples of int tuples, the
  pure-python sweeps' hot-path representation (no hashing, no dict
  traffic);
* ``out_offsets``/``out_targets`` and ``in_offsets``/``in_sources`` —
  the same adjacency as forward and reverse CSR arrays (plain lists), the
  zero-ceremony substrate the NumPy backend's plan adapts;
* ``out_degree`` / ``in_degree`` — degree arrays;
* ``source_ids`` / ``sink_ids`` / ``merge_ids`` — the derived node
  families as ascending index tuples;
* ``topo_order`` / ``topo_index`` / ``depth`` / ``level_offsets`` — a
  cached topological order **partitioned into levels**: ``depth[i]`` is
  the longest-path distance from any root, ``topo_order`` lists node ids
  sorted by ``(depth, id)``, and level ``L`` occupies
  ``topo_order[level_offsets[L]:level_offsets[L + 1]]``.  Every edge
  crosses strictly upward in depth, which is exactly the property the
  levelized vectorized sweeps and the dirty-column wavefronts need.

Cyclic graphs still compile — the structural tables (CSR, degrees,
sources) are well-defined and cheap — but ``is_dag`` is False and the
topological accessors raise :class:`~repro.exceptions.CyclicGraphError`,
mirroring :meth:`CGraph.topological_order`.

The module is dependency-free (plain lists, tuples and dicts) so the
exact python path works — and is tested — in environments without NumPy.
"""

from __future__ import annotations

import sys
import weakref
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING, Hashable

from repro.exceptions import (
    CyclicGraphError,
    MissingEdgeError,
    MissingNodeError,
    ParameterError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Mapping

    from repro.graphs.cgraph import CGraph

Node = Hashable


class EdgeProbabilities:
    """Relay probabilities aligned to one compiled graph's CSR arrays.

    The probabilistic layer's compiled substrate: ``out_probs[e]`` is the
    relay probability of the edge at forward-CSR position ``e`` (the edge
    ``u → out_targets[e]`` with ``u`` given by the offsets), and
    ``in_probs[f]`` the same probabilities in reverse-CSR order.  Built
    once per probability spec and cached on the :class:`CompiledGraph`
    (:meth:`CompiledGraph.edge_probabilities`), so Monte-Carlo samplers
    never re-derive per-edge lookups trial by trial.

    ``unit`` is True when every probability is exactly 1 — the
    deterministic fast path, which the model layer collapses before any
    sampling happens.
    """

    __slots__ = ("out_probs", "in_probs", "unit", "uniform")

    def __init__(
        self,
        out_probs: list[float],
        in_probs: list[float],
        *,
        uniform: float | None,
    ) -> None:
        self.out_probs = out_probs
        self.in_probs = in_probs
        self.uniform = uniform
        self.unit = all(p >= 1.0 for p in out_probs)

    def nbytes(self) -> int:
        """Shallow container memory of the probability tables, in bytes."""
        return sys.getsizeof(self.out_probs) + sys.getsizeof(self.in_probs)


class CompiledGraph:
    """A frozen, integer-interned view of one :class:`CGraph`.

    Instances are built once per graph by :meth:`CGraph.compiled` and
    shared by every consumer — the propagation engines, both backends,
    the incremental gain sessions, the placement algorithms and the
    service's resident-graph store.  All attributes are set at
    construction and must never be mutated; the arrays are plain lists
    only because CPython indexes them fastest.
    """

    __slots__ = (
        "_graph_ref",
        "n",
        "m",
        "nodes",
        "_index",
        "_succ_ids",
        "_pred_ids",
        "_mapped",
        "out_offsets",
        "out_targets",
        "in_offsets",
        "in_sources",
        "out_degree",
        "in_degree",
        "source_ids",
        "sink_ids",
        "merge_ids",
        "is_dag",
        "num_levels",
        "_topo_order",
        "_topo_index",
        "_depth",
        "_level_offsets",
        "_in_pos_of_out",
        "_edge_prob_cache",
        "_source_mark",
        "_reach_masks",
        "_reach_counts",
    )

    def __init__(self, graph: "CGraph") -> None:
        nodes = graph.nodes()
        n = len(nodes)
        index = {v: i for i, v in enumerate(nodes)}

        succ_ids: tuple[tuple[int, ...], ...] = tuple(
            tuple(index[c] for c in graph.successors(v)) for v in nodes
        )
        pred_lists: list[list[int]] = [[] for _ in range(n)]
        for u, children in enumerate(succ_ids):
            for c in children:
                pred_lists[c].append(u)
        pred_ids: tuple[tuple[int, ...], ...] = tuple(
            tuple(ps) for ps in pred_lists
        )
        out_degree = [len(s) for s in succ_ids]
        in_degree = [len(p) for p in pred_ids]

        out_offsets = [0] * (n + 1)
        for i in range(n):
            out_offsets[i + 1] = out_offsets[i] + out_degree[i]
        out_targets = [c for children in succ_ids for c in children]
        in_offsets = [0] * (n + 1)
        for i in range(n):
            in_offsets[i + 1] = in_offsets[i] + in_degree[i]
        in_sources = [u for parents in pred_ids for u in parents]

        # Weak back-reference only: the graph's _compiled_cache already
        # holds this object strongly, and a strong .graph would turn that
        # into a refcount cycle reclaimable only by the cyclic GC —
        # delaying eviction of large service-resident graphs.
        self._graph_ref = weakref.ref(graph)
        self.n = n
        self.m = len(out_targets)
        self.nodes = nodes
        self._index = index
        self._succ_ids = succ_ids
        self._pred_ids = pred_ids
        self._mapped = {}
        self.out_offsets = out_offsets
        self.out_targets = out_targets
        self.in_offsets = in_offsets
        self.in_sources = in_sources
        self.out_degree = out_degree
        self.in_degree = in_degree
        self._in_pos_of_out = None
        self._edge_prob_cache = None
        self._source_mark = None
        self._reach_masks = None
        self._reach_counts = None
        self.source_ids = tuple(sorted(index[s] for s in graph.sources))
        self.sink_ids = tuple(i for i in range(n) if not out_degree[i])
        self.merge_ids = tuple(
            i for i in range(n) if in_degree[i] > 1 and out_degree[i]
        )

        # Kahn by wavefronts: a node becomes ready in the round equal to
        # its longest-path distance from any root, so one pass levelizes
        # and cycle-checks simultaneously.  Levels are sorted by id so the
        # resulting topological order is deterministic and id-monotone
        # within a level.
        indeg = in_degree[:]
        depth = [0] * n
        frontier = [i for i in range(n) if not indeg[i]]
        levels: list[list[int]] = []
        processed = 0
        level = 0
        while frontier:
            frontier.sort()
            levels.append(frontier)
            processed += len(frontier)
            ready: list[int] = []
            for v in frontier:
                depth[v] = level
                for child in succ_ids[v]:
                    indeg[child] -= 1
                    if not indeg[child]:
                        ready.append(child)
            frontier = ready
            level += 1

        self.is_dag = processed == n
        if self.is_dag:
            topo_order: list[int] = []
            level_offsets = [0]
            for members in levels:
                topo_order.extend(members)
                level_offsets.append(len(topo_order))
            topo_index = [0] * n
            for pos, v in enumerate(topo_order):
                topo_index[v] = pos
            self.num_levels = len(levels)
            self._topo_order = tuple(topo_order)
            self._topo_index = topo_index
            self._depth = depth
            self._level_offsets = level_offsets
        else:
            self.num_levels = 0
            self._topo_order = None
            self._topo_index = None
            self._depth = None
            self._level_offsets = None

    @property
    def graph(self) -> "CGraph | None":
        """The source graph (weakly referenced; None once it is gone)."""
        return self._graph_ref()

    # ------------------------------------------------------------------
    # Lazily materialized python-object views
    #
    # The dict index and the tuple-of-tuples adjacency are the pure
    # python sweeps' hot representations, but at the scale tier's node
    # counts they cost hundreds of MB of boxed objects — so table-built
    # graphs (:meth:`from_tables`) defer them until something actually
    # walks the python path.  Graphs compiled from a :class:`CGraph`
    # still build them eagerly in ``__init__`` (unchanged behavior).
    # ------------------------------------------------------------------

    @property
    def index(self) -> dict:
        """``index[node] = id`` — the interning map."""
        if self._index is None:
            self._index = {v: i for i, v in enumerate(self.nodes)}
        return self._index

    @property
    def succ_ids(self) -> tuple:
        """Adjacency as tuples of int tuples (successor direction)."""
        if self._succ_ids is None:
            off, tgt = self.out_offsets, self.out_targets
            self._succ_ids = tuple(
                tuple(int(c) for c in tgt[off[i]:off[i + 1]])
                for i in range(self.n)
            )
        return self._succ_ids

    @property
    def pred_ids(self) -> tuple:
        """Adjacency as tuples of int tuples (predecessor direction)."""
        if self._pred_ids is None:
            off, src = self.in_offsets, self.in_sources
            self._pred_ids = tuple(
                tuple(int(p) for p in src[off[i]:off[i + 1]])
                for i in range(self.n)
            )
        return self._pred_ids

    # ------------------------------------------------------------------
    # Table-direct construction (the scale tier's entry point)
    # ------------------------------------------------------------------

    @classmethod
    def from_tables(
        cls,
        *,
        n: int,
        out_offsets,
        out_targets,
        in_offsets,
        in_sources,
        source_ids,
        nodes=None,
        graph=None,
        levels=None,
        mapped=None,
    ) -> "CompiledGraph":
        """Build a compiled graph directly from CSR tables.

        The streamed loaders and the ``.fpc`` on-disk format construct
        graphs here without ever materializing a :class:`CGraph` (or any
        python edge list).  The tables may be any integer sequences —
        plain lists, ``array`` arrays, NumPy arrays, or ``np.memmap``
        views; the python-object views (:attr:`index`,
        :attr:`succ_ids`, :attr:`pred_ids`) materialize lazily.

        ``nodes`` defaults to ``range(n)`` (interned ids are their own
        user nodes).  ``levels`` optionally supplies a precomputed
        ``(topo_order, topo_index, depth, level_offsets)`` tuple;
        otherwise :func:`levelize_csr` runs here.  ``mapped`` names
        memory-mapped tables (``{attr: nbytes}``) so :meth:`nbytes`
        charges them to the mapped pool, not the resident one.
        """
        self = object.__new__(cls)
        self._graph_ref = (
            weakref.ref(graph) if graph is not None else _no_graph
        )
        self.n = n
        self.m = len(out_targets)
        self.nodes = range(n) if nodes is None else nodes
        self._index = None
        self._succ_ids = None
        self._pred_ids = None
        self._mapped = dict(mapped) if mapped else {}
        self.out_offsets = out_offsets
        self.out_targets = out_targets
        self.in_offsets = in_offsets
        self.in_sources = in_sources
        out_degree, in_degree = _csr_degrees(
            n, out_offsets, in_offsets
        )
        self.out_degree = out_degree
        self.in_degree = in_degree
        self._in_pos_of_out = None
        self._edge_prob_cache = None
        self._source_mark = None
        self._reach_masks = None
        self._reach_counts = None
        self.source_ids = tuple(int(s) for s in source_ids)
        if type(out_degree).__module__.startswith("numpy"):
            self.sink_ids = tuple(
                int(i) for i in (out_degree == 0).nonzero()[0]
            )
            self.merge_ids = tuple(
                int(i)
                for i in ((in_degree > 1) & (out_degree > 0)).nonzero()[0]
            )
        else:
            self.sink_ids = tuple(
                i for i in range(n) if not out_degree[i]
            )
            self.merge_ids = tuple(
                i
                for i in range(n)
                if in_degree[i] > 1 and out_degree[i]
            )
        if levels is None:
            levels = levelize_csr(n, out_offsets, out_targets, in_degree)
        if levels is None:
            self.is_dag = False
            self.num_levels = 0
            self._topo_order = None
            self._topo_index = None
            self._depth = None
            self._level_offsets = None
        else:
            topo_order, topo_index, depth, level_offsets = levels
            self.is_dag = True
            self.num_levels = len(level_offsets) - 1
            self._topo_order = topo_order
            self._topo_index = topo_index
            self._depth = depth
            self._level_offsets = level_offsets
        return self

    # ------------------------------------------------------------------
    # Topological accessors (DAG-only)
    # ------------------------------------------------------------------

    def _require_dag(self) -> None:
        if not self.is_dag:
            raise CyclicGraphError("graph contains a directed cycle")

    @property
    def topo_order(self) -> tuple[int, ...]:
        """Node ids sorted by ``(depth, id)`` — a topological order."""
        self._require_dag()
        return self._topo_order

    @property
    def topo_index(self) -> list[int]:
        """``topo_index[i]``: position of node ``i`` in :attr:`topo_order`."""
        self._require_dag()
        return self._topo_index

    @property
    def depth(self) -> list[int]:
        """``depth[i]``: longest-path distance of node ``i`` from any root."""
        self._require_dag()
        return self._depth

    @property
    def level_offsets(self) -> list[int]:
        """Level partition of :attr:`topo_order` (``num_levels + 1`` entries)."""
        self._require_dag()
        return self._level_offsets

    def level_members(self, level: int) -> Sequence[int]:
        """The node ids of one level, ascending."""
        offsets = self.level_offsets
        return self._topo_order[offsets[level]:offsets[level + 1]]

    # ------------------------------------------------------------------
    # Id ↔ node translation (the compiled/user boundary)
    # ------------------------------------------------------------------

    def to_id(self, node: Node) -> int:
        """The interned id of ``node``; raises :class:`MissingNodeError`."""
        try:
            return self.index[node]
        except (KeyError, TypeError):
            raise MissingNodeError(node) from None

    def to_node(self, node_id: int) -> Node:
        """The user node behind an interned id."""
        return self.nodes[node_id]

    def to_ids(self, nodes: Iterable[Node]) -> list[int]:
        """Intern a collection of user nodes (validating membership)."""
        return [self.to_id(v) for v in nodes]

    def to_nodes(self, ids: Iterable[int]) -> list[Node]:
        """Translate interned ids back to user nodes."""
        nodes = self.nodes
        return [nodes[i] for i in ids]

    def filter_mask(self, filter_ids: Iterable[int]) -> bytearray:
        """A dense 0/1 membership mask over node ids (``bytearray`` for
        the fastest pure-python indexing).

        Ids are range-checked: a negative id would otherwise wrap to the
        end of the mask (Python indexing) and silently filter the wrong
        node.
        """
        n = self.n
        mask = bytearray(n)
        for i in filter_ids:
            if not 0 <= i < n:
                raise MissingNodeError(i)
            mask[i] = 1
        return mask

    # ------------------------------------------------------------------
    # Bit-packed source reachability (the aggregate-sweep substrate)
    # ------------------------------------------------------------------

    def source_mark(self) -> bytearray:
        """A dense 0/1 mask over ids marking the designated sources.

        Cached: the aggregate sweeps read it per node per evaluation
        (the ``bonus`` term of the totals recurrence), so a bytearray
        index beats a set probe on the hot path.
        """
        if self._source_mark is None:
            mark = bytearray(self.n)
            for s in self.source_ids:
                mark[s] = 1
            self._source_mark = mark
        return self._source_mark

    def reach_masks(self) -> list[int]:
        """Per-node source-reachability bitsets (cached; DAG-only).

        See :func:`packed_reach_masks` for the lane layout.  Cached on
        the compiled graph because reachability is filter-independent:
        every deterministic aggregate evaluation on this graph reuses
        the same masks regardless of the filter set.
        """
        if self._reach_masks is None:
            self._reach_masks = packed_reach_masks(self)
        return self._reach_masks

    def reach_counts(self) -> list[int]:
        """``nreach[v]``: sources with a ≥1-edge path to ``v`` (cached).

        Exactly ``#{s : ψ_s(v) > 0}``: reachability is independent of
        the filter set (a filter always forwards at least one copy of
        anything it receives), so this is a per-graph constant the
        aggregate gain formulas consume.

        Derived by the *blocked* sweep (:func:`blocked_reach_counts`)
        unless the full masks happen to be cached already — counting
        must never pin the O(n·S/8) mask list resident, only callers of
        :meth:`reach_masks` pay for masks.
        """
        if self._reach_counts is None:
            if self._reach_masks is not None:
                mark = self.source_mark()
                self._reach_counts = [
                    m.bit_count() - mark[v]
                    for v, m in enumerate(self._reach_masks)
                ]
            else:
                self._reach_counts = blocked_reach_counts(self)
        return self._reach_counts

    # ------------------------------------------------------------------
    # Edge probabilities (the probabilistic-model substrate)
    # ------------------------------------------------------------------

    def in_pos_of_out(self) -> list[int]:
        """Map each forward-CSR edge position to its reverse-CSR position.

        Both CSR directions were built by one ascending scan over
        ``succ_ids``, so the mapping is a single replay of that scan.
        Cached: the Monte-Carlo samplers use it to translate live-edge
        masks (sampled in canonical forward order) to the reverse
        direction the ``W`` sweeps walk.
        """
        if self._in_pos_of_out is None:
            fill = list(self.in_offsets[:-1])
            mapping = [0] * self.m
            pos = 0
            for children in self.succ_ids:
                for c in children:
                    mapping[pos] = fill[c]
                    fill[c] += 1
                    pos += 1
            self._in_pos_of_out = mapping
        return self._in_pos_of_out

    def edge_probabilities(
        self,
        probabilities: "float | Mapping[tuple[Node, Node], float]" = 1.0,
        *,
        key: "object | None" = None,
    ) -> EdgeProbabilities:
        """Relay probabilities compiled to CSR-aligned arrays (cached).

        ``probabilities`` is a single float or an edge-keyed mapping
        (missing edges default to 1).  Mapping entries are validated
        here — the first point where the spec meets a graph: an edge the
        graph does not contain raises :class:`MissingEdgeError`, a value
        outside ``[0, 1]`` raises ParameterError.

        ``key`` is an optional hashable cache key for the spec (the model
        layer passes
        :meth:`repro.propagation.model.PropagationModel.probabilities_key`);
        uniform floats are self-keying.  Cached arrays are charged to
        :meth:`nbytes`.
        """
        from collections.abc import Mapping as _Mapping

        if key is None:
            if isinstance(probabilities, _Mapping):
                key = (
                    "map",
                    tuple(
                        sorted(
                            ((repr(u), repr(v)), float(p))
                            for (u, v), p in probabilities.items()
                        )
                    ),
                )
            else:
                key = ("uniform", float(probabilities))
        cache = self._edge_prob_cache
        if cache is None:
            cache = self._edge_prob_cache = {}
        cached = cache.get(key)
        if cached is not None:
            return cached

        m = self.m
        if isinstance(probabilities, _Mapping):
            index = self.index
            succ = self.succ_ids
            out_probs = [1.0] * m
            offsets = self.out_offsets
            for (u, v), p in probabilities.items():
                p = float(p)
                if not 0.0 <= p <= 1.0:
                    raise ParameterError(
                        f"edge probability {p!r} outside [0, 1]"
                    )
                ui = index.get(u)
                vi = index.get(v)
                if ui is None or vi is None or vi not in succ[ui]:
                    raise MissingEdgeError((u, v))
                out_probs[offsets[ui] + succ[ui].index(vi)] = p
            uniform = None
        else:
            p = float(probabilities)
            if not 0.0 <= p <= 1.0:
                raise ParameterError(f"edge probability {p!r} outside [0, 1]")
            out_probs = [p] * m
            uniform = p
        in_probs = [1.0] * m
        for out_pos, in_pos in enumerate(self.in_pos_of_out()):
            in_probs[in_pos] = out_probs[out_pos]
        probs = EdgeProbabilities(out_probs, in_probs, uniform=uniform)
        cache[key] = probs
        return probs

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def nbytes(self) -> int:
        """Resident container memory of the compiled tables, in bytes.

        Memory-mapped tables (a ``.fpc``-loaded graph's CSR and topo
        arrays) are *excluded* — they are backed by the page cache, not
        this process's heap, and charging them here made
        ``/graphs/{digest}/stats`` and the ``compile`` bench suite
        overstate memory by the on-disk graph size.  Use
        :meth:`mapped_nbytes` / :meth:`nbytes_split` for the full
        picture.  Lazily materialized views (:attr:`succ_ids`, …) are
        charged only once built.
        """
        return self.nbytes_split()["resident"]

    def mapped_nbytes(self) -> int:
        """Bytes of memory-mapped (on-disk backed) tables."""
        return sum(self._mapped.values())

    def nbytes_split(self) -> dict[str, int]:
        """Memory accounting as ``{"resident": ..., "mapped": ...}``.

        Resident sums ``sys.getsizeof`` over python containers and
        ``.nbytes`` over in-heap NumPy arrays (including the per-node
        adjacency tuples and the cached extras); the interned ints
        themselves are shared objects and deliberately not charged.
        Tables registered as mapped at :meth:`from_tables` time are
        charged to the mapped pool at their on-disk size instead.
        """
        mapped_names = self._mapped
        resident = 0
        for name in (
            "nodes",
            "out_offsets",
            "out_targets",
            "in_offsets",
            "in_sources",
            "out_degree",
            "in_degree",
        ):
            if name not in mapped_names:
                resident += _table_nbytes(getattr(self, name))
        resident += _table_nbytes(self.source_ids)
        resident += _table_nbytes(self.sink_ids)
        resident += _table_nbytes(self.merge_ids)
        if self._index is not None:
            resident += sys.getsizeof(self._index)
        if self._succ_ids is not None:
            resident += sys.getsizeof(self._succ_ids)
            resident += sum(sys.getsizeof(t) for t in self._succ_ids)
        if self._pred_ids is not None:
            resident += sys.getsizeof(self._pred_ids)
            resident += sum(sys.getsizeof(t) for t in self._pred_ids)
        if self._in_pos_of_out is not None:
            resident += _table_nbytes(self._in_pos_of_out)
        if self._source_mark is not None:
            resident += sys.getsizeof(self._source_mark)
        if self._reach_masks is not None:
            resident += sys.getsizeof(self._reach_masks)
            resident += sum(sys.getsizeof(m) for m in self._reach_masks)
        if self._reach_counts is not None:
            resident += _table_nbytes(self._reach_counts)
        if self._edge_prob_cache:
            resident += sum(
                probs.nbytes() for probs in self._edge_prob_cache.values()
            )
        if self.is_dag:
            for name in (
                "_topo_order",
                "_topo_index",
                "_depth",
                "_level_offsets",
            ):
                if name.lstrip("_") not in mapped_names:
                    resident += _table_nbytes(getattr(self, name))
        return {"resident": resident, "mapped": self.mapped_nbytes()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledGraph(n={self.n}, m={self.m}, "
            f"sources={len(self.source_ids)}, dag={self.is_dag})"
        )


def _no_graph() -> None:
    """Stand-in weakref for table-built graphs with no source object."""
    return None


def _table_nbytes(obj) -> int:
    """Bytes of one table: ``.nbytes`` for array-likes, else getsizeof."""
    if obj is None:
        return 0
    nbytes = getattr(obj, "nbytes", None)
    if isinstance(nbytes, int):
        return nbytes
    return sys.getsizeof(obj)


def _csr_degrees(n: int, out_offsets, in_offsets):
    """Degree arrays from CSR offsets — vectorized when they are NumPy."""
    if type(out_offsets).__module__.startswith("numpy"):
        return (
            out_offsets[1:] - out_offsets[:-1],
            in_offsets[1:] - in_offsets[:-1],
        )
    return (
        [out_offsets[i + 1] - out_offsets[i] for i in range(n)],
        [in_offsets[i + 1] - in_offsets[i] for i in range(n)],
    )


def levelize_csr(n: int, out_offsets, out_targets, in_degree):
    """Kahn-by-wavefronts over CSR arrays: the levelization
    :class:`CompiledGraph` computes in ``__init__``, for table-built
    graphs.

    Returns ``(topo_order, topo_index, depth, level_offsets)`` with the
    identical contract — levels sorted ascending by id, ``depth`` the
    longest-path distance — or None when the graph is cyclic.  Runs a
    per-level vectorized pass when the tables are NumPy arrays (the
    streamed loaders' case) and a plain python sweep otherwise.
    """
    numpy_tables = type(out_targets).__module__.startswith("numpy")
    if numpy_tables:
        try:
            import numpy as np
        except Exception:  # pragma: no cover - numpy arrays imply numpy
            numpy_tables = False
    if numpy_tables:
        indeg = np.asarray(in_degree, dtype=np.int64).copy()
        off = np.asarray(out_offsets, dtype=np.int64)
        tgt = np.asarray(out_targets, dtype=np.int64)
        depth = np.zeros(n, dtype=np.int64)
        topo_parts = []
        level_offsets = [0]
        frontier = np.nonzero(indeg == 0)[0]
        indeg[frontier] = -1
        processed = 0
        level = 0
        while len(frontier):
            topo_parts.append(frontier)
            processed += len(frontier)
            depth[frontier] = level
            level_offsets.append(processed)
            lens = off[frontier + 1] - off[frontier]
            total = int(lens.sum())
            if total:
                ends = np.cumsum(lens)
                pos = (
                    np.arange(total, dtype=np.int64)
                    - np.repeat(ends - lens, lens)
                    + np.repeat(off[frontier], lens)
                )
                children = tgt[pos]
                hits = np.bincount(children, minlength=n)
                indeg -= hits
                frontier = np.nonzero(indeg == 0)[0]
                indeg[frontier] = -1
            else:
                frontier = frontier[:0]
            level += 1
        if processed != n:
            return None
        topo_order = (
            np.concatenate(topo_parts)
            if topo_parts
            else np.empty(0, dtype=np.int64)
        )
        topo_index = np.empty(n, dtype=np.int64)
        topo_index[topo_order] = np.arange(n, dtype=np.int64)
        return topo_order, topo_index, depth, level_offsets

    indeg = [int(d) for d in in_degree]
    depth = [0] * n
    frontier = [i for i in range(n) if not indeg[i]]
    topo_order: list[int] = []
    level_offsets = [0]
    processed = 0
    level = 0
    while frontier:
        frontier.sort()
        topo_order.extend(frontier)
        processed += len(frontier)
        level_offsets.append(processed)
        ready: list[int] = []
        for v in frontier:
            depth[v] = level
            for e in range(out_offsets[v], out_offsets[v + 1]):
                c = int(out_targets[e])
                indeg[c] -= 1
                if not indeg[c]:
                    ready.append(c)
        frontier = ready
        level += 1
    if processed != n:
        return None
    topo_index = [0] * n
    for pos, v in enumerate(topo_order):
        topo_index[v] = pos
    return tuple(topo_order), topo_index, depth, level_offsets


def packed_reach_masks(
    compiled: CompiledGraph,
    pred: "Sequence[Sequence[int]] | None" = None,
) -> list[int]:
    """One bit-packed sweep: which sources reach each node?

    Lane layout: bit ``j`` of ``masks[v]`` is set iff source
    ``source_ids[j]`` (ascending id order) either *is* ``v`` or has a
    path of ≥1 edge to ``v``.  The masks are plain Python ints — an
    unbounded bitset, so any source count works and the sweep stays
    dependency-free; 64-source graphs fit one machine word and the OR
    per edge is a single uint64 operation under the hood.

    The recurrence is ``B(v) = own(v) | OR_{p ∈ pred(v)} B(p)`` over the
    topological order, where ``own(v)`` holds ``v``'s own lane bit.  In
    a DAG a source never reaches itself, so the own bit re-entering
    through a parent is impossible and ``popcount(B(v))`` decomposes as
    ``nreach(v) + [v is a source]`` exactly.

    ``pred`` overrides the predecessor lists (the Monte-Carlo samplers
    pass a live-edge world's pruned adjacency); the default is the
    graph's full ``pred_ids``.  Duplicate parents (multi-edges) are
    harmless: OR is idempotent.
    """
    if pred is None:
        pred = compiled.pred_ids
    own = [0] * compiled.n
    for j, s in enumerate(compiled.source_ids):
        own[s] = 1 << j
    masks = [0] * compiled.n
    for v in compiled.topo_order:
        acc = own[v]
        for p in pred[v]:
            acc |= masks[p]
        masks[v] = acc
    return masks


def packed_reach_counts(
    compiled: CompiledGraph,
    pred: "Sequence[Sequence[int]] | None" = None,
) -> list[int]:
    """``nreach[v]`` — sources with a ≥1-edge path to ``v`` — via one
    bit-packed sweep and a popcount gather.

    The aggregate-formulation primitive: reachability is independent of
    the filter set, so the gain formulas reduce per-source ψ sweeps to
    this count plus one totals sweep (see
    :func:`repro.propagation.engine.aggregate_receipts_ids`).
    """
    mark = compiled.source_mark()
    return [
        m.bit_count() - mark[v]
        for v, m in enumerate(packed_reach_masks(compiled, pred))
    ]


#: Source lanes one blocked-sweep window holds resident.  1024 lanes is
#: 128 bytes of bitset per node per window — small enough that even the
#: million-node rung keeps one window under ~128 MB, large enough that
#: the per-window sweep overhead amortizes.
DEFAULT_REACH_BLOCK = 1024


def blocked_reach_counts(
    compiled: CompiledGraph,
    block: int = DEFAULT_REACH_BLOCK,
    source_start: int = 0,
    source_stop: "int | None" = None,
    subtract_mark: bool = True,
) -> list[int]:
    """``nreach`` via a blocked sweep that never holds all masks.

    Sources are swept in windows of ``block`` lanes: each window runs
    the :func:`packed_reach_masks` recurrence restricted to its own
    lanes, popcounts the finished window into an int accumulator, and
    drops the window's masks before the next one starts.  Resident
    memory is O(n·block/8) bits instead of O(n·S/8), and because source
    sets of different windows are disjoint the popcount sums are *exact*
    integer addition — the result is bit-identical to the monolithic
    path for every block size.

    ``source_start``/``source_stop`` restrict the sweep to a slice of
    ``source_ids`` (the process-parallel shards each take one contiguous
    slice and the parent sums the returned count vectors elementwise).
    ``subtract_mark=False`` returns the raw per-window popcount sums —
    shard workers use it so the source-mark correction is applied
    exactly once, by the parent.
    """
    if block < 1:
        raise ParameterError("reach block size must be at least 1")
    sources = compiled.source_ids[source_start:source_stop]
    n = compiled.n
    order = compiled.topo_order
    pred = compiled.pred_ids
    counts = [0] * n
    for start in range(0, len(sources), block):
        window = sources[start:start + block]
        own = [0] * n
        for j, s in enumerate(window):
            own[s] = 1 << j
        masks = [0] * n
        for v in order:
            acc = own[v]
            for p in pred[v]:
                acc |= masks[p]
            masks[v] = acc
        for v, m in enumerate(masks):
            if m:
                counts[v] += m.bit_count()
    if not subtract_mark:
        return counts
    mark = compiled.source_mark()
    return [c - mark[v] for v, c in enumerate(counts)]
