"""The c-tree → binary tree transformation of Section 4.1.

The tree dynamic program splits a filter budget between the children of
each node; with arbitrary fan-out that split is a small knapsack.  The paper
side-steps it by first rewriting the c-tree so every node has at most two
children, threading surplus children through chains of *dump nodes*.  Dump
nodes are bookkeeping artifacts: they relay copies unchanged, may never host
a filter, and do not count toward the objective.

The transformation preserves propagation exactly: a dump node forwards
whatever multiset it receives, so the copies arriving at every *real* node
are identical before and after.  Tests verify this equivalence directly
against the propagation engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.exceptions import GraphStructureError
from repro.graphs.cgraph import CGraph
from repro.graphs.validation import is_ctree

Node = Hashable


def _dump_node(owner: Node, index: int) -> tuple[str, Node, int]:
    """Id scheme for synthesized dump nodes: collision-proof tuples."""
    return ("__dump__", owner, index)


@dataclass
class BinarizedTree:
    """Result of :func:`binarize_ctree`.

    Attributes
    ----------
    graph:
        The transformed c-graph: original source, original tree nodes, plus
        dump nodes.  Every non-source node has at most two children.
    source:
        The (unchanged) source node.
    root:
        The root of the underlying tree (the unique non-source node whose
        only parent is the source... or whose parents exclude tree nodes).
    dump_nodes:
        Ids of all synthesized dump nodes.
    """

    graph: CGraph
    source: Node
    root: Node
    dump_nodes: frozenset[Node] = field(default_factory=frozenset)

    def is_dump(self, node: Node) -> bool:
        return node in self.dump_nodes

    def real_nodes(self) -> tuple[Node, ...]:
        """The original (non-dump) nodes, source included."""
        return tuple(
            v for v in self.graph.nodes() if v not in self.dump_nodes
        )


def binarize_ctree(graph: CGraph) -> BinarizedTree:
    """Rewrite a c-tree so that every tree node has at most two children.

    Follows the paper's construction: a node ``v`` with children
    ``v1 … vr`` (``r > 2``) keeps ``v1`` as its left child and receives a
    new dump node ``u1`` as its right child; ``u1`` takes ``v2 … vr`` and
    the rewriting recurses until every node has exactly two children.
    Edges incident to the *source* are left untouched — the source's
    fan-out is not part of the tree and the DP never splits budget there.

    Raises
    ------
    GraphStructureError
        If ``graph`` is not a c-tree (see :func:`repro.graphs.is_ctree`).
    """
    if not is_ctree(graph):
        raise GraphStructureError("binarize_ctree requires a c-tree input")
    source = next(iter(graph.sources))

    tree_children: dict[Node, list[Node]] = {}
    root: Node | None = None
    for v in graph.nodes():
        if v == source:
            continue
        # An edge back into the source can only exist when v is unreachable
        # from it (the graph is a DAG), so it never carries copies; it is
        # not a tree edge and is dropped from the transformed graph.
        tree_children[v] = [c for c in graph.successors(v) if c != source]
        parents = [p for p in graph.predecessors(v) if p != source]
        if not parents:
            root = v
    if root is None and tree_children:
        raise GraphStructureError("c-tree has no tree root")

    edges: list[tuple[Node, Node]] = [(source, c) for c in graph.successors(source)]
    dump_nodes: set[Node] = set()

    for v in list(tree_children):
        children = tree_children[v]
        if len(children) <= 2:
            edges.extend((v, c) for c in children)
            continue
        # Chain surplus children through dump nodes, exactly as in §4.1:
        # v -> (v1, u1); u_i -> (v_{i+1}, u_{i+1}); the last dump takes the
        # final two children.
        holder: Node = v
        remaining = list(children)
        index = 0
        while len(remaining) > 2:
            left = remaining.pop(0)
            dump = _dump_node(v, index)
            index += 1
            dump_nodes.add(dump)
            edges.append((holder, left))
            edges.append((holder, dump))
            holder = dump
        edges.append((holder, remaining[0]))
        edges.append((holder, remaining[1]))

    all_nodes = list(graph.nodes()) + sorted(dump_nodes, key=repr)
    binary = CGraph(edges, nodes=all_nodes, sources=[source])
    return BinarizedTree(
        graph=binary,
        source=source,
        root=root if root is not None else source,
        dump_nodes=frozenset(dump_nodes),
    )
