"""Maximal connected acyclic subgraphs — the ``Acyclic`` algorithm (§4.3).

FP is NP-hard on general digraphs, and deterministic blind relaying does not
even terminate on cycles, so the paper pre-processes arbitrary c-graphs into
connected acyclic subgraphs rooted at a source and solves FP there.

Three variants are provided:

``acyclic_subgraph_signature``
    A faithful implementation of the paper's Algorithm 3: DFS tree ``T``
    from the source, then every remaining edge ``(u, v)`` is admitted iff
    the junction-signature test ``σ(v) < σ(w_u1) ≤ σ(u)`` passes, where
    ``w`` is the deepest junction shared by the tree paths to ``u`` and
    ``v``.  This admits exactly the cross edges that jump into an
    earlier-explored branch; it conservatively rejects forward edges (which
    are always safe), so its output can be slightly smaller than maximal.

``acyclic_subgraph_dfs``
    The classical alternative: keep every non-back edge of the DFS (an edge
    ``(u, v)`` is a back edge iff ``v`` is an ancestor of ``u`` in the DFS
    tree).  Output is acyclic because finishing times strictly decrease
    along every kept edge, connected because it contains the DFS tree, and
    *maximal*: re-adding any rejected back edge closes a cycle with the
    tree path from ``v`` down to ``u``.  This is the library default.

``acyclic_subgraph_ordering``
    The folklore 2-approximation the paper mentions and rejects: fix a node
    order, keep the larger of the forward/backward edge sets.  Included for
    the ablation benchmarks — it illustrates the connectivity problem the
    paper calls out (its output routinely strands nodes from the source).
"""

from __future__ import annotations

from typing import Hashable, Literal

from repro.exceptions import MissingNodeError, MissingSourceError
from repro.graphs.cgraph import CGraph
from repro.graphs.traversal import dfs_forest

Node = Hashable
Edge = tuple[Node, Node]


def acyclic_subgraph(
    graph: CGraph,
    source: Node | None = None,
    *,
    method: Literal["dfs", "signature"] = "dfs",
) -> CGraph:
    """Extract a connected acyclic subgraph rooted at ``source``.

    Parameters
    ----------
    graph:
        Any directed c-graph (cycles allowed).
    source:
        Node to root the traversal at.  Defaults to the graph's unique
        source.  Nodes unreachable from it are dropped — they can never
        receive the item, so they are irrelevant to filter placement.
    method:
        ``"dfs"`` (default, maximal) or ``"signature"`` (the paper's
        Algorithm 3, faithful but conservative).

    Returns
    -------
    CGraph
        An acyclic graph over the reachable nodes whose only source is
        ``source``.
    """
    if source is None:
        source = graph.single_source()
    if source not in graph:
        raise MissingNodeError(source)
    if method == "dfs":
        return _acyclic_dfs(graph, source)
    if method == "signature":
        return _acyclic_signature(graph, source)
    raise ValueError(f"unknown method {method!r}")


def acyclic_subgraph_dfs(graph: CGraph, source: Node | None = None) -> CGraph:
    """:func:`acyclic_subgraph` with ``method='dfs'``."""
    return acyclic_subgraph(graph, source, method="dfs")


def acyclic_subgraph_signature(
    graph: CGraph, source: Node | None = None
) -> CGraph:
    """:func:`acyclic_subgraph` with ``method='signature'`` (Algorithm 3)."""
    return acyclic_subgraph(graph, source, method="signature")


def _acyclic_dfs(graph: CGraph, source: Node) -> CGraph:
    dfs = dfs_forest(graph, [source])
    reachable = set(dfs.discovery)
    finish = dfs.finish
    kept = [
        (u, v)
        for u, v in graph.edges()
        if u in reachable and v in reachable and finish[v] < finish[u]
    ]
    return CGraph(kept, nodes=reachable, sources=[source])


def _acyclic_signature(graph: CGraph, source: Node) -> CGraph:
    dfs = dfs_forest(graph, [source])
    sigma = dfs.discovery
    reachable = set(sigma)

    # --- signatures -----------------------------------------------------
    # A *junction* is a node with more than one child in the DFS tree T.
    # sign(u) lists, for every junction w on the tree path source -> u, the
    # pair (σ(w), σ(w_u1)) where w_u1 is the child of w taken by that path.
    # Children inherit their parent's signature, extended by the parent
    # itself when the parent is a junction — a single pass down T.
    tree_children: dict[Node, list[Node]] = {v: [] for v in reachable}
    for u, v in dfs.tree_edges:
        tree_children[u].append(v)

    sign: dict[Node, tuple[tuple[int, int], ...]] = {source: ()}
    stack: list[Node] = [source]
    tree_edge_set = set(dfs.tree_edges)
    while stack:
        node = stack.pop()
        node_sig = sign[node]
        is_junction = len(tree_children[node]) > 1
        for child in tree_children[node]:
            if is_junction:
                sign[child] = node_sig + ((sigma[node], sigma[child]),)
            else:
                sign[child] = node_sig
            stack.append(child)

    # --- admit non-tree edges -------------------------------------------
    kept: list[Edge] = list(dfs.tree_edges)
    for u, v in graph.edges():
        if u not in reachable or v not in reachable:
            continue
        if (u, v) in tree_edge_set:
            continue
        branch = _deepest_common_junction(sign[u], sign[v])
        if branch is None:
            # No diverging junction: u and v lie on one root path, so the
            # candidate edge is a forward or back edge; Algorithm 3 admits
            # neither.
            continue
        sigma_wu1, sigma_wv1 = branch
        if sigma[v] < sigma_wu1 <= sigma[u]:
            kept.append((u, v))
    return CGraph(kept, nodes=reachable, sources=[source])


def _deepest_common_junction(
    sign_u: tuple[tuple[int, int], ...],
    sign_v: tuple[tuple[int, int], ...],
) -> tuple[int, int] | None:
    """Locate the junction where the tree paths to ``u`` and ``v`` diverge.

    Signatures share a prefix (the common part of the two root paths).  The
    paths diverge at the last common junction iff its branch-child entries
    differ; when the entries agree all the way, one node is an ancestor of
    the other and ``None`` is returned.

    Returns ``(σ(w_u1), σ(w_v1))`` of the diverging junction, or ``None``.
    """
    last: tuple[int, int] | None = None
    for (w_u, child_u), (w_v, child_v) in zip(sign_u, sign_v):
        if w_u != w_v:
            break
        if child_u != child_v:
            last = (child_u, child_v)
            # Paths have split; any further entries describe disjoint
            # branches and cannot share junctions.
            break
    return last


def acyclic_subgraph_ordering(
    graph: CGraph, order: list[Node] | None = None
) -> CGraph:
    """The folklore forward/backward 2-approximation (for comparison only).

    Fixes a node order, splits edges into forward and backward sets, and
    keeps the larger one.  At least half the edges survive, but — as the
    paper notes — the result need not be connected or even contain a path
    from the source to most nodes, which is why Algorithm 3 exists.
    """
    if order is None:
        order = list(graph.nodes())
    position = {node: i for i, node in enumerate(order)}
    missing = [v for v in graph.nodes() if v not in position]
    if missing:
        raise MissingNodeError(missing[0])
    forward = [(u, v) for u, v in graph.edges() if position[u] < position[v]]
    backward = [(u, v) for u, v in graph.edges() if position[u] > position[v]]
    kept = forward if len(forward) >= len(backward) else backward
    sources = graph.sources if graph.sources else None
    return CGraph(kept, nodes=graph.nodes(), sources=sources)


def largest_acyclic_subgraph(
    graph: CGraph,
    candidates: list[Node] | None = None,
    *,
    method: Literal["dfs", "signature"] = "dfs",
) -> CGraph:
    """Run ``Acyclic`` from every candidate start and keep the biggest DAG.

    This mirrors the paper's handling of the Quote dataset: "we run Acyclic
    initiated from every node in the graph, and then choose the largest
    resulting DAG" — used when a cyclic network has no clear initiator.
    Size is compared by node count, then edge count; ties break on the
    earliest candidate, so results are deterministic.
    """
    if candidates is None:
        candidates = list(graph.nodes())
    if not candidates:
        raise MissingSourceError("no candidate start nodes supplied")
    best: CGraph | None = None
    for start in candidates:
        result = acyclic_subgraph(graph, start, method=method)
        if best is None or (
            result.number_of_nodes(),
            result.number_of_edges(),
        ) > (best.number_of_nodes(), best.number_of_edges()):
            best = result
    assert best is not None
    return best
