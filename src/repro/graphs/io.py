"""Reading and writing c-graphs.

Two formats are supported:

* **Edge lists** — the lingua franca of the public datasets the paper uses
  (Memetracker, the Kwak et al. Twitter crawl, and the APS citation pairs
  all ship as whitespace-separated edge lists).  One ``u v`` pair per line;
  ``#`` starts a comment.  Files written by :func:`write_edge_list`
  additionally carry structured header directives (``# sources:``,
  ``# isolated:``, ``# meta:``) so a write → read round-trip is lossless:
  isolated nodes and an explicit source set survive, and the generating
  spec (dataset, seed, scale) stays attached to the file.  Directives are
  ordinary comments, so every third-party edge-list reader still accepts
  the files, and files without directives load exactly as before.
* **JSON** — lossless round-trip of nodes, edges and the source set, used
  for freezing generated datasets so experiments are replayable.

Both edge-list entry points transparently read and write gzip when the
path ends in ``.gz`` — the compression every SNAP-style dump actually
ships with.  For graphs too large to hold as a python edge list, the
streaming pair :class:`EdgeListStream` (chunked line-at-a-time reader
that still honors every header directive) and
:func:`write_edge_list_stream` (header + edge-iterator writer) move
edges without materializing them; the scale tier's
:func:`repro.graphs.largescale.compile_edge_stream` compiles straight
off an :class:`EdgeListStream`.  A file written by
:func:`write_edge_list` and one written by :func:`write_edge_list_stream`
from the same graph are byte-identical, so digests computed over either
agree.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Any, Hashable, Iterable, Iterator

from repro.exceptions import ParameterError
from repro.graphs.cgraph import CGraph

Node = Hashable

#: Header directives understood by :func:`read_edge_list`.
_SOURCES_DIRECTIVE = "sources:"
_ISOLATED_DIRECTIVE = "isolated:"
_META_DIRECTIVE = "meta:"

#: Tokens per directive line (keeps lines short for diffs and pagers).
_DIRECTIVE_CHUNK = 64


class _OwnedGzipFile(gzip.GzipFile):
    """GzipFile that closes the fileobj it was handed.

    Needed because passing ``fileobj`` (required to suppress the FNAME
    header field) makes :class:`gzip.GzipFile` treat the file as
    borrowed and leave it open.
    """

    def close(self) -> None:
        fileobj = self.fileobj
        try:
            super().close()
        finally:
            if fileobj is not None:
                fileobj.close()


def _open_text(path: str | Path, mode: str):
    """Open ``path`` as UTF-8 text, transparently gzipped for ``.gz``.

    Gzip members are written with ``mtime=0`` and no FNAME field so
    identical graph content produces identical compressed bytes — the
    digest-stability contract extends to compressed files.
    """
    if str(path).endswith(".gz"):
        if "w" in mode:
            import io as _io

            # gzip.open exposes neither knob; GzipFile does.
            raw = _OwnedGzipFile(
                filename="", mode="wb", fileobj=open(path, "wb"), mtime=0
            )
            return _io.TextIOWrapper(raw, encoding="utf-8")
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _parse_token(token: str, int_ids: bool) -> Node:
    if int_ids and token.lstrip("-").isdigit():
        return int(token)
    return token


def _parse_edge_lines(
    lines,
    *,
    origin: str,
    comment: str,
    int_ids: bool,
    sources: list[Node] | None,
) -> CGraph:
    edges: list[tuple[Node, Node]] = []
    directive_sources: list[Node] = []
    isolated: list[Node] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith(comment):
            body = line[len(comment):].strip()
            if body.startswith(_SOURCES_DIRECTIVE):
                tokens = body[len(_SOURCES_DIRECTIVE):].split()
                directive_sources.extend(
                    _parse_token(t, int_ids) for t in tokens
                )
            elif body.startswith(_ISOLATED_DIRECTIVE):
                tokens = body[len(_ISOLATED_DIRECTIVE):].split()
                isolated.extend(_parse_token(t, int_ids) for t in tokens)
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ParameterError(
                f"{origin}:{lineno}: expected 'u v', got {line!r}"
            )
        u, v = (_parse_token(parts[0], int_ids),
                _parse_token(parts[1], int_ids))
        edges.append((u, v))
    if sources is None and directive_sources:
        sources = directive_sources
    return CGraph(edges, nodes=isolated, sources=sources)


def read_edge_list(
    path: str | Path,
    *,
    comment: str = "#",
    int_ids: bool = True,
    sources: list[Node] | None = None,
) -> CGraph:
    """Load a c-graph from a whitespace-separated edge-list file.

    Parameters
    ----------
    path:
        File to read.
    comment:
        Lines starting with this prefix are skipped — except the
        ``sources:`` / ``isolated:`` directives written by
        :func:`write_edge_list`, which restore the explicit source set and
        any edge-free nodes (both invisible to a plain ``u v`` listing).
    int_ids:
        When true (default) node tokens that parse as integers are stored
        as ints — the convention of the SNAP/Kwak/APS dumps.
    sources:
        Optional explicit source set (e.g. ``["sigcomm09"]``).  Overrides
        a ``# sources:`` directive; when neither is present, sources
        default to in-degree-zero detection.

    Paths ending in ``.gz`` are read through gzip transparently.
    """
    with _open_text(path, "r") as handle:
        return _parse_edge_lines(
            handle,
            origin=str(path),
            comment=comment,
            int_ids=int_ids,
            sources=sources,
        )


def read_edge_list_text(
    text: str,
    *,
    comment: str = "#",
    int_ids: bool = True,
    sources: list[Node] | None = None,
) -> CGraph:
    """:func:`read_edge_list` on in-memory text (HTTP uploads, tests)."""
    return _parse_edge_lines(
        text.splitlines(),
        origin="<text>",
        comment=comment,
        int_ids=int_ids,
        sources=sources,
    )


def _write_directive(handle, name: str, tokens: list[str]) -> None:
    for start in range(0, len(tokens), _DIRECTIVE_CHUNK):
        chunk = " ".join(tokens[start:start + _DIRECTIVE_CHUNK])
        handle.write(f"# {name} {chunk}\n")


def _roundtrip_token(node: Node) -> str:
    """``str(node)`` — verified to read back as exactly ``node``.

    The edge-list format stores bare whitespace-separated tokens, so a
    node id whose printed form is empty, contains whitespace, or
    re-parses differently under the int rule (a *string* ``"5"`` would
    come back as the *int* ``5``) cannot survive a round-trip.  Refusing
    the write beats silently corrupting it; such graphs belong in the
    JSON format (:func:`write_json_graph`).
    """
    token = str(node)
    if not token or len(token.split()) != 1:
        raise ParameterError(
            f"node id {node!r} does not print as one whitespace-free "
            "token; use the JSON graph format instead"
        )
    if _parse_token(token, int_ids=True) != node:
        raise ParameterError(
            f"node id {node!r} would read back as "
            f"{_parse_token(token, int_ids=True)!r}; use the JSON graph "
            "format instead"
        )
    return token


def write_edge_list(
    graph: CGraph,
    path: str | Path,
    *,
    meta: dict[str, Any] | None = None,
) -> None:
    """Write ``graph`` as a whitespace-separated edge list.

    The header records everything a bare ``u v`` listing loses: the
    explicit source set (``# sources:``), edge-free nodes
    (``# isolated:``), and — when ``meta`` is given — the generating spec
    as one JSON object (``# meta:``), so a generated workload documents
    its own dataset/seed/scale.  :func:`read_edge_list` restores the
    structural directives, making write → read the identity: node ids
    that cannot survive the token format (empty/whitespace prints, or
    strings the int rule would re-type) are rejected up front rather
    than silently corrupted.

    Paths ending in ``.gz`` are written through gzip (with a pinned
    member mtime, so identical graphs compress to identical bytes).
    """
    token_of = {node: _roundtrip_token(node) for node in graph.nodes()}
    isolated = [
        v for v in graph.nodes()
        if not graph.successors(v) and not graph.predecessors(v)
    ]
    write_edge_list_stream(
        path,
        graph.edges(),
        sources=sorted(token_of[s] for s in graph.sources),
        isolated=sorted(token_of[v] for v in isolated),
        meta=meta,
        counts=(graph.number_of_nodes(), graph.number_of_edges()),
        token_of=token_of.__getitem__,
    )


def write_edge_list_stream(
    path: str | Path,
    edges: Iterable[tuple[Node, Node]],
    *,
    sources: Iterable[str] = (),
    isolated: Iterable[str] = (),
    meta: dict[str, Any] | None = None,
    counts: tuple[int, int] | None = None,
    token_of=None,
) -> int:
    """Write an edge *iterator* in :func:`write_edge_list`'s format.

    The streaming back half of the scale tier's ingestion: never holds
    more than one edge, so a 10^6-node generator streams straight to
    disk (gzipped when the path says so).  ``sources`` / ``isolated``
    take pre-tokenized strings (already validated/ordered by the
    caller); ``counts`` optionally pins the ``# nodes= edges=`` header
    line — when the caller knows them, the output is byte-identical to
    :func:`write_edge_list` on the materialized graph, which is what
    keeps content digests stable across the two writers.  ``token_of``
    overrides per-node token rendering (default: the round-trip-checked
    ``str``).  Returns the number of edges written.
    """
    if token_of is None:
        token_cache: dict[Node, str] = {}

        def token_of(node: Node) -> str:
            token = token_cache.get(node)
            if token is None:
                token = token_cache[node] = _roundtrip_token(node)
            return token

    written = 0
    with _open_text(path, "w") as handle:
        handle.write("# filter-placement c-graph edge list\n")
        if counts is not None:
            handle.write(f"# nodes={counts[0]} edges={counts[1]}\n")
        if meta is not None:
            handle.write(
                f"# {_META_DIRECTIVE} {json.dumps(meta, sort_keys=True)}\n"
            )
        source_tokens = list(sources)
        if source_tokens:
            _write_directive(handle, _SOURCES_DIRECTIVE, source_tokens)
        isolated_tokens = list(isolated)
        if isolated_tokens:
            _write_directive(handle, _ISOLATED_DIRECTIVE, isolated_tokens)
        for u, v in edges:
            handle.write(f"{token_of(u)} {token_of(v)}\n")
            written += 1
    return written


class EdgeListStream:
    """Chunked edge-list reader: one line at a time, directives intact.

    The streaming front half of the scale tier's ingestion.  Iterating
    :meth:`edges` parses the file lazily (text or ``.gz``) and yields
    ``(u, v)`` pairs without ever materializing an edge list; the
    ``# sources:`` / ``# isolated:`` / ``# meta:`` header directives are
    captured on the fly into :attr:`sources`, :attr:`isolated` and
    :attr:`meta` (complete once iteration finishes — directives may
    legally appear anywhere, though the writers put them up top).
    ``read_edge_list(path)`` and compiling this stream produce the same
    graph; the round-trip through :func:`write_edge_list_stream` is
    digest-stable.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        comment: str = "#",
        int_ids: bool = True,
    ) -> None:
        self.path = Path(path)
        self.comment = comment
        self.int_ids = int_ids
        self.sources: list[Node] = []
        self.isolated: list[Node] = []
        self.meta: dict[str, Any] | None = None

    def edges(self) -> Iterator[tuple[Node, Node]]:
        """Yield edges lazily, capturing directives as they pass."""
        comment = self.comment
        int_ids = self.int_ids
        with _open_text(self.path, "r") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                if line.startswith(comment):
                    body = line[len(comment):].strip()
                    if body.startswith(_SOURCES_DIRECTIVE):
                        tokens = body[len(_SOURCES_DIRECTIVE):].split()
                        self.sources.extend(
                            _parse_token(t, int_ids) for t in tokens
                        )
                    elif body.startswith(_ISOLATED_DIRECTIVE):
                        tokens = body[len(_ISOLATED_DIRECTIVE):].split()
                        self.isolated.extend(
                            _parse_token(t, int_ids) for t in tokens
                        )
                    elif body.startswith(_META_DIRECTIVE):
                        payload = body[len(_META_DIRECTIVE):].strip()
                        try:
                            loaded = json.loads(payload)
                        except json.JSONDecodeError as exc:
                            raise ParameterError(
                                f"{self.path}:{lineno}: malformed "
                                f"'# meta:' header: {exc}"
                            ) from None
                        if isinstance(loaded, dict):
                            self.meta = loaded
                    continue
                parts = line.split()
                if len(parts) != 2:
                    raise ParameterError(
                        f"{self.path}:{lineno}: expected 'u v', "
                        f"got {line!r}"
                    )
                yield (
                    _parse_token(parts[0], int_ids),
                    _parse_token(parts[1], int_ids),
                )


def read_edge_list_meta(path: str | Path) -> dict[str, Any] | None:
    """The ``# meta:`` JSON object of an edge-list file, or None.

    This is how a generated workload's provenance (dataset name, seed,
    scale) is read back without loading the graph itself.  ``.gz``
    paths are read through gzip transparently.
    """
    with _open_text(path, "r") as handle:
        for line in handle:
            line = line.strip()
            if not line.startswith("#"):
                break
            body = line[1:].strip()
            if body.startswith(_META_DIRECTIVE):
                payload = body[len(_META_DIRECTIVE):].strip()
                try:
                    loaded = json.loads(payload)
                except json.JSONDecodeError as exc:
                    raise ParameterError(
                        f"{path}: malformed '# meta:' header: {exc}"
                    ) from None
                if not isinstance(loaded, dict):
                    raise ParameterError(
                        f"{path}: '# meta:' header must be a JSON object"
                    )
                return loaded
    return None


def write_json_graph(graph: CGraph, path: str | Path) -> None:
    """Serialize ``graph`` (nodes, edges, sources) to JSON.

    Node ids must be JSON-representable (ints or strings); tuples — used
    by synthesized nodes such as super-sources and dump nodes — are
    rejected rather than silently corrupted.
    """
    for node in graph.nodes():
        if not isinstance(node, (int, str)):
            raise ParameterError(
                f"JSON graph format supports int/str node ids, got {node!r}"
            )
    payload = {
        "nodes": list(graph.nodes()),
        "edges": [[u, v] for u, v in graph.edges()],
        "sources": sorted(graph.sources, key=repr),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)


def read_json_graph(path: str | Path) -> CGraph:
    """Load a graph previously written by :func:`write_json_graph`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return CGraph(
        (tuple(edge) for edge in payload["edges"]),
        nodes=payload["nodes"],
        sources=payload["sources"],
    )
