"""Reading and writing c-graphs.

Two formats are supported:

* **Edge lists** — the lingua franca of the public datasets the paper uses
  (Memetracker, the Kwak et al. Twitter crawl, and the APS citation pairs
  all ship as whitespace-separated edge lists).  One ``u v`` pair per line;
  ``#`` starts a comment.
* **JSON** — lossless round-trip of nodes, edges and the source set, used
  for freezing generated datasets so experiments are replayable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Hashable

from repro.exceptions import ParameterError
from repro.graphs.cgraph import CGraph

Node = Hashable


def read_edge_list(
    path: str | Path,
    *,
    comment: str = "#",
    int_ids: bool = True,
    sources: list[Node] | None = None,
) -> CGraph:
    """Load a c-graph from a whitespace-separated edge-list file.

    Parameters
    ----------
    path:
        File to read.
    comment:
        Lines starting with this prefix are skipped.
    int_ids:
        When true (default) node tokens that parse as integers are stored
        as ints — the convention of the SNAP/Kwak/APS dumps.
    sources:
        Optional explicit source set (e.g. ``["sigcomm09"]``); defaults to
        in-degree-zero detection.
    """
    edges: list[tuple[Node, Node]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ParameterError(
                    f"{path}:{lineno}: expected 'u v', got {line!r}"
                )
            u, v = parts
            if int_ids:
                u = int(u) if u.lstrip("-").isdigit() else u
                v = int(v) if v.lstrip("-").isdigit() else v
            edges.append((u, v))
    return CGraph(edges, sources=sources)


def write_edge_list(graph: CGraph, path: str | Path) -> None:
    """Write ``graph`` as a whitespace-separated edge list."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# filter-placement c-graph edge list\n")
        handle.write(
            f"# nodes={graph.number_of_nodes()} edges={graph.number_of_edges()}\n"
        )
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def write_json_graph(graph: CGraph, path: str | Path) -> None:
    """Serialize ``graph`` (nodes, edges, sources) to JSON.

    Node ids must be JSON-representable (ints or strings); tuples — used
    by synthesized nodes such as super-sources and dump nodes — are
    rejected rather than silently corrupted.
    """
    for node in graph.nodes():
        if not isinstance(node, (int, str)):
            raise ParameterError(
                f"JSON graph format supports int/str node ids, got {node!r}"
            )
    payload = {
        "nodes": list(graph.nodes()),
        "edges": [[u, v] for u, v in graph.edges()],
        "sources": sorted(graph.sources, key=repr),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)


def read_json_graph(path: str | Path) -> CGraph:
    """Load a graph previously written by :func:`write_json_graph`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return CGraph(
        (tuple(edge) for edge in payload["edges"]),
        nodes=payload["nodes"],
        sources=payload["sources"],
    )
