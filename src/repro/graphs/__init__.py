"""Graph substrate for the filter-placement library.

This subpackage provides the *communication graph* (c-graph) data structure
from Section 3 of the paper plus every graph-level routine the algorithms
rely on: traversals, DAG validation, the ``Acyclic`` maximal-acyclic-subgraph
algorithm (Section 4.3), the c-tree to binary-tree transformation
(Section 4.1) and simple edge-list I/O.
"""

from repro.graphs.cgraph import CGraph
from repro.graphs.compiled import CompiledGraph
from repro.graphs.traversal import (
    bfs_levels,
    dfs_forest,
    reachable_from,
    topological_order,
)
from repro.graphs.validation import (
    check_dag,
    ensure_single_source,
    is_ctree,
    reachable_subgraph,
)
from repro.graphs.acyclic import (
    acyclic_subgraph,
    acyclic_subgraph_dfs,
    acyclic_subgraph_signature,
    largest_acyclic_subgraph,
)
from repro.graphs.binary_tree import BinarizedTree, binarize_ctree
from repro.graphs.io import (
    read_edge_list,
    read_json_graph,
    write_edge_list,
    write_json_graph,
)

__all__ = [
    "CGraph",
    "CompiledGraph",
    "topological_order",
    "dfs_forest",
    "reachable_from",
    "bfs_levels",
    "check_dag",
    "ensure_single_source",
    "is_ctree",
    "reachable_subgraph",
    "acyclic_subgraph",
    "acyclic_subgraph_dfs",
    "acyclic_subgraph_signature",
    "largest_acyclic_subgraph",
    "BinarizedTree",
    "binarize_ctree",
    "read_edge_list",
    "write_edge_list",
    "read_json_graph",
    "write_json_graph",
]
