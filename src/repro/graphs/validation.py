"""Structural validation helpers for c-graphs.

The placement algorithms in :mod:`repro.core` have graph-class
preconditions (DAG for the greedy family, c-tree for the dynamic program).
These helpers centralize the checks and the standard pre-processing steps
the paper applies before running any algorithm: restricting to the nodes
reachable from the sources and merging multiple sources into one
super-source.
"""

from __future__ import annotations

from typing import Hashable

from repro.exceptions import (
    CyclicGraphError,
    GraphStructureError,
    MissingSourceError,
)
from repro.graphs.cgraph import CGraph
from repro.graphs.traversal import reachable_from

Node = Hashable

#: Name used for synthesized super-source nodes.  A tuple is used so it can
#: never collide with ordinary string/int node ids from datasets.
SUPER_SOURCE: tuple[str,] = ("__super_source__",)


def check_dag(graph: CGraph) -> None:
    """Raise :class:`CyclicGraphError` unless ``graph`` is acyclic."""
    if not graph.is_dag():
        raise CyclicGraphError(
            "operation requires a DAG; run repro.graphs.acyclic_subgraph "
            "first to extract a maximal acyclic subgraph"
        )


def ensure_single_source(graph: CGraph) -> CGraph:
    """Return an equivalent graph with exactly one source.

    If the graph already has a single source it is returned unchanged.
    Otherwise a synthetic super-source (:data:`SUPER_SOURCE`) is added with
    one edge to each original source, mirroring the construction in
    Section 4.3 of the paper ("otherwise we create a new super-source s,
    and direct an edge from s to every source").

    Note that under the paper's model, sources generate *distinct* items, so
    collapsing them changes per-item semantics: use this only for
    single-item analyses (as the paper does for ``Acyclic``), or keep
    multiple sources and let the propagation engines aggregate per item.
    """
    if not graph.sources:
        raise MissingSourceError(
            "graph has no sources: every in-degree-0 node was removed or "
            "an explicit empty source set was given"
        )
    if len(graph.sources) == 1:
        return graph
    if SUPER_SOURCE in graph:
        raise GraphStructureError(
            "graph already contains a super-source; refusing to nest them"
        )
    edges = list(graph.edges())
    edges.extend((SUPER_SOURCE, s) for s in sorted(graph.sources, key=repr))
    return CGraph(edges, nodes=graph.nodes(), sources=[SUPER_SOURCE])


def reachable_subgraph(graph: CGraph) -> CGraph:
    """The induced subgraph on nodes reachable from the sources.

    Nodes that no item can ever reach are irrelevant to the objective
    (they receive zero copies under every filter set) and slow the
    algorithms down, so the experiment pipeline strips them first.
    """
    if not graph.sources:
        raise MissingSourceError("graph has no sources")
    keep = reachable_from(graph, list(graph.sources))
    if len(keep) == graph.number_of_nodes():
        return graph
    return graph.subgraph(keep)


def is_ctree(graph: CGraph) -> bool:
    """True when ``graph`` is a *communication tree* (c-tree).

    Following Section 4.1: the graph is a c-tree if removing the source
    node (and its incident edges) leaves a directed tree — i.e. every
    remaining node has exactly one remaining parent except a single tree
    root with none, and the remaining edges are acyclic and connected.
    """
    if len(graph.sources) != 1:
        return False
    source = next(iter(graph.sources))
    rest = [v for v in graph.nodes() if v != source]
    if not rest:
        return True
    roots = 0
    for v in rest:
        parents = [p for p in graph.predecessors(v) if p != source]
        if len(parents) > 1:
            return False
        if not parents:
            roots += 1
    if roots != 1:
        return False
    # One parent each and a single root guarantee |E| = |V| - 1 on the
    # source-free subgraph; acyclicity of the whole c-graph remains to check.
    return graph.is_dag()


def validate_filter_set(graph: CGraph, filters: set[Node]) -> None:
    """Raise when ``filters`` references nodes outside the graph."""
    missing = [v for v in filters if v not in graph]
    if missing:
        raise GraphStructureError(
            f"filter set references missing nodes: {missing[:5]!r}"
        )
