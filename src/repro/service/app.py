"""The transport-free service core: request dicts in, (status, dict) out.

:class:`ServiceApp` wires the three stateful layers together — GraphStore,
PlacementCache, JobManager — and implements every endpoint as a plain
method taking and returning JSON-compatible dicts.  The HTTP layer
(:mod:`repro.service.http`) is a thin route table over these methods, and
the tests exercise them directly without sockets.

Placement flow, the heart of the service::

    request ── key = (digest, algorithm, strategy, backend*, k, rng_seed,
        │             model*, trials*, mc_seed*, sketch_k*, sketch_seed*)
        │            (*resolved: never "auto"; the model triple collapses
        │             to ("deterministic", 0, 0) whenever the request is
        │             deterministic relaying in disguise, and the sketch
        │             pair to (0, 0) for exact strategies)
        ├─ exact cache hit ───────────────► 200, cached payload (free)
        ├─ prefix hit (k' ≤ cached k) ────► 200, sliced + rescored payload
        │                                   (one sweep; re-cached at k')
        └─ miss ─► JobManager (deduped) ──► 202 + job id, or 200 after
                                            blocking when "wait" was set

Every computed payload is produced by :mod:`repro.service.serialize` —
the same module the CLI's ``--json`` mode uses — so API responses are
bit-identical to ``filter-placement place --json`` for the same request.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Hashable

from repro.backends.registry import (
    BACKEND_NAMES,
    available_backends,
    get_backend,
    use_backend,
)
from repro.core.base import check_budget
from repro.core.registry import (
    STRATEGY_NAMES,
    algorithm_catalog,
    get_algorithm,
)
from repro.exceptions import ReproError
from repro.graphs.cgraph import CGraph
from repro.service.cache import PlacementCache, PlacementKey
from repro.service.jobs import JobManager
from repro.service.serialize import (
    parse_filters,
    placement_payload,
    stats_payload,
)
from repro.service.store import GraphStore, build_graph_from_spec

Node = Hashable

#: Default ceiling on ``"wait": true`` blocking, seconds.
DEFAULT_WAIT_TIMEOUT = 300.0

#: Largest accepted Monte-Carlo sample count per placement request.
#: ``trials`` scales every evaluation's work and the sampled-world
#: memory linearly, and it is client-controlled — an unbounded value
#: would let one request monopolize a worker and the world caches.
MAX_TRIALS = 4096

#: Largest accepted bottom-k sketch resolution per placement request.
#: Register files cost ``n × k × 8`` bytes and every merge pass scales
#: with ``k``; like ``trials``, the value is client-controlled.
MAX_SKETCH_K = 4096


class RequestError(ReproError):
    """A request the service must answer with a 4xx status."""

    def __init__(self, message: str, *, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def _build_request_model(
    model: str,
    trials: int,
    mc_seed: int,
    probabilities: "float | dict | None",
):
    """The resolved :class:`PropagationModel` of a request (None = exact)."""
    if model == "deterministic" or probabilities is None:
        return None
    from repro.propagation.model import build_model

    return build_model(
        model, edge_prob=probabilities, trials=trials, seed=mc_seed
    )


def execute_placement(
    graph: CGraph,
    algorithm: str,
    strategy: str,
    backend: str,
    k: int,
    rng_seed: int,
    phi_constants: tuple[int, int] | None = None,
    model: str = "deterministic",
    trials: int = 0,
    mc_seed: int = 0,
    probabilities: "float | dict | None" = None,
    world_workers: int = 1,
    sketch_k: int = 0,
    sketch_seed: int = 0,
) -> dict[str, Any]:
    """Run one fully-specified placement and serialize it.

    The single execution path behind cold misses in both pool modes: the
    thread pool calls it on the resident graph, the process pool calls
    :func:`execute_placement_from_spec` which rebuilds the graph first.
    The ``use_backend`` scope (thread-local) covers algorithms that
    resolve the backend internally rather than via their ``backend``
    attribute.

    ``model``/``trials``/``mc_seed`` are the propagation-model axis of
    the request; ``probabilities`` the graph's registered edge relay
    probabilities.  Deterministic requests (the default triple) take the
    byte-identical pre-existing path.  ``sketch_k``/``sketch_seed`` are
    the sketch-strategy axis (``0`` = strategy defaults / not a sketch
    request); they only reach algorithms that expose the attributes.

    Every execution runs through an
    :class:`~repro.obs.instrument.InstrumentedBackend` (a pure
    forwarder — results are unchanged) so per-kind evaluation counts
    land on the metrics ledger, and the solve/serialize split is
    recorded as spans when tracing is on (the serializer never sees the
    wrapper's name, so payloads stay bit-identical to the CLI's).
    """
    from repro.obs.instrument import InstrumentedBackend
    from repro.obs.trace import span
    from repro.propagation.parallel import use_world_workers

    resolved = _build_request_model(model, trials, mc_seed, probabilities)
    with span("service.plan", algorithm=algorithm, backend=backend, k=k):
        instrumented = InstrumentedBackend(get_backend(backend))
        instance = get_algorithm(
            algorithm,
            strategy=strategy,
            backend=instrumented,
            model=resolved,
            sketch_k=sketch_k or None,
            sketch_seed=sketch_seed or None,
        )
    try:
        # The world-worker scope is thread-local, so it must be entered
        # here — on the pool thread running the job — not at app startup.
        with use_backend(instrumented), use_world_workers(world_workers):
            with span("service.solve", algorithm=algorithm, k=k):
                result = instance.place(
                    graph, k, rng=random.Random(rng_seed)
                )
            if resolved is not None:
                with span("service.serialize"):
                    return placement_payload(
                        graph, result, backend=instrumented, model=resolved
                    )
        phi_empty, f_max = phi_constants if phi_constants else (None, None)
        with span("service.serialize"):
            return placement_payload(
                graph,
                result,
                phi_empty=phi_empty,
                f_max=f_max,
                backend=instrumented,
            )
    finally:
        instrumented.publish()


def execute_placement_from_spec(
    spec: dict[str, Any],
    algorithm: str,
    strategy: str,
    backend: str,
    k: int,
    rng_seed: int,
    model: str = "deterministic",
    trials: int = 0,
    mc_seed: int = 0,
    probabilities: "float | dict | None" = None,
    world_workers: int = 1,
    sketch_k: int = 0,
    sketch_seed: int = 0,
) -> dict[str, Any]:
    """Process-pool entry point: rebuild the graph, then place.

    Module-level and driven by plain data so it pickles; the rebuilt
    graph is discarded with the worker's memory once the payload returns.
    """
    graph = build_graph_from_spec(spec)
    return execute_placement(
        graph,
        algorithm,
        strategy,
        backend,
        k,
        rng_seed,
        model=model,
        trials=trials,
        mc_seed=mc_seed,
        probabilities=probabilities,
        world_workers=world_workers,
        sketch_k=sketch_k,
        sketch_seed=sketch_seed,
    )


class ServiceApp:
    """The placement service: graph store + result cache + worker pool."""

    def __init__(
        self,
        *,
        workers: int = 4,
        pool: str = "thread",
        cache_entries: int = 1024,
        cache_bytes: int = 32 * 1024 * 1024,
        max_graphs: int | None = None,
        warm_backends: bool = True,
        wait_timeout: float = DEFAULT_WAIT_TIMEOUT,
        world_workers: int = 1,
        persist_dir: "str | None" = None,
    ) -> None:
        self.store = GraphStore(
            max_graphs=max_graphs,
            warm_backends=warm_backends,
            persist_dir=persist_dir,
        )
        self.cache = PlacementCache(
            max_entries=cache_entries, max_bytes=cache_bytes
        )
        self.jobs = JobManager(workers=workers, pool=pool)
        #: World-shard workers each placement job evaluates sampled
        #: worlds with (1 = serial); scoped per job thread, so concurrent
        #: jobs cannot leak the setting into each other.
        self.world_workers = max(1, int(world_workers))
        self.started_unix = time.time()
        self.wait_timeout = wait_timeout
        self._requests = 0
        self._lock = threading.Lock()

    def close(self) -> None:
        """Shut the worker pools down (idempotent)."""
        self.jobs.shutdown(wait=False)

    def _count_request(self) -> None:
        with self._lock:
            self._requests += 1

    # ------------------------------------------------------------------
    # Graphs
    # ------------------------------------------------------------------

    def handle_register_graph(
        self, body: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        """``POST /graphs`` — register a dataset, edge list, or spec.

        Body shapes (exactly one of ``dataset`` / ``edges`` /
        ``fpc_path``):

        * ``{"dataset": "citation", "seed": 0, "scale": 0.1}``
        * ``{"edges": "u v\\n...", "sources": [...], "prepare": false,
          "initiator": ..., "name": "my-upload"}``
        * ``{"fpc_path": "/data/plans/web.fpc", "name": "web"}`` — a
          compiled-plan directory already on the server's filesystem,
          memory-mapped in place (the streamed route: million-node
          graphs register without a JSON edge list ever existing).

        Responds 201 on first registration, 200 when the digest was
        already resident (registration is idempotent).
        """
        self._count_request()
        if not isinstance(body, dict):
            raise RequestError("request body must be a JSON object")
        has_dataset = "dataset" in body
        has_edges = "edges" in body
        has_fpc = "fpc_path" in body
        if has_dataset + has_edges + has_fpc != 1:
            raise RequestError(
                "provide exactly one of 'dataset', 'edges' or 'fpc_path'"
            )
        probabilities = _parse_probabilities(body)
        try:
            if has_fpc:
                if not isinstance(body["fpc_path"], str):
                    raise RequestError(
                        "'fpc_path' must be a filesystem path string"
                    )
                name = body.get("name")
                entry, created = self.store.register_fpc(
                    body["fpc_path"],
                    name=None if name is None else str(name),
                    probabilities=probabilities,
                )
            elif has_dataset:
                seed = _require_int(body.get("seed", 0), "seed")
                scale = body.get("scale")
                if scale is not None and not isinstance(scale, (int, float)):
                    raise RequestError("'scale' must be a number")
                entry, created = self.store.register_dataset(
                    body["dataset"],
                    seed=seed,
                    scale=None if scale is None else float(scale),
                    probabilities=probabilities,
                )
            else:
                if not isinstance(body["edges"], str):
                    raise RequestError("'edges' must be an edge-list string")
                sources = body.get("sources")
                if sources is not None and not isinstance(sources, list):
                    raise RequestError("'sources' must be a list of node ids")
                entry, created = self.store.register_edges(
                    body["edges"],
                    name=str(body.get("name", "upload")),
                    sources=sources,
                    prepare=bool(body.get("prepare", False)),
                    initiator=body.get("initiator"),
                    probabilities=probabilities,
                )
        except RequestError:
            raise
        except (ReproError, OSError) as exc:
            # Unknown dataset names, malformed edge lists, bad graph
            # structure, unreadable .fpc directories — all client
            # errors, not server faults.
            raise RequestError(str(exc)) from None
        payload = entry.describe_payload()
        payload["created"] = created
        return (201 if created else 200), payload

    def handle_list_graphs(self) -> tuple[int, dict[str, Any]]:
        """``GET /graphs`` — every resident graph, LRU order."""
        self._count_request()
        return 200, {
            "graphs": [e.describe_payload() for e in self.store.entries()]
        }

    def handle_graph_stats(self, digest: str) -> tuple[int, dict[str, Any]]:
        """``GET /graphs/{digest}/stats`` — structural summary."""
        self._count_request()
        entry = self._get_entry(digest)
        payload = stats_payload(entry.name, entry.stats())
        payload["digest"] = entry.digest
        compiled = getattr(entry.graph, "_compiled_cache", None) or getattr(
            entry.graph, "_compiled", None
        )
        if compiled is not None:
            payload["compiled_bytes"] = compiled.nbytes_split()
        return 200, payload

    def _get_entry(self, digest: str):
        try:
            return self.store.get(digest)
        except ReproError as exc:
            raise RequestError(str(exc), status=404) from None

    # ------------------------------------------------------------------
    # Placements
    # ------------------------------------------------------------------

    def _placement_key(
        self, body: dict[str, Any]
    ) -> tuple[PlacementKey, Any]:
        if not isinstance(body, dict):
            raise RequestError("request body must be a JSON object")
        digest = body.get("graph")
        if not isinstance(digest, str):
            raise RequestError("'graph' must be a graph digest string")
        entry = self._get_entry(digest)
        algorithm = body.get("algorithm", "G_All")
        strategy = body.get("strategy", "exact")
        backend = body.get("backend", "auto")
        if strategy not in STRATEGY_NAMES:
            known = ", ".join(STRATEGY_NAMES)
            raise RequestError(
                f"unknown strategy {strategy!r}; known strategies: {known}"
            )
        if backend not in BACKEND_NAMES:
            known = ", ".join(BACKEND_NAMES)
            raise RequestError(
                f"unknown backend {backend!r}; known backends: {known}"
            )
        model = body.get("model", "deterministic")
        from repro.propagation.model import DEFAULT_TRIALS, MODEL_NAMES

        if model not in MODEL_NAMES:
            known = ", ".join(MODEL_NAMES)
            raise RequestError(
                f"unknown model {model!r}; known models: {known}"
            )
        trials = _require_int(body.get("trials", DEFAULT_TRIALS), "trials")
        if trials <= 0:
            raise RequestError("'trials' must be a positive integer")
        if trials > MAX_TRIALS:
            raise RequestError(
                f"'trials' must not exceed {MAX_TRIALS}"
            )
        mc_seed = _require_int(body.get("mc_seed", 0), "mc_seed")
        # Resolve the model axis the way the cache needs it: a
        # probabilistic request on a graph with no (non-unit) registered
        # probabilities *is* deterministic relaying, and must land on the
        # deterministic cache cell rather than fork it.
        if model == "deterministic" or entry.probabilities is None:
            model, trials, mc_seed = "deterministic", 0, 0
        sketch_k, sketch_seed = self._sketch_axis(body, strategy, model)
        try:
            # Validates the name and availability; resolves "auto" to the
            # concrete backend so the cache never forks on spelling.
            resolved = get_backend(backend).name
            get_algorithm(algorithm, strategy=strategy)
            k = _require_int(body.get("k"), "k")
            check_budget(entry.graph, k)
        except ReproError as exc:
            raise RequestError(str(exc)) from None
        rng_seed = _require_int(body.get("rng_seed", 0), "rng_seed")
        key = PlacementKey(
            digest=entry.digest,
            algorithm=algorithm,
            strategy=strategy,
            backend=resolved,
            k=k,
            rng_seed=rng_seed,
            model=model,
            trials=trials,
            mc_seed=mc_seed,
            sketch_k=sketch_k,
            sketch_seed=sketch_seed,
        )
        return key, entry

    @staticmethod
    def _sketch_axis(
        body: dict[str, Any], strategy: str, model: str
    ) -> tuple[int, int]:
        """Resolve ``(sketch_k, sketch_seed)`` the way the cache needs it.

        Exact strategies normalize to ``(0, 0)`` no matter how the request
        spelled the parameters, so exact cells never fork.  Sketch
        requests accept at most one of ``sketch_k`` / ``epsilon``
        (``epsilon`` converts via ``k_for_epsilon``, so two spellings of
        the same resolution land on one cell) and reject the
        probabilistic-model axis up front — the algorithm would refuse it
        anyway, but after queueing a job the client was told about.
        """
        if strategy != "sketch":
            return 0, 0
        if model != "deterministic":
            raise RequestError(
                "the 'sketch' strategy estimates deterministic relaying "
                "only; drop 'model' or use strategy 'exact'/'lazy'"
            )
        from repro.sketches.bottomk import DEFAULT_SKETCH_K, k_for_epsilon

        raw_k = body.get("sketch_k")
        epsilon = body.get("epsilon")
        if raw_k is not None and epsilon is not None:
            raise RequestError(
                "provide at most one of 'sketch_k' and 'epsilon'"
            )
        if epsilon is not None:
            if isinstance(epsilon, bool) or not isinstance(
                epsilon, (int, float)
            ) or not epsilon > 0:
                raise RequestError("'epsilon' must be a positive number")
            sketch_k = k_for_epsilon(float(epsilon))
        elif raw_k is not None:
            sketch_k = _require_int(raw_k, "sketch_k")
            if sketch_k < 4:
                raise RequestError("'sketch_k' must be at least 4")
        else:
            sketch_k = DEFAULT_SKETCH_K
        if sketch_k > MAX_SKETCH_K:
            raise RequestError(
                f"'sketch_k' must not exceed {MAX_SKETCH_K}"
            )
        return sketch_k, _require_int(body.get("sketch_seed", 0), "sketch_seed")

    @staticmethod
    def _request_doc(key: PlacementKey) -> dict[str, Any]:
        doc = {
            "graph": key.digest,
            "algorithm": key.algorithm,
            "strategy": key.strategy,
            "backend": key.backend,
            "k": key.k,
            "rng_seed": key.rng_seed,
        }
        if key.model != "deterministic":
            doc["model"] = key.model
            doc["trials"] = key.trials
            doc["mc_seed"] = key.mc_seed
        if key.sketch_k:
            doc["sketch_k"] = key.sketch_k
            doc["sketch_seed"] = key.sketch_seed
        return doc

    def handle_placement(
        self, body: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        """``POST /placements`` — cached answers inline, misses as jobs.

        Responds 200 with the payload on an exact or prefix cache hit;
        otherwise 202 with a job id (or 200 after blocking, when the body
        sets ``"wait": true``).
        """
        self._count_request()
        key, entry = self._placement_key(body)
        request_doc = self._request_doc(key)

        cached = self.cache.get(key)
        if cached is not None:
            return 200, {
                "request": request_doc,
                "cache": {"hit": True, "kind": "exact"},
                "result": cached,
            }

        donor = self.cache.find_prefix_donor(key)
        if donor is not None:
            derived = self._derive_prefix(key, entry, donor[1])
            return 200, {
                "request": request_doc,
                "cache": {"hit": True, "kind": "prefix"},
                "result": derived,
            }

        # Validate the wait timeout before submitting: rejecting the
        # request after the job is queued would run work the client was
        # never told about.
        timeout = body.get("timeout", self.wait_timeout)
        if body.get("wait") and (
            not isinstance(timeout, (int, float))
            or isinstance(timeout, bool)
            or timeout <= 0
        ):
            raise RequestError("'timeout' must be a positive number")
        from repro.obs.trace import current_request_id

        job, created = self.jobs.submit(
            str(key),
            self._job_fn(key, entry),
            request_id=current_request_id(),
        )
        if body.get("wait"):
            if not job.wait(float(timeout)):
                return 202, {
                    "request": request_doc,
                    "cache": {"hit": False},
                    "job": job.describe(),
                    "timed_out": True,
                }
            return self._job_response(job, request_doc)
        return 202, {
            "request": request_doc,
            "cache": {"hit": False},
            "job": job.describe(),
            "deduplicated": not created,
        }

    def _job_fn(self, key: PlacementKey, entry):
        """The closure a cache miss runs on the worker pool."""

        def compute() -> dict[str, Any]:
            if self.jobs.pool_kind == "process":
                payload = self.jobs.dispatch(
                    execute_placement_from_spec,
                    entry.spec,
                    key.algorithm,
                    key.strategy,
                    key.backend,
                    key.k,
                    key.rng_seed,
                    key.model,
                    key.trials,
                    key.mc_seed,
                    entry.probabilities,
                    self.world_workers,
                    key.sketch_k,
                    key.sketch_seed,
                )
            else:
                payload = execute_placement(
                    entry.graph,
                    key.algorithm,
                    key.strategy,
                    key.backend,
                    key.k,
                    key.rng_seed,
                    phi_constants=entry.phi_constants(),
                    model=key.model,
                    trials=key.trials,
                    mc_seed=key.mc_seed,
                    probabilities=entry.probabilities,
                    world_workers=self.world_workers,
                    sketch_k=key.sketch_k,
                    sketch_seed=key.sketch_seed,
                )
            # Estimate-only sketch payloads (``scored: false``) carry no
            # phi family, so they cannot seed prefix derivations.
            self.cache.put(
                key, payload,
                prefix_consistent=(
                    bool(payload["prefix_consistent"]) and "phi" in payload
                ),
            )
            return payload

        return compute

    def _derive_prefix(
        self, key: PlacementKey, entry, donor_payload: dict[str, Any]
    ) -> dict[str, Any]:
        """Slice a cached larger-k payload down to ``key.k`` and rescore.

        Greedy prefix consistency guarantees the sliced filter sequence is
        exactly what a fresh ``k``-run would select; only the objective
        numbers for the shorter prefix need one scoring sweep.  The
        derived payload is cached under its own key, so repeats are pure
        lookups.
        """
        filters = parse_filters(donor_payload["filters"][: key.k])
        payload = dict(donor_payload)
        payload["requested_k"] = key.k
        payload["filters"] = donor_payload["filters"][: key.k]
        payload["filters_found"] = len(filters)
        payload["steps"] = donor_payload["steps"][: len(filters)]
        if "sketch" in payload:
            # The estimator audit trail is per-step; slice it with them.
            block = dict(payload["sketch"])
            block["estimated_gains"] = block["estimated_gains"][: len(filters)]
            payload["sketch"] = block
        if key.model != "deterministic":
            # SAA scoring: the donor's phi_empty/f_max already average
            # the request's worlds (same (model, trials, mc_seed) cell),
            # so only Φ̂(A) needs one sampled evaluation.
            from repro.core.objective import expected_phi

            resolved = _build_request_model(
                key.model, key.trials, key.mc_seed, entry.probabilities
            )
            phi_empty = payload["phi_empty"]
            f_max = payload["f_max"]
            phi_a: Any = expected_phi(
                entry.graph, filters, model=resolved, backend=key.backend
            )
        else:
            phi_empty, f_max = entry.phi_constants()
            from repro.core.objective import phi as phi_fn

            phi_a = phi_fn(entry.graph, filters, backend=key.backend)
        payload["phi_empty"] = phi_empty
        payload["phi"] = phi_a
        payload["objective"] = phi_empty - phi_a
        payload["f_max"] = f_max
        payload["filter_ratio"] = (
            1.0 if f_max == 0 else (phi_empty - phi_a) / f_max
        )
        self.cache.put(key, payload, prefix_consistent=True)
        return payload

    def _job_response(
        self, job, request_doc: dict[str, Any] | None = None
    ) -> tuple[int, dict[str, Any]]:
        doc: dict[str, Any] = {"job": job.describe()}
        if request_doc is not None:
            doc["request"] = request_doc
        if job.state == "done":
            doc["cache"] = {"hit": False, "kind": "computed"}
            doc["result"] = job.payload
            return 200, doc
        if job.state == "failed":
            return 500, doc
        return 202, doc

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------

    def handle_job(self, job_id: str) -> tuple[int, dict[str, Any]]:
        """``GET /jobs/{id}`` — state, plus the result once done."""
        self._count_request()
        try:
            job = self.jobs.get(job_id)
        except ReproError as exc:
            raise RequestError(str(exc), status=404) from None
        return self._job_response(job)

    def handle_cancel_job(self, job_id: str) -> tuple[int, dict[str, Any]]:
        """``DELETE /jobs/{id}`` — cancel a still-queued job."""
        self._count_request()
        try:
            job = self.jobs.get(job_id)
        except ReproError as exc:
            raise RequestError(str(exc), status=404) from None
        cancelled = self.jobs.cancel(job_id)
        return 200, {"job": job.describe(), "cancelled": cancelled}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def handle_algorithms(self) -> tuple[int, dict[str, Any]]:
        """``GET /algorithms`` — the registry, with per-name capabilities."""
        from repro.propagation.model import MODEL_NAMES

        self._count_request()
        return 200, {
            "algorithms": algorithm_catalog(),
            "strategies": list(STRATEGY_NAMES),
            "backends": list(available_backends()),
            "models": list(MODEL_NAMES),
        }

    def handle_healthz(self) -> tuple[int, dict[str, Any]]:
        """``GET /healthz`` — liveness plus the numbers an operator wants.

        Store and cache figures come from each component's own
        lock-guarded ``stats()`` snapshot, so a concurrent registration
        can never produce a torn view (e.g. a ``graphs`` count that
        disagrees with the resident node/edge totals it arrived with).
        """
        store_stats = self.store.stats()
        return 200, {
            "status": "ok",
            "uptime_seconds": round(time.time() - self.started_unix, 3),
            "requests": self._requests,
            "graphs": store_stats["graphs"],
            "store": store_stats,
            "cache": self.cache.stats(),
            "jobs": self.jobs.counts(),
            "pool": {
                "kind": self.jobs.pool_kind,
                "workers": self.jobs.workers,
                "world_workers": self.world_workers,
            },
            "backends": list(available_backends()),
        }

    def handle_metrics(self) -> tuple[int, str]:
        """``GET /metrics`` — the ledger in Prometheus text exposition.

        Live-updated families (backend evaluations, CELF counters, job
        durations, HTTP timings) render as-is; component-owned counters
        (cache, store, jobs, request totals) are *mirrored at scrape
        time* from each component's lock-guarded ``stats()``/``counts()``
        snapshot, so the scrape is consistent and live code never pays a
        registry lock per cache lookup.
        """
        from repro.obs.metrics import REGISTRY

        self._count_request()
        cache = self.cache.stats()
        cache_requests = REGISTRY.counter(
            "fp_cache_requests_total",
            "Placement-cache lookups by outcome.",
            labels=("outcome",),
        )
        cache_requests.set_total(cache["hits"], outcome="hit")
        cache_requests.set_total(cache["prefix_hits"], outcome="prefix_hit")
        cache_requests.set_total(cache["misses"], outcome="miss")
        REGISTRY.counter(
            "fp_cache_evictions_total", "Placement-cache evictions."
        ).set_total(cache["evictions"])
        REGISTRY.gauge(
            "fp_cache_entries", "Resident placement-cache entries."
        ).set(cache["entries"])
        REGISTRY.gauge(
            "fp_cache_bytes", "Resident placement-cache payload bytes."
        ).set(cache["bytes"])

        store = self.store.stats()
        REGISTRY.gauge(
            "fp_store_graphs", "Graphs resident in the store."
        ).set(store["graphs"])
        REGISTRY.counter(
            "fp_store_registrations_total", "Graph registrations accepted."
        ).set_total(store["registrations"])
        REGISTRY.counter(
            "fp_store_evictions_total", "Graphs evicted by the LRU bound."
        ).set_total(store["evictions"])
        REGISTRY.gauge(
            "fp_store_resident_nodes", "Nodes across resident graphs."
        ).set(store["nodes"])
        REGISTRY.gauge(
            "fp_store_resident_edges", "Edges across resident graphs."
        ).set(store["edges"])
        REGISTRY.gauge(
            "fp_store_compiled_bytes",
            "Bytes held by resident compiled graph plans.",
        ).set(store["compiled_bytes"])
        REGISTRY.gauge(
            "fp_store_compiled_mapped_bytes",
            "Bytes of compiled graph tables backed by memory-mapped files.",
        ).set(store["compiled_mapped_bytes"])

        jobs = self.jobs.counts()
        job_gauge = REGISTRY.gauge(
            "fp_jobs", "Known jobs by lifecycle state.", labels=("state",)
        )
        for state in ("queued", "running", "done", "failed", "cancelled"):
            job_gauge.set(jobs[state], state=state)
        REGISTRY.counter(
            "fp_jobs_submitted_total", "Jobs submitted to the pool."
        ).set_total(jobs["submitted"])
        REGISTRY.counter(
            "fp_jobs_deduplicated_total",
            "Placement requests answered by an in-flight identical job.",
        ).set_total(jobs["deduplicated"])

        with self._lock:
            requests = self._requests
        REGISTRY.counter(
            "fp_service_requests_total", "Requests handled by the app."
        ).set_total(requests)
        REGISTRY.gauge(
            "fp_service_uptime_seconds", "Seconds since app construction."
        ).set(round(time.time() - self.started_unix, 3))

        # Stable catalog: families whose natural first increment may not
        # have happened yet (no probabilistic request, no sweep on this
        # instance) are seeded with explicit zero samples, so scrapers
        # and dashboards see the full schema from the first scrape.
        from repro.obs.instrument import evaluation_counter

        evaluation_counter().inc(0, kind="marginal_gains", backend="python")
        world_cache = REGISTRY.counter(
            "fp_sampling_world_cache_total",
            "Sampled-world cache lookups by outcome.",
            labels=("outcome",),
        )
        world_cache.inc(0, outcome="hit")
        world_cache.inc(0, outcome="miss")
        REGISTRY.counter(
            "fp_sampling_worlds_built_total",
            "Sampled world sets constructed (cache misses that built).",
        ).inc(0)
        return 200, REGISTRY.render()

    def handle_trace(self, job_id: str) -> tuple[int, dict[str, Any]]:
        """``GET /traces/{job_id}`` — the recorded span tree of a solve.

        404s when the job is unknown *or* its trace is gone (tracing
        disabled, job not finished, or the ring buffer already evicted
        it); the error message distinguishes the cases.
        """
        from repro.obs.trace import TRACER, format_trace

        self._count_request()
        try:
            job = self.jobs.get(job_id)
        except ReproError as exc:
            raise RequestError(str(exc), status=404) from None
        trace = TRACER.get(job_id)
        if trace is None:
            detail = (
                "tracing is disabled on this server"
                if not TRACER.enabled
                else "no trace recorded (job not finished, or evicted)"
            )
            raise RequestError(
                f"no trace for job {job_id!r}: {detail}", status=404
            )
        return 200, {
            "job": job.describe(),
            "trace": trace.to_dict(),
            "tree": format_trace(trace),
        }

    # ------------------------------------------------------------------
    # Convenience (tests, bench)
    # ------------------------------------------------------------------

    def place_sync(self, body: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        """``handle_placement`` with ``wait=True`` forced — test/bench sugar."""
        return self.handle_placement({**body, "wait": True})


def _require_int(value: Any, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError(f"'{name}' must be an integer")
    return value


def _parse_probabilities(body: dict[str, Any]) -> "float | dict | None":
    """Extract registered edge probabilities from a ``POST /graphs`` body.

    Exactly one of two shapes: ``"edge_prob": 0.5`` (one probability for
    every edge) or ``"edge_probs": [[u, v, p], ...]`` (per-edge values;
    unlisted edges relay deterministically, matching the mapping
    convention everywhere else in the library).  Node values must match
    the graph's nodes as uploaded (ints stay ints, strings stay
    strings).  Edge membership and probability ranges are validated by
    the store at registration.
    """
    uniform = body.get("edge_prob")
    per_edge = body.get("edge_probs")
    if uniform is None and per_edge is None:
        return None
    if uniform is not None and per_edge is not None:
        raise RequestError(
            "provide at most one of 'edge_prob' and 'edge_probs'"
        )
    if per_edge is None:
        if isinstance(uniform, bool) or not isinstance(uniform, (int, float)):
            raise RequestError("'edge_prob' must be a number in [0, 1]")
        return float(uniform)
    if not isinstance(per_edge, list):
        raise RequestError(
            "'edge_probs' must be a list of [u, v, probability] triples"
        )
    mapping: dict = {}
    for item in per_edge:
        if not (isinstance(item, list) and len(item) == 3):
            raise RequestError(
                "'edge_probs' entries must be [u, v, probability] triples"
            )
        u, v, p = item
        if isinstance(p, bool) or not isinstance(p, (int, float)):
            raise RequestError("edge probability must be a number in [0, 1]")
        try:
            mapping[(u, v)] = float(p)
        except TypeError:
            # Unhashable node values (nested JSON arrays/objects) are a
            # malformed request, not a server fault.
            raise RequestError(
                "'edge_probs' node values must be node ids "
                "(strings or numbers)"
            ) from None
    return mapping
