"""The GraphStore: resident graphs under content-addressed digests.

Registering a graph is where the service pays its one-time costs — build
the immutable :class:`~repro.graphs.cgraph.CGraph`, warm its **one**
shared compiled plan (:meth:`CGraph.compiled`: interned ids, CSR both
ways, cached topological order and level partition — the view every
backend, session and algorithm consumes), and compute the per-graph
objective constants ``Φ(∅)`` and ``F(V)``.  Every subsequent placement
request — on any backend, under any strategy — reuses all of it; there
is exactly one compiled plan per digest, not one per backend.

Content addressing makes registration idempotent: the digest is a SHA-256
over the sorted ``repr`` of nodes, edges and sources, so the same graph —
whether regenerated from a dataset spec, re-uploaded as an edge list, or
round-tripped through ``filter-placement generate`` — lands on the same
entry, and a cache keyed by digest survives re-registration.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Hashable

from repro.analysis.metrics import GraphStats, describe
from repro.core.objective import max_objective, phi
from repro.datasets.registry import DATASET_NAMES, get_dataset
from repro.exceptions import ParameterError
from repro.graphs.cgraph import CGraph
from repro.graphs.io import read_edge_list_text

Node = Hashable

#: Shortest digest prefix accepted by :meth:`GraphStore.get`.
MIN_DIGEST_PREFIX = 8


def graph_digest(
    graph: CGraph,
    probabilities: "float | dict | None" = None,
) -> str:
    """SHA-256 content digest of a c-graph.

    Hashes the *content* — nodes, edges, sources, each as sorted ``repr``
    lines — not the construction order, so two graphs with identical
    structure digest identically no matter how they were built.  ``repr``
    keeps the int/string node distinction (``1`` vs ``'1'``) that plain
    string formatting would collapse.

    ``probabilities`` are registered edge relay probabilities (a uniform
    float or an edge-keyed mapping).  Non-unit probabilities join the
    digest as sorted ``p`` lines: the same structure under different
    relay behaviour is a different resident graph.  ``None`` and unit
    probabilities hash identically to the probability-free form, so
    every pre-existing digest is unchanged.
    """
    h = hashlib.sha256()
    for node in sorted(map(repr, graph.nodes())):
        h.update(b"n ")
        h.update(node.encode("utf-8"))
        h.update(b"\n")
    for u, v in sorted((repr(u), repr(v)) for u, v in graph.edges()):
        h.update(b"e ")
        h.update(u.encode("utf-8"))
        h.update(b" ")
        h.update(v.encode("utf-8"))
        h.update(b"\n")
    for source in sorted(map(repr, graph.sources)):
        h.update(b"s ")
        h.update(source.encode("utf-8"))
        h.update(b"\n")
    for line in _probability_lines(probabilities):
        h.update(line.encode("utf-8"))
    return h.hexdigest()


def _probability_lines(probabilities: "float | dict | None") -> list[str]:
    """Canonical digest lines of a probability spec ([] when unit/None)."""
    if probabilities is None:
        return []
    if isinstance(probabilities, dict):
        lines = [
            f"p {u!r} {v!r} {float(p)!r}\n"
            for (u, v), p in probabilities.items()
            if float(p) < 1.0
        ]
        return sorted(lines)
    p = float(probabilities)
    if p >= 1.0:
        return []
    return [f"p * {p!r}\n"]


def build_graph_from_spec(spec: dict[str, Any]) -> CGraph:
    """Rebuild a graph from a :class:`GraphEntry` spec.

    Module-level and driven purely by picklable data so process-pool
    workers (which cannot share the resident graph) can reconstruct it.
    """
    kind = spec.get("kind")
    if kind == "dataset":
        kwargs: dict[str, Any] = {"seed": spec.get("seed", 0)}
        if spec.get("scale") is not None:
            kwargs["scale"] = spec["scale"]
        return get_dataset(spec["dataset"], **kwargs)
    if kind == "edges":
        graph = read_edge_list_text(
            spec["text"], sources=spec.get("sources")
        )
        if spec.get("prepare"):
            from repro.datasets.loaders import prepare_cgraph

            graph = prepare_cgraph(graph, initiator=spec.get("initiator"))
        return graph
    if kind == "fpc":
        from repro.graphs.largescale import load_compiled

        return load_compiled(spec["path"])
    raise ParameterError(f"unknown graph spec kind {kind!r}")


class GraphEntry:
    """One resident graph plus its lazily-computed derived data."""

    __slots__ = (
        "digest",
        "graph",
        "name",
        "spec",
        "probabilities",
        "registered_unix",
        "_lock",
        "_phi_constants",
        "_stats",
    )

    def __init__(
        self,
        digest: str,
        graph: CGraph,
        name: str,
        spec: dict[str, Any],
        probabilities: "float | dict | None" = None,
    ) -> None:
        self.digest = digest
        self.graph = graph
        self.name = name
        self.spec = spec
        # Registered edge relay probabilities (uniform float or an
        # edge-keyed dict); None = deterministic relaying.  Part of the
        # digest, validated against the graph at registration.
        self.probabilities = probabilities
        self.registered_unix = time.time()
        self._lock = threading.Lock()
        self._phi_constants: tuple[int, int] | None = None
        self._stats: GraphStats | None = None

    def stats(self) -> GraphStats:
        """The graph's structural summary (computed once)."""
        with self._lock:
            if self._stats is None:
                self._stats = describe(self.graph)
            return self._stats

    def phi_constants(self) -> tuple[int, int]:
        """``(Φ(∅), F(V))`` — exact ints, backend-independent.

        Computed on first use with the default backend and shared by every
        placement request against this graph, saving two full propagation
        sweeps per request.
        """
        with self._lock:
            if self._phi_constants is None:
                phi_empty = phi(self.graph)
                self._phi_constants = (
                    phi_empty,
                    max_objective(self.graph, phi_empty=phi_empty),
                )
            return self._phi_constants

    def prime_phi_constants(self, constants: tuple[int, int]) -> None:
        """Seed ``(Φ(∅), F(V))`` with an externally computed pair.

        The bench harness computes the constants once per graph and
        shares them with its throwaway service apps so setup cost never
        leaks into a timed region.
        """
        with self._lock:
            if self._phi_constants is None:
                self._phi_constants = constants

    def describe_payload(self) -> dict[str, Any]:
        """The entry's JSON form for listings and registration responses."""
        public_spec = {
            k: v for k, v in self.spec.items() if k != "text"
        }
        if isinstance(self.probabilities, dict):
            edge_prob: Any = f"per-edge({len(self.probabilities)})"
        elif self.probabilities is not None:
            edge_prob = float(self.probabilities)
        else:
            edge_prob = None
        return {
            "digest": self.digest,
            "name": self.name,
            "spec": public_spec,
            "nodes": self.graph.number_of_nodes(),
            "edges": self.graph.number_of_edges(),
            "edge_prob": edge_prob,
            "is_dag": self.graph.is_dag(),
            "registered_unix": round(self.registered_unix, 3),
        }


class GraphStore:
    """Thread-safe registry of resident graphs, addressed by digest.

    Parameters
    ----------
    max_graphs:
        Optional LRU bound on resident graphs (None = unbounded).  The
        placement cache keys by digest, so evicting a graph never serves a
        wrong answer — a re-registration restores the same digest and the
        cached placements still apply.
    warm_backends:
        At registration, build the graph's single shared compiled plan
        and each available backend's thin adapter over it (skipped
        automatically for cyclic graphs, whose topological accessors
        the consumers reject).  Since the compile-once refactor the
        structure itself exists exactly once; what each backend warms
        is only its derived view (the NumPy backend's level groupings
        and overflow probe).  Warming routes the reachability counts
        through the blocked out-of-core sweep
        (:func:`repro.propagation.reach.warm_reach_counts`), so even
        10^5-node registrations stay block-size resident.
    persist_dir:
        Optional directory of ``.fpc`` plan snapshots.  Every DAG
        registration (without edge probabilities, which ``.fpc`` does
        not carry) is persisted there as ``<digest>.fpc`` via
        :func:`~repro.graphs.largescale.save_compiled` — compiled
        tables *and* warmed reach counts — and a restarted store
        memory-maps the whole set back with
        :func:`~repro.graphs.largescale.load_compiled`, skipping both
        the compile and the reachability sweep.
    """

    def __init__(
        self,
        *,
        max_graphs: int | None = None,
        warm_backends: bool = True,
        persist_dir: "str | Path | None" = None,
    ) -> None:
        if max_graphs is not None and max_graphs < 1:
            raise ParameterError("max_graphs must be positive or None")
        self._entries: OrderedDict[str, GraphEntry] = OrderedDict()
        self._lock = threading.RLock()
        self._max_graphs = max_graphs
        self._warm_backends = warm_backends
        self._persist_dir = None if persist_dir is None else Path(persist_dir)
        #: Lifetime counters (guarded by the same lock as the entries, so
        #: ``stats()`` snapshots counters and residency consistently).
        self.registrations = 0
        self.evictions = 0
        #: Plans written to / restored from ``persist_dir`` this lifetime.
        self.persisted = 0
        self.restored = 0
        if self._persist_dir is not None:
            self._restore_persisted()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def digests(self) -> tuple[str, ...]:
        """All resident digests, least- to most-recently used."""
        with self._lock:
            return tuple(self._entries)

    def entries(self) -> tuple[GraphEntry, ...]:
        """All resident entries, least- to most-recently used."""
        with self._lock:
            return tuple(self._entries.values())

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register_graph(
        self,
        graph: CGraph,
        *,
        name: str,
        spec: dict[str, Any],
        probabilities: "float | dict | None" = None,
    ) -> tuple[GraphEntry, bool]:
        """Register an already-built graph; returns ``(entry, created)``.

        Idempotent: a graph whose digest is already resident returns the
        existing entry untouched (``created=False``).

        ``probabilities`` registers edge relay probabilities alongside
        the structure: they are validated here (unknown edges raise
        :class:`~repro.exceptions.MissingEdgeError`, out-of-range values
        ParameterError), join the content digest, and become the default
        probability spec of every probabilistic placement on this entry.
        Unit probabilities are normalized away — they *are* deterministic
        relaying, and must not fork the digest.
        """
        if probabilities is not None:
            # Bind to the compiled view now: validates every mapping edge
            # and caches the CSR-aligned arrays every sampler will use.
            probs = graph.compiled().edge_probabilities(probabilities)
            if probs.unit:
                probabilities = None
        digest = graph_digest(graph, probabilities)
        with self._lock:
            existing = self._entries.get(digest)
            if existing is not None:
                self._entries.move_to_end(digest)
                return existing, False
            entry = GraphEntry(digest, graph, name, spec, probabilities)
            self._entries[digest] = entry
            self.registrations += 1
            while (
                self._max_graphs is not None
                and len(self._entries) > self._max_graphs
            ):
                self._entries.popitem(last=False)
                self.evictions += 1
        if self._warm_backends and graph.is_dag():
            # Pay the one-time costs at registration, outside any
            # request's timing: the single shared compiled plan, plus
            # each available backend's thin adapter over it (for the
            # NumPy backend that includes its overflow probe — genuinely
            # backend-private, but derived from the same structure, not
            # a second copy of it).  The bitpack tiers' warm routes the
            # reachability counts through the blocked out-of-core sweep.
            graph.compiled()
            from repro.backends.registry import (
                available_backends,
                get_backend,
            )

            for backend_name in available_backends():
                get_backend(backend_name).warm(graph)
        self._persist_entry(entry)
        return entry, True

    def register_fpc(
        self,
        path: "str | Path",
        *,
        name: str | None = None,
        probabilities: "float | dict | None" = None,
    ) -> tuple[GraphEntry, bool]:
        """Register a ``.fpc`` compiled-plan directory from disk.

        The graph arrives as a memory-mapped
        :class:`~repro.graphs.largescale.StreamedGraph` — no edge-list
        JSON ever crosses the wire, which is how million-node graphs
        reach the job API.  Persisted reach counts ride along, so a
        pre-warmed ``.fpc`` registers without re-running the sweep.
        """
        from repro.graphs.largescale import load_compiled

        fpc = Path(path)
        spec: dict[str, Any] = {"kind": "fpc", "path": str(fpc)}
        graph = build_graph_from_spec(spec)
        return self.register_graph(
            graph,
            name=fpc.stem if name is None else name,
            spec=spec,
            probabilities=probabilities,
        )

    # ------------------------------------------------------------------
    # Plan persistence (persist_dir)
    # ------------------------------------------------------------------

    def _persist_entry(self, entry: GraphEntry) -> None:
        """Snapshot a freshly registered plan into ``persist_dir``.

        Best-effort and content-addressed: the target is
        ``<digest>.fpc``, so re-registrations are no-ops.  Skipped for
        cyclic graphs (no topo tables to persist), probabilistic
        registrations (``.fpc`` carries structure only) and graphs whose
        node ids the format rejects (tuple-noded derivations).
        """
        target_dir = self._persist_dir
        if (
            target_dir is None
            or entry.probabilities is not None
            or not entry.graph.is_dag()
        ):
            return
        target = target_dir / f"{entry.digest}.fpc"
        if (target / "meta.json").exists():
            return
        from repro.graphs.largescale import save_compiled

        try:
            save_compiled(entry.graph, target)
        except ParameterError:
            return
        with open(target / "store.json", "w", encoding="utf-8") as handle:
            json.dump(
                {"digest": entry.digest, "name": entry.name}, handle
            )
        self.persisted += 1

    def _restore_persisted(self) -> None:
        """Memory-map every ``<digest>.fpc`` snapshot back in at startup.

        Restored entries reuse the digest recorded at persist time (the
        snapshots are content-addressed by this store, so recomputing it
        would only re-walk tables we already trust) and come back with
        their reach counts materialized from the ``.fpc`` reach table —
        the restart pays neither the compile nor the warm sweep.
        """
        from repro.graphs.largescale import load_compiled

        self._persist_dir.mkdir(parents=True, exist_ok=True)
        for target in sorted(self._persist_dir.glob("*.fpc")):
            marker = target / "store.json"
            if not marker.is_file():
                continue
            with open(marker, "r", encoding="utf-8") as handle:
                info = json.load(handle)
            digest = str(info["digest"])
            graph = load_compiled(target)
            entry = GraphEntry(
                digest,
                graph,
                str(info.get("name", target.stem)),
                {"kind": "fpc", "path": str(target)},
            )
            with self._lock:
                self._entries[digest] = entry
            self.restored += 1

    def register_dataset(
        self,
        dataset: str,
        *,
        seed: int = 0,
        scale: float | None = None,
        probabilities: "float | dict | None" = None,
    ) -> tuple[GraphEntry, bool]:
        """Generate and register a built-in dataset."""
        if dataset not in DATASET_NAMES:
            known = ", ".join(DATASET_NAMES)
            raise ParameterError(
                f"unknown dataset {dataset!r}; known datasets: {known}"
            )
        spec: dict[str, Any] = {
            "kind": "dataset",
            "dataset": dataset,
            "seed": seed,
            "scale": scale,
        }
        graph = build_graph_from_spec(spec)
        scale_txt = "default" if scale is None else f"{scale:g}"
        name = f"{dataset}@{scale_txt}/seed{seed}"
        return self.register_graph(
            graph, name=name, spec=spec, probabilities=probabilities
        )

    def register_edges(
        self,
        text: str,
        *,
        name: str = "upload",
        sources: list[Node] | None = None,
        prepare: bool = False,
        initiator: Node | None = None,
        probabilities: "float | dict | None" = None,
    ) -> tuple[GraphEntry, bool]:
        """Parse and register an uploaded edge list.

        ``prepare=True`` additionally runs the paper's Section 5 pipeline
        (reachability restriction + ``Acyclic``) — the same path the CLI's
        ``--edges`` flag takes.  The default is the verbatim graph, so
        ``register → generate → re-register`` is digest-stable.
        """
        spec: dict[str, Any] = {
            "kind": "edges",
            "text": text,
            "sources": sources,
            "prepare": prepare,
            "initiator": initiator,
        }
        graph = build_graph_from_spec(spec)
        return self.register_graph(
            graph, name=name, spec=spec, probabilities=probabilities
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """One consistent snapshot of residency and lifetime counters.

        Taken entirely under the store lock, so a concurrent
        registration can never produce a torn read (e.g. the new entry
        counted in ``graphs`` but not yet in ``nodes``) — ``/healthz``
        and ``/metrics`` both report from this.  ``compiled_bytes`` sums
        the *resident* half of the compiled plans that exist
        (registration warms them for DAGs, so for a warmed store this is
        the real heap cost); ``compiled_mapped_bytes`` is the
        memory-mapped half — ``.fpc``-backed plans whose tables live in
        the page cache, not on the heap.
        """
        with self._lock:
            nodes = 0
            edges = 0
            compiled_bytes = 0
            mapped_bytes = 0
            for entry in self._entries.values():
                nodes += entry.graph.number_of_nodes()
                edges += entry.graph.number_of_edges()
                # CGraph caches its plan in ``_compiled_cache``; streamed
                # graphs (registered programmatically) in ``_compiled``.
                compiled = getattr(
                    entry.graph, "_compiled_cache", None
                ) or getattr(entry.graph, "_compiled", None)
                if compiled is not None:
                    split = compiled.nbytes_split()
                    compiled_bytes += split["resident"]
                    mapped_bytes += split["mapped"]
            return {
                "graphs": len(self._entries),
                "registrations": self.registrations,
                "evictions": self.evictions,
                "nodes": nodes,
                "edges": edges,
                "compiled_bytes": compiled_bytes,
                "compiled_mapped_bytes": mapped_bytes,
                "persisted_plans": self.persisted,
                "restored_plans": self.restored,
            }

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, digest: str) -> GraphEntry:
        """The entry under ``digest`` (full, or a unique prefix ≥ 8 chars).

        Raises :class:`~repro.exceptions.ParameterError` for unknown or
        ambiguous digests.
        """
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None and len(digest) >= MIN_DIGEST_PREFIX:
                matches = [
                    d for d in self._entries if d.startswith(digest)
                ]
                if len(matches) > 1:
                    raise ParameterError(
                        f"digest prefix {digest!r} is ambiguous "
                        f"({len(matches)} matches)"
                    )
                if matches:
                    entry = self._entries[matches[0]]
            if entry is None:
                raise ParameterError(f"unknown graph digest {digest!r}")
            self._entries.move_to_end(entry.digest)
            return entry
