"""The PlacementCache: LRU + size-bounded result cache with prefix reuse.

Keys are the full request identity — ``(graph_digest, algorithm,
strategy, backend, k, rng_seed)`` — where the backend is the *resolved*
concrete name (``auto`` never appears: a NumPy answer requested as
``auto`` and one requested as ``numpy`` are the same cell).

Beyond exact hits, the cache exploits greedy **prefix consistency**: a
cached ``k``-run of a prefix-consistent algorithm contains the answer to
every ``k' ≤ k`` request as its first ``k'`` selections, so those misses
are served by slicing instead of recomputing (one scoring sweep instead
of a full run; the app layer then inserts the derived entry so repeats
are pure lookups).  Non-prefix-consistent algorithms (the randomized
baselines) only ever hit exactly.

Eviction is LRU under two simultaneous bounds — entry count and total
payload bytes (measured as canonical-JSON length) — so one giant
placement cannot silently monopolize the cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.exceptions import ParameterError
from repro.service.serialize import canonical_dumps

#: Default bound on cached entries.
DEFAULT_MAX_ENTRIES = 1024

#: Default bound on summed payload sizes (canonical-JSON bytes).
DEFAULT_MAX_BYTES = 32 * 1024 * 1024


@dataclass(frozen=True)
class PlacementKey:
    """The identity of one placement request.

    The propagation-model axis joins the key as ``(model, trials,
    mc_seed)``: two requests that differ only in relaying model, sample
    count or sampler seed are different answers and must never collide.
    Deterministic requests carry the normalized triple ``("deterministic",
    0, 0)`` — including probabilistic requests that resolved to the
    deterministic fast path (unit probabilities) — so the cache never
    forks on spelling.

    The sketch-strategy axis joins the same way as ``(sketch_k,
    sketch_seed)``: estimator resolution and hash seed change the answer,
    so they are part of the identity.  Exact strategies carry the
    normalized pair ``(0, 0)`` — including requests that spelled out the
    parameters anyway — so exact cells never fork on sketch spelling.
    """

    digest: str
    algorithm: str
    strategy: str
    backend: str
    k: int
    rng_seed: int = 0
    model: str = "deterministic"
    trials: int = 0
    mc_seed: int = 0
    sketch_k: int = 0
    sketch_seed: int = 0

    def cell(self) -> tuple[str, str, str, str, int, str, int, int, int, int]:
        """The key minus ``k`` — the axis prefix reuse searches along."""
        return (
            self.digest,
            self.algorithm,
            self.strategy,
            self.backend,
            self.rng_seed,
            self.model,
            self.trials,
            self.mc_seed,
            self.sketch_k,
            self.sketch_seed,
        )

    def describe(self) -> str:
        """Human-readable cell id (job listings, logs)."""
        base = (
            f"{self.digest[:12]}/{self.algorithm}/{self.strategy}"
            f"/{self.backend}/k{self.k}/rng{self.rng_seed}"
        )
        if self.model != "deterministic":
            base += f"/{self.model}/t{self.trials}/mc{self.mc_seed}"
        if self.sketch_k:
            base += f"/sk{self.sketch_k}/ss{self.sketch_seed}"
        return base


@dataclass
class _Entry:
    key: PlacementKey
    payload: dict[str, Any]
    size: int
    prefix_consistent: bool


class PlacementCache:
    """Thread-safe LRU cache of placement payloads with prefix reuse."""

    def __init__(
        self,
        *,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ) -> None:
        if max_entries < 1:
            raise ParameterError("max_entries must be positive")
        if max_bytes < 1:
            raise ParameterError("max_bytes must be positive")
        self._max_entries = max_entries
        self._max_bytes = max_bytes
        self._entries: OrderedDict[PlacementKey, _Entry] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.prefix_hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self) -> int:
        """Summed canonical-JSON size of all cached payloads."""
        with self._lock:
            return self._bytes

    def get(self, key: PlacementKey) -> dict[str, Any] | None:
        """The cached payload for ``key``, or None (counts hit/miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.payload

    def find_prefix_donor(
        self, key: PlacementKey
    ) -> tuple[PlacementKey, dict[str, Any]] | None:
        """A cached same-cell run whose prefix answers ``key``.

        Returns the smallest cached ``k'' ≥ key.k`` among prefix-consistent
        entries of the same cell (smallest keeps the slice closest to the
        request), or None.  Counts a ``prefix_hit`` when found.
        """
        cell = key.cell()
        with self._lock:
            best: _Entry | None = None
            for entry in self._entries.values():
                if not entry.prefix_consistent:
                    continue
                if entry.key.cell() != cell or entry.key.k < key.k:
                    continue
                if best is None or entry.key.k < best.key.k:
                    best = entry
            if best is None:
                return None
            self._entries.move_to_end(best.key)
            self.prefix_hits += 1
            return best.key, best.payload

    def put(
        self,
        key: PlacementKey,
        payload: dict[str, Any],
        *,
        prefix_consistent: bool,
    ) -> None:
        """Insert (or refresh) ``payload`` under ``key``, then evict LRU."""
        size = len(canonical_dumps(payload))
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.size
            self._entries[key] = _Entry(
                key=key,
                payload=payload,
                size=size,
                prefix_consistent=prefix_consistent,
            )
            self._bytes += size
            while self._entries and (
                len(self._entries) > self._max_entries
                or self._bytes > self._max_bytes
            ):
                # Never evict the entry just inserted: an over-budget
                # singleton would otherwise thrash forever.
                victim_key = next(iter(self._entries))
                if victim_key == key and len(self._entries) == 1:
                    break
                victim = self._entries.pop(victim_key)
                self._bytes -= victim.size
                self.evictions += 1

    def stats(self) -> dict[str, Any]:
        """Counters and occupancy, for ``/healthz`` and tests."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_entries": self._max_entries,
                "max_bytes": self._max_bytes,
                "hits": self.hits,
                "prefix_hits": self.prefix_hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
