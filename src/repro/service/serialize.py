"""The one serializer for machine-readable placement and stats payloads.

Both consumers import from here — the CLI's ``--json`` mode and the HTTP
API — so "API results are bit-identical to ``place --json``" holds by
construction rather than by parallel maintenance.  Payloads are plain
JSON-compatible dicts; node ids appear as their ``repr`` (the convention
``BENCH.json`` already uses), which keeps ints and strings distinguishable
after a round-trip.

Objective values are exact integers (the propagation model counts copies),
so equality across backends and strategies is genuinely bit-level, not
within-epsilon.

Two payload variants relax that: probabilistic-model runs carry SAA
float estimates plus a ``"model"`` block, and sketch-strategy runs carry
a ``"sketch"`` block (the estimator audit trail).  A sketch run whose
prefix was *not* exactly rescored (``rescored: false`` — the graph sits
beyond the rescore size guard) skips the exact ``phi`` family entirely
rather than pay full sweeps at million-node scale; it reports
``objective_estimate`` and ``scored: false`` instead.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Collection, Hashable

from repro.analysis.metrics import GraphStats
from repro.core.base import PlacementResult
from repro.core.objective import filter_ratio, max_objective, phi

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.propagation.model import PropagationModel
from repro.graphs.cgraph import CGraph

Node = Hashable


def canonical_dumps(payload: Any) -> str:
    """Deterministic JSON text: sorted keys, no incidental whitespace.

    Two payloads are bit-identical iff their canonical dumps are equal;
    the service's cache stores exactly this text for its hit path.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def placement_payload(
    graph: CGraph,
    result: PlacementResult,
    *,
    phi_empty: int | None = None,
    f_max: int | None = None,
    backend: Any = None,
    model: "PropagationModel | None" = None,
) -> dict[str, Any]:
    """The machine-readable form of one placement run.

    ``phi_empty`` / ``f_max`` are the per-graph constants ``Φ(∅)`` and
    ``F(V)``; passing them (the service's GraphStore caches both) saves
    two full propagation sweeps per call.

    ``model`` is the probabilistic relaying model the placement ran
    under, or None for deterministic relaying.  Deterministic payloads
    are byte-identical to what this function always produced; under a
    model the ``phi``/``objective``/``filter_ratio`` family carries SAA
    estimates (floats, consistent across the payload because every value
    averages the same sampled worlds) and a ``"model"`` block records
    the spec — ``phi_empty``/``f_max`` overrides are ignored, since the
    deterministic constants price a different objective.
    """
    if result.rescored is False:
        # Estimate-only result: the graph sat beyond the sketch tier's
        # exact-rescore guard, so the recorded gains are estimator
        # output.  Charging two full propagation sweeps here just to
        # decorate the payload would erase the reason the sketch tier
        # exists; report the estimate honestly instead.
        payload = _result_fields(result)
        payload.update(
            {
                "scored": False,
                "objective_estimate": float(sum(result.estimated_gains)),
            }
        )
        return payload
    if model is not None:
        from repro.core.objective import expected_phi

        phi_empty_x = expected_phi(graph, (), model=model, backend=backend)
        f_max_x = phi_empty_x - expected_phi(
            graph, graph.nodes(), model=model, backend=backend
        )
        phi_a_x = expected_phi(
            graph, result.filters, model=model, backend=backend
        )
        objective_x = phi_empty_x - phi_a_x
        fr_x = 1.0 if f_max_x == 0 else objective_x / f_max_x
        payload = _result_fields(result)
        payload.update(
            {
                "model": model.describe(),
                "phi_empty": phi_empty_x,
                "phi": phi_a_x,
                "objective": objective_x,
                "f_max": f_max_x,
                "filter_ratio": fr_x,
            }
        )
        return payload
    if phi_empty is None:
        phi_empty = phi(graph, (), backend=backend)
    if f_max is None:
        f_max = max_objective(graph, phi_empty=phi_empty, backend=backend)
    phi_a = phi(graph, result.filters, backend=backend)
    objective = phi_empty - phi_a
    fr = filter_ratio(
        graph, result.filters, phi_empty=phi_empty, f_max=f_max,
        backend=backend,
    )
    payload = _result_fields(result)
    payload.update(
        {
            "phi_empty": phi_empty,
            "phi": phi_a,
            "objective": objective,
            "f_max": f_max,
            "filter_ratio": fr,
        }
    )
    return payload


def _result_fields(result: PlacementResult) -> dict[str, Any]:
    """The objective-independent half of a placement payload."""
    fields: dict[str, Any] = {
        "algorithm": result.algorithm,
        "requested_k": result.requested_k,
        "filters": [repr(v) for v in result.filters],
        "filters_found": len(result.filters),
        "prefix_consistent": result.prefix_consistent,
        "steps": [
            {"node": repr(step.node), "gain": step.gain}
            for step in result.steps
        ],
    }
    if result.rescored is not None:
        # Sketch-strategy audit trail: what the estimator believed per
        # step, and whether the recorded step gains are exact.  Exact
        # strategies omit the block, keeping their payloads byte-stable.
        fields["sketch"] = {
            "rescored": result.rescored,
            "estimated_gains": [float(g) for g in result.estimated_gains],
        }
    return fields


def stats_payload(name: str, stats: GraphStats) -> dict[str, Any]:
    """The machine-readable form of ``filter-placement stats``."""
    return {
        "name": name,
        "nodes": stats.nodes,
        "edges": stats.edges,
        "sources": stats.sources,
        "sinks": stats.sinks,
        "sink_fraction": stats.sink_fraction,
        "indegree_one_fraction": stats.indegree_one_fraction,
        "merge_nodes": stats.merge_nodes,
        "max_in_degree": stats.max_in_degree,
        "max_out_degree": stats.max_out_degree,
        "is_dag": stats.is_dag,
    }


def parse_filters(filters: Collection[str]) -> tuple[Node, ...]:
    """Invert the ``repr`` encoding of a payload's filter list.

    Only the reprs this library emits (ints and strings) are accepted —
    this is a format decoder, not an eval.
    """
    import ast

    return tuple(ast.literal_eval(f) for f in filters)
