"""The JobManager: cache misses on a worker pool, with deduplication.

Every placement miss becomes a :class:`Job` with an id, a lifecycle
(``queued → running → done | failed``, or ``cancelled`` while still
queued), and a completion event callers can block on.  Submitting the
same cache key while an identical job is queued or running returns the
existing job — a thundering herd of identical requests performs the
expensive computation exactly once.

Two pool shapes, chosen at construction:

* ``thread`` (default) — a :class:`~concurrent.futures.ThreadPoolExecutor`
  running jobs in-process against the resident graph.  Placement work on
  big graphs is dominated by NumPy kernels and big-int arithmetic, both of
  which release or sidestep the GIL well enough for serving.
* ``process`` — jobs additionally dispatch their computation to a
  :class:`~concurrent.futures.ProcessPoolExecutor`.  The worker cannot
  share the resident graph, so it rebuilds it from the entry's picklable
  spec; worth it for long exact big-int runs that would otherwise pin the
  serving process.  Coordinator threads still own the lifecycle, so
  states, dedup and cancellation behave identically in both modes.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Any, Callable

from repro.exceptions import ParameterError

#: Legal pool kinds for :class:`JobManager`.
POOL_KINDS: tuple[str, ...] = ("thread", "process")

#: Job lifecycle states.
JOB_STATES: tuple[str, ...] = (
    "queued",
    "running",
    "done",
    "failed",
    "cancelled",
)

#: Finished jobs retained for ``GET /jobs/{id}`` before pruning.
MAX_FINISHED_JOBS = 512

_job_counter = itertools.count(1)


class Job:
    """One unit of placement work and its observable lifecycle."""

    def __init__(
        self, job_id: str, key: str, request_id: str | None = None
    ) -> None:
        self.id = job_id
        self.key = key
        # The X-Request-Id of the request that created the job, for
        # correlating a job (and its trace) back to the access log.
        self.request_id = request_id
        self.state = "queued"
        self.created_unix = time.time()
        self.started_unix: float | None = None
        self.finished_unix: float | None = None
        self.payload: dict[str, Any] | None = None
        self.error: str | None = None
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._future: Future | None = None

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job finishes (done/failed/cancelled)."""
        return self._done.wait(timeout)

    @property
    def finished(self) -> bool:
        return self._done.is_set()

    def describe(self) -> dict[str, Any]:
        """The job's JSON form for ``GET /jobs/{id}`` (sans payload)."""
        with self._lock:
            doc: dict[str, Any] = {
                "id": self.id,
                "key": self.key,
                "state": self.state,
                "created_unix": round(self.created_unix, 3),
            }
            if self.request_id is not None:
                doc["request_id"] = self.request_id
            if self.started_unix is not None:
                doc["started_unix"] = round(self.started_unix, 3)
            if self.finished_unix is not None:
                doc["finished_unix"] = round(self.finished_unix, 3)
            if self.error is not None:
                doc["error"] = self.error
            return doc

    # -- transitions (called by the manager only) ----------------------

    def _mark_running(self) -> bool:
        with self._lock:
            if self.state != "queued":
                return False
            self.state = "running"
            self.started_unix = time.time()
            return True

    def _finish(self, payload: dict[str, Any]) -> None:
        with self._lock:
            self.state = "done"
            self.payload = payload
            self.finished_unix = time.time()
        self._done.set()

    def _fail(self, exc: BaseException) -> None:
        with self._lock:
            self.state = "failed"
            self.error = f"{type(exc).__name__}: {exc}"
            self.finished_unix = time.time()
        self._done.set()

    def _mark_cancelled(self) -> bool:
        with self._lock:
            if self.state != "queued":
                return False
            self.state = "cancelled"
            self.finished_unix = time.time()
        self._done.set()
        return True


class JobManager:
    """Runs placement jobs on a bounded pool with in-flight dedup."""

    def __init__(self, *, workers: int = 4, pool: str = "thread") -> None:
        if workers < 1:
            raise ParameterError("workers must be positive")
        if pool not in POOL_KINDS:
            known = ", ".join(POOL_KINDS)
            raise ParameterError(
                f"unknown pool kind {pool!r}; known kinds: {known}"
            )
        self.pool_kind = pool
        self.workers = workers
        self._coordinator = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="placement-job"
        )
        self._process_pool: ProcessPoolExecutor | None = (
            ProcessPoolExecutor(max_workers=workers)
            if pool == "process"
            else None
        )
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._in_flight: dict[str, Job] = {}
        self.submitted = 0
        self.deduplicated = 0

    def dispatch(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run ``fn(*args)`` on the process pool when configured, inline
        otherwise.

        Job closures route their computation through this so the same
        closure works under both pool kinds; with ``pool="process"`` the
        function and its arguments must be picklable (module-level
        functions over plain data).
        """
        if self._process_pool is not None:
            return self._process_pool.submit(fn, *args).result()
        return fn(*args)

    def submit(
        self,
        key: str,
        fn: Callable[[], dict[str, Any]],
        *,
        request_id: str | None = None,
    ) -> tuple[Job, bool]:
        """Run ``fn`` on the pool under ``key``.

        Returns ``(job, created)``; ``created=False`` means an identical
        job was already queued or running and was returned instead —
        the dedup guarantee.  ``request_id`` tags the job with the
        originating request for log/trace correlation.
        """
        with self._lock:
            existing = self._in_flight.get(key)
            if existing is not None and not existing.finished:
                self.deduplicated += 1
                return existing, False
            job = Job(f"job-{next(_job_counter):06d}", key, request_id)
            self._jobs[job.id] = job
            self._in_flight[key] = job
            self.submitted += 1
            self._prune_finished_locked()

        def run() -> None:
            from repro.obs.metrics import REGISTRY
            from repro.obs.trace import TRACER

            if not job._mark_running():
                return  # cancelled while queued
            start = time.perf_counter()
            outcome = "done"
            try:
                # The trace is keyed by the job id so GET /traces/{id}
                # can serve this solve's span tree; the worker thread
                # has its own span stack, so concurrent jobs nest
                # independently.
                attrs = {"key": key}
                if job.request_id is not None:
                    attrs["request_id"] = job.request_id
                with TRACER.trace(trace_id=job.id, **attrs):
                    payload = fn()
                job._finish(payload)
            except BaseException as exc:  # report, never kill the worker
                outcome = "failed"
                job._fail(exc)
            finally:
                REGISTRY.histogram(
                    "fp_job_run_seconds",
                    "Wall-clock seconds a job spent running on a worker.",
                    labels=("outcome",),
                ).observe(time.perf_counter() - start, outcome=outcome)
                with self._lock:
                    if self._in_flight.get(key) is job:
                        del self._in_flight[key]

        job._future = self._coordinator.submit(run)
        return job, True

    def get(self, job_id: str) -> Job:
        """The job registered under ``job_id``; raises on unknown ids."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ParameterError(f"unknown job id {job_id!r}")
        return job

    def cancel(self, job_id: str) -> bool:
        """Cancel a still-queued job; running jobs cannot be stopped.

        Returns True when the job moved to ``cancelled``.
        """
        job = self.get(job_id)
        future = job._future
        if future is not None and future.cancel():
            cancelled = job._mark_cancelled()
            if cancelled:
                with self._lock:
                    if self._in_flight.get(job.key) is job:
                        del self._in_flight[job.key]
            return cancelled
        return False

    def jobs(self) -> list[Job]:
        """All known jobs, oldest first."""
        with self._lock:
            return list(self._jobs.values())

    def counts(self) -> dict[str, int]:
        """Jobs per state plus submit/dedup totals, for ``/healthz``."""
        with self._lock:
            per_state = dict.fromkeys(JOB_STATES, 0)
            for job in self._jobs.values():
                per_state[job.state] += 1
            return {
                **per_state,
                "submitted": self.submitted,
                "deduplicated": self.deduplicated,
            }

    def _prune_finished_locked(self) -> None:
        finished = [j for j in self._jobs.values() if j.finished]
        excess = len(finished) - MAX_FINISHED_JOBS
        for job in finished[:max(0, excess)]:
            del self._jobs[job.id]

    def shutdown(self, *, wait: bool = True) -> None:
        """Stop accepting work and (optionally) wait for running jobs."""
        self._coordinator.shutdown(wait=wait, cancel_futures=True)
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=wait, cancel_futures=True)
