"""The stdlib HTTP JSON API over :class:`~repro.service.app.ServiceApp`.

Built on :class:`http.server.ThreadingHTTPServer` — one thread per
connection, no third-party runtime dependency — with a route table that
maps paths onto the app's handler methods:

========  ==========================  ==========================================
Method    Path                        Handler
========  ==========================  ==========================================
POST      ``/graphs``                 register a dataset / uploaded edge list
GET       ``/graphs``                 list resident graphs
GET       ``/graphs/{digest}/stats``  structural summary
POST      ``/placements``             cached → 200, miss → 202 + job id
GET       ``/jobs/{id}``              job state (+ result when done)
DELETE    ``/jobs/{id}``              cancel a queued job
GET       ``/algorithms``             registry catalog
GET       ``/healthz``                liveness + operational counters
========  ==========================  ==========================================

Responses are ``application/json``; errors come back as
``{"error": message}`` with 400/404/405/500 as appropriate.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from repro.service.app import RequestError, ServiceApp

#: Largest accepted request body (an edge-list upload), bytes.
MAX_BODY_BYTES = 64 * 1024 * 1024


class PlacementRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning server's :class:`ServiceApp`."""

    server: "PlacementHTTPServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict[str, Any]:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise RequestError("malformed Content-Length header") from None
        if length > MAX_BODY_BYTES:
            raise RequestError(
                f"request body exceeds {MAX_BODY_BYTES} bytes", status=413
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise RequestError(f"malformed JSON body: {exc}") from None
        if not isinstance(body, dict):
            raise RequestError("request body must be a JSON object")
        return body

    def _dispatch(self, fn: Callable[[], tuple[int, dict[str, Any]]]) -> None:
        try:
            status, payload = fn()
        except RequestError as exc:
            status, payload = exc.status, {"error": str(exc)}
        except Exception as exc:  # never leak a traceback to the socket
            status, payload = 500, {
                "error": f"{type(exc).__name__}: {exc}"
            }
        self._send_json(status, payload)

    def _route(self, method: str) -> None:
        app = self.server.app
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        parts = [p for p in path.split("/") if p]

        def not_found() -> tuple[int, dict[str, Any]]:
            raise RequestError(f"no route for {method} {path}", status=404)

        handler: Callable[[], tuple[int, dict[str, Any]]] = not_found
        if parts == ["healthz"] and method == "GET":
            handler = app.handle_healthz
        elif parts == ["algorithms"] and method == "GET":
            handler = app.handle_algorithms
        elif parts == ["graphs"]:
            if method == "POST":
                body = self._read_body()
                handler = lambda: app.handle_register_graph(body)  # noqa: E731
            elif method == "GET":
                handler = app.handle_list_graphs
        elif len(parts) == 3 and parts[0] == "graphs" and parts[2] == "stats":
            if method == "GET":
                digest = parts[1]
                handler = lambda: app.handle_graph_stats(digest)  # noqa: E731
        elif parts == ["placements"]:
            if method == "POST":
                body = self._read_body()
                handler = lambda: app.handle_placement(body)  # noqa: E731
        elif len(parts) == 2 and parts[0] == "jobs":
            job_id = parts[1]
            if method == "GET":
                handler = lambda: app.handle_job(job_id)  # noqa: E731
            elif method == "DELETE":
                handler = lambda: app.handle_cancel_job(job_id)  # noqa: E731
        self._dispatch(handler)

    # -- verbs ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802
        try:
            self._route("POST")
        except RequestError as exc:  # body-read errors surface here
            self._send_json(exc.status, {"error": str(exc)})

    def do_DELETE(self) -> None:  # noqa: N802
        self._route("DELETE")


class PlacementHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server owning one :class:`ServiceApp`."""

    daemon_threads = True

    def __init__(
        self,
        app: ServiceApp,
        address: tuple[str, int],
        *,
        verbose: bool = False,
    ) -> None:
        self.app = app
        self.verbose = verbose
        super().__init__(address, PlacementRequestHandler)

    @property
    def port(self) -> int:
        """The bound port (useful with an ephemeral ``port=0`` bind)."""
        return self.server_address[1]


def make_server(
    app: ServiceApp,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    verbose: bool = False,
) -> PlacementHTTPServer:
    """Bind (but do not start) the service's HTTP server.

    ``port=0`` binds an ephemeral port; read it back from
    :attr:`PlacementHTTPServer.port`.  Call ``serve_forever()`` to run —
    the CLI's ``serve`` subcommand does — or drive it from a thread in
    tests.
    """
    return PlacementHTTPServer(app, (host, port), verbose=verbose)
