"""The stdlib HTTP JSON API over :class:`~repro.service.app.ServiceApp`.

Built on :class:`http.server.ThreadingHTTPServer` — one thread per
connection, no third-party runtime dependency — with a route table that
maps paths onto the app's handler methods:

========  ==========================  ==========================================
Method    Path                        Handler
========  ==========================  ==========================================
POST      ``/graphs``                 register a dataset / uploaded edge list
GET       ``/graphs``                 list resident graphs
GET       ``/graphs/{digest}/stats``  structural summary
POST      ``/placements``             cached → 200, miss → 202 + job id
GET       ``/jobs/{id}``              job state (+ result when done)
DELETE    ``/jobs/{id}``              cancel a queued job
GET       ``/traces/{job_id}``        recorded span tree of a solve
GET       ``/algorithms``             registry catalog
GET       ``/metrics``                Prometheus text exposition
GET       ``/healthz``                liveness + operational counters
========  ==========================  ==========================================

Responses are ``application/json`` (``/metrics`` alone is plain text);
errors come back as ``{"error": message}`` with 400/404/405/500 as
appropriate.

Observability per request:

* **Request ids.**  An incoming ``X-Request-Id`` header is honoured
  (trimmed); absent one, a fresh id is generated.  Either way the id is
  echoed on the response, bound to the handler thread's request-id
  context (so job records and traces can correlate back), and stamped on
  the access log line.
* **Access logging.**  One line per request on the ``repro.service``
  logger at INFO: method, path, status, duration, request id, and cache
  hit/miss when the response says.  ``log_format="json"`` renders the
  line as a JSON object (one per line — jq/Loki friendly); ``"text"``
  keeps it human-readable.  Unhandled handler exceptions additionally
  log the full traceback at WARNING — they used to vanish into the 500
  response body only.
* **Metrics.**  Every response increments
  ``fp_http_requests_total{method,status}`` and lands its latency in
  ``fp_http_request_seconds{method}``.
"""

from __future__ import annotations

import json
import logging
import time
import traceback
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from repro.obs.metrics import REGISTRY
from repro.obs.trace import set_request_id
from repro.service.app import RequestError, ServiceApp

logger = logging.getLogger("repro.service")

#: Largest accepted request body (an edge-list upload), bytes.
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Access-log renderings accepted by the server.
LOG_FORMATS: tuple[str, ...] = ("text", "json")


def _http_metrics() -> tuple[Any, Any]:
    counter = REGISTRY.counter(
        "fp_http_requests_total",
        "HTTP responses sent, by method and status.",
        labels=("method", "status"),
    )
    histogram = REGISTRY.histogram(
        "fp_http_request_seconds",
        "HTTP request handling latency.",
        labels=("method",),
    )
    return counter, histogram


class PlacementRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning server's :class:`ServiceApp`."""

    server: "PlacementHTTPServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        # The stdlib's per-request stderr line is redundant with the
        # structured access log; keep it behind the old verbose flag.
        if self.server.verbose:
            super().log_message(format, *args)

    def _send_headers(self, status: int, content_type: str, size: int) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(size))
        request_id = getattr(self, "_request_id", None)
        if request_id:
            self.send_header("X-Request-Id", request_id)
        self.end_headers()

    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send_headers(status, "application/json", len(body))
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self._send_headers(
            status, "text/plain; version=0.0.4; charset=utf-8", len(body)
        )
        self.wfile.write(body)

    def _read_body(self) -> dict[str, Any]:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise RequestError("malformed Content-Length header") from None
        if length > MAX_BODY_BYTES:
            raise RequestError(
                f"request body exceeds {MAX_BODY_BYTES} bytes", status=413
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise RequestError(f"malformed JSON body: {exc}") from None
        if not isinstance(body, dict):
            raise RequestError("request body must be a JSON object")
        return body

    def _log_access(
        self,
        method: str,
        path: str,
        status: int,
        duration_ms: float,
        request_id: str,
        cache_hit: bool | None,
    ) -> None:
        if self.server.log_format == "json":
            record = {
                "method": method,
                "path": path,
                "status": status,
                "duration_ms": round(duration_ms, 3),
                "request_id": request_id,
            }
            if cache_hit is not None:
                record["cache_hit"] = cache_hit
            logger.info(json.dumps(record, sort_keys=True))
            return
        cache = ""
        if cache_hit is not None:
            cache = f" cache={'hit' if cache_hit else 'miss'}"
        logger.info(
            "%s %s %d %.1fms request_id=%s%s",
            method, path, status, duration_ms, request_id, cache,
        )

    def _dispatch(
        self,
        method: str,
        path: str,
        fn: Callable[[], "tuple[int, dict[str, Any] | str]"],
    ) -> None:
        incoming = (self.headers.get("X-Request-Id") or "").strip()
        request_id = incoming or uuid.uuid4().hex[:16]
        self._request_id = request_id
        set_request_id(request_id)
        start = time.perf_counter()
        payload: dict[str, Any] | str
        try:
            try:
                status, payload = fn()
            except RequestError as exc:
                status, payload = exc.status, {"error": str(exc)}
            except Exception as exc:  # never leak a traceback to the socket
                logger.warning(
                    "unhandled error serving %s %s (request_id=%s)\n%s",
                    method, path, request_id, traceback.format_exc(),
                )
                status, payload = 500, {
                    "error": f"{type(exc).__name__}: {exc}"
                }
            if isinstance(payload, str):
                self._send_text(status, payload)
            else:
                self._send_json(status, payload)
            duration = time.perf_counter() - start
            cache_hit: bool | None = None
            if isinstance(payload, dict):
                cache = payload.get("cache")
                if isinstance(cache, dict):
                    cache_hit = cache.get("hit")
            self._log_access(
                method, path, status, duration * 1e3, request_id, cache_hit
            )
            counter, histogram = _http_metrics()
            counter.inc(method=method, status=status)
            histogram.observe(duration, method=method)
        finally:
            set_request_id(None)

    def _route(self, method: str) -> None:
        app = self.server.app
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        parts = [p for p in path.split("/") if p]

        def not_found() -> tuple[int, dict[str, Any]]:
            raise RequestError(f"no route for {method} {path}", status=404)

        handler: Callable[[], "tuple[int, dict[str, Any] | str]"] = not_found
        if parts == ["healthz"] and method == "GET":
            handler = app.handle_healthz
        elif parts == ["metrics"] and method == "GET":
            handler = app.handle_metrics
        elif parts == ["algorithms"] and method == "GET":
            handler = app.handle_algorithms
        elif parts == ["graphs"]:
            if method == "POST":
                handler = lambda: app.handle_register_graph(  # noqa: E731
                    self._read_body()
                )
            elif method == "GET":
                handler = app.handle_list_graphs
        elif len(parts) == 3 and parts[0] == "graphs" and parts[2] == "stats":
            if method == "GET":
                digest = parts[1]
                handler = lambda: app.handle_graph_stats(digest)  # noqa: E731
        elif parts == ["placements"]:
            if method == "POST":
                handler = lambda: app.handle_placement(  # noqa: E731
                    self._read_body()
                )
        elif len(parts) == 2 and parts[0] == "jobs":
            job_id = parts[1]
            if method == "GET":
                handler = lambda: app.handle_job(job_id)  # noqa: E731
            elif method == "DELETE":
                handler = lambda: app.handle_cancel_job(job_id)  # noqa: E731
        elif len(parts) == 2 and parts[0] == "traces" and method == "GET":
            trace_id = parts[1]
            handler = lambda: app.handle_trace(trace_id)  # noqa: E731
        self._dispatch(method, path, handler)

    # -- verbs ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._route("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._route("DELETE")


class PlacementHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server owning one :class:`ServiceApp`."""

    daemon_threads = True

    def __init__(
        self,
        app: ServiceApp,
        address: tuple[str, int],
        *,
        verbose: bool = False,
        log_format: str = "text",
    ) -> None:
        if log_format not in LOG_FORMATS:
            known = ", ".join(LOG_FORMATS)
            raise ValueError(
                f"unknown log_format {log_format!r}; known formats: {known}"
            )
        self.app = app
        self.verbose = verbose
        self.log_format = log_format
        super().__init__(address, PlacementRequestHandler)

    @property
    def port(self) -> int:
        """The bound port (useful with an ephemeral ``port=0`` bind)."""
        return self.server_address[1]


def make_server(
    app: ServiceApp,
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    verbose: bool = False,
    log_format: str = "text",
) -> PlacementHTTPServer:
    """Bind (but do not start) the service's HTTP server.

    ``port=0`` binds an ephemeral port; read it back from
    :attr:`PlacementHTTPServer.port`.  Call ``serve_forever()`` to run —
    the CLI's ``serve`` subcommand does — or drive it from a thread in
    tests.  ``log_format`` selects the access-log rendering on the
    ``repro.service`` logger (``"text"`` or ``"json"``).
    """
    return PlacementHTTPServer(
        app, (host, port), verbose=verbose, log_format=log_format
    )
