"""Placement-as-a-service: graph store, result cache, worker pool, HTTP API.

The batch CLI answers one question per process; this subsystem keeps the
expensive state resident and shares it across requests:

* :mod:`repro.service.store` — a content-addressed **GraphStore** holding
  immutable :class:`~repro.graphs.cgraph.CGraph` instances (each with its
  single shared compiled plan warmed — one
  :class:`~repro.graphs.compiled.CompiledGraph` per digest, consumed by
  every backend) under SHA-256 digests.
* :mod:`repro.service.cache` — a **PlacementCache** keyed by
  ``(graph_digest, algorithm, strategy, backend, k, rng_seed)`` with LRU +
  size-bounded eviction and greedy prefix reuse (any ``k' ≤ k`` request is
  served from a cached ``k`` run).
* :mod:`repro.service.jobs` — a **JobManager** running cache misses on a
  configurable worker pool with in-flight deduplication and cancellation.
* :mod:`repro.service.app` / :mod:`repro.service.http` — the request layer:
  a transport-free :class:`~repro.service.app.ServiceApp` plus the
  stdlib-only HTTP JSON API behind ``filter-placement serve``.
* :mod:`repro.service.serialize` — the one serializer both the service and
  the CLI ``--json`` mode use, so API responses are bit-identical to
  ``filter-placement place --json``.
"""

from __future__ import annotations

from repro.service.app import ServiceApp
from repro.service.cache import PlacementCache, PlacementKey
from repro.service.jobs import JobManager
from repro.service.store import GraphStore, graph_digest

__all__ = [
    "GraphStore",
    "JobManager",
    "PlacementCache",
    "PlacementKey",
    "ServiceApp",
    "graph_digest",
]
