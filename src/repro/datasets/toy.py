"""The paper's illustrative toy graphs.

* :func:`fig1_graph` — Figure 1's syndicated-news network, reproduced
  exactly (the arXiv text fully specifies it).
* :func:`fig2_like_graph` / :func:`fig3_like_graph` — the text rendering
  of the arXiv source lost Figures 2 and 3's edge lists, so these are
  reconstructions that provably exhibit the *documented phenomena* (the
  stated totals 14 and 26 are unrecoverable; tests assert the phenomena
  instead — see DESIGN.md §4).
* :func:`fig10_sketch_graph` — a miniature of the APS pathology sketch.
"""

from __future__ import annotations

from repro.graphs.cgraph import CGraph


def fig1_graph() -> CGraph:
    """Figure 1: source ``s``, distributors ``x, y``, consumers ``z1..z3, w``.

    One item from ``s`` yields receipts x:1, y:1, z1:1, z2:2, z3:1 and
    w:(1+2+1)=4 — the paper's worked multiplicity example.  The unique
    useful filter is ``z2``; ``x`` and ``y`` have the highest betweenness
    centrality yet zero impact (the Section 2 argument).
    """
    return CGraph([
        ("s", "x"), ("s", "y"),
        ("x", "z1"), ("x", "z2"),
        ("y", "z2"), ("y", "z3"),
        ("z1", "w"), ("z2", "w"), ("z3", "w"),
    ])


def fig2_like_graph() -> CGraph:
    """A Figure-2-like instance: ``Greedy_1``'s degree myopia.

    Node ``B`` has the largest degree product ``m(B) = 1 × 4 = 4`` but
    receives a single copy, so filtering it achieves nothing.  Node ``A``
    (``m(A) = 3 × 1``) sits below the real multiplicity and is the unique
    optimal single filter.  Tests certify both facts exactly.
    """
    return CGraph([
        ("s", "B"),
        ("B", "c1"), ("B", "c2"), ("B", "c3"), ("B", "c4"),
        ("c1", "A"), ("c2", "A"), ("c3", "A"),
        ("A", "w"),
    ])


def fig3_like_graph() -> CGraph:
    """A Figure-3-like instance: ``Greedy_All`` is suboptimal for k = 2.

    The middle node ``A`` aggregates both branches and has the single
    largest impact (I(A) = 5), so greedy takes it first; but the optimal
    pair is the two branch nodes {B, C} (F = 8 versus greedy's 7).
    Mirrors the paper's Figure 3, where greedy picks {A, C} over the
    optimal {B, C}.
    """
    return CGraph([
        ("s", "b1"), ("s", "b2"), ("s", "b3"),
        ("s", "c1"), ("s", "c2"), ("s", "c3"),
        ("b1", "B"), ("b2", "B"), ("b3", "B"),
        ("c1", "C"), ("c2", "C"), ("c3", "C"),
        ("B", "A"), ("C", "A"),
        ("A", "t"),
    ])


def fig10_sketch_graph(chain_length: int = 9) -> CGraph:
    """A miniature of Figure 10's APS pathology.

    An upper diamond multiplies the item (``h`` receives 4 copies), a
    ``chain_length``-node in-degree-one path carries all of it to the
    lower half, and a lower diamond multiplies it again.  Every chain node
    has a large standalone impact, but filtering any one collapses the
    impact of the rest — ``Greedy_Max`` buys the chain anyway, its FR
    stays flat, and ``Greedy_All`` escapes after one pick.
    """
    edges: list[tuple[str, str]] = [
        ("s", "u1"), ("s", "u2"), ("s", "u3"), ("s", "u4"),
        ("u1", "h"), ("u2", "h"), ("u3", "h"), ("u4", "h"),
        ("h", "x1"),
    ]
    for i in range(1, chain_length):
        edges.append((f"x{i}", f"x{i + 1}"))
    last = f"x{chain_length}"
    edges.extend([
        (last, "l1"), (last, "l2"),
        ("l1", "m"), ("l2", "m"),
        ("m", "t1"), ("m", "t2"),
    ])
    return CGraph(edges)
