"""Datasets: the paper's synthetic model and real-data substitutes.

The evaluation of Section 5 uses one synthetic family and three real
datasets (Memetracker "Quote", the Kwak et al. Twitter crawl, and the APS
citation corpus).  The real datasets cannot be redistributed, so this
package generates seeded substitutes that match the *published structural
statistics* of each — sizes, degree distributions, sink fractions and the
specific path-multiplicity features each figure demonstrates.  See
``DESIGN.md`` §4 for the substitution rationale, and
:mod:`repro.datasets.loaders` for running the pipeline on the real data if
you have it.
"""

from repro.datasets.synthetic import layered_graph
from repro.datasets.quote import quote_like_graph
from repro.datasets.twitter import twitter_like_graph
from repro.datasets.citation import citation_like_graph
from repro.datasets.toy import (
    fig1_graph,
    fig2_like_graph,
    fig3_like_graph,
    fig10_sketch_graph,
)
from repro.datasets.loaders import load_real_dataset
from repro.datasets.registry import DATASET_NAMES, get_dataset

__all__ = [
    "layered_graph",
    "quote_like_graph",
    "twitter_like_graph",
    "citation_like_graph",
    "fig1_graph",
    "fig2_like_graph",
    "fig3_like_graph",
    "fig10_sketch_graph",
    "load_real_dataset",
    "get_dataset",
    "DATASET_NAMES",
]
