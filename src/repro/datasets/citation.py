"""APS citation substitute — the G_Citation graph.

The paper selects one 1997 Physical Review article and takes the subgraph
of all APS papers reachable from it through citation edges (edge A → B
when B cites A, so information flows from cited to citing).  Published
statistics (Section 5, Figures 9 and 10):

* 9,982 nodes and 36,070 edges, acyclic, single source;
* power-law-ish in- and out-degree distributions;
* a structural pathology (Figure 10): nine nodes, interconnected by a
  path and all of in-degree one, through which *every* path from the
  upper half of the graph to the lower half passes.  Each chain node has
  a huge impact in isolation, but one filter at the top collapses the
  rest — ``Greedy_Max`` buys the whole chain anyway and its FR curve goes
  flat, while ``Greedy_All`` moves on (the Figure 9 separation).

:func:`citation_like_graph` rebuilds exactly that: an upper
preferential-attachment citation DAG grown from the source, a nine-node
in-degree-one chain as the only bridge, and a lower block grown from the
chain's end.
"""

from __future__ import annotations

import random

from repro.exceptions import ParameterError
from repro.graphs.cgraph import CGraph

#: The source article (the paper uses Rader et al., Phys. Rev. B 1997).
CITATION_SOURCE = "paper_0"

#: Length of the indegree-one bridge chain sketched in Figure 10.
CHAIN_LENGTH = 9


def _grow_citation_block(
    rng: random.Random,
    prefix: str,
    size: int,
    roots: list[str],
    edges: list[tuple[str, str]],
    *,
    mean_refs: float = 3.5,
) -> list[str]:
    """Grow a preferential-attachment citation DAG under ``roots``.

    Every new paper cites 1 + (heavy-tailed) earlier papers, chosen with
    probability proportional to citations-so-far + 1 — the classic
    cumulative-advantage model, which produces the power-law out-degrees
    (citation counts) of real corpora.  Edges run old → new, keeping the
    block a DAG, and every node ends up reachable from the roots.
    """
    nodes: list[str] = list(roots)
    weights: dict[str, int] = {r: 1 for r in roots}
    created: list[str] = []
    base_refs = max(1, round(mean_refs - 1.6))
    for i in range(size):
        node = f"{prefix}{i}"
        refs = 1 + rng.randint(0, 2 * base_refs) + min(_heavy_tail(rng), 14)
        refs = min(refs, len(nodes))
        # Weighted sampling without replacement (small refs, so a simple
        # rejection loop is fine).
        population = nodes
        cites: set[str] = set()
        attempts = 0
        while len(cites) < refs and attempts < 20 * refs:
            pick = rng.choices(
                population,
                weights=[weights[p] for p in population],
                k=1,
            )[0]
            cites.add(pick)
            attempts += 1
        for cited in cites:
            edges.append((cited, node))
            weights[cited] += 1
        nodes.append(node)
        weights[node] = 1
        created.append(node)
    return created


def _heavy_tail(rng: random.Random) -> int:
    """A Zipf-ish non-negative integer: P(X ≥ x) ≈ x^(-1.6)."""
    u = rng.random()
    return int((1.0 - u) ** (-1.0 / 1.6)) - 1


def citation_like_graph(
    *,
    seed: int = 0,
    upper_size: int = 5000,
    lower_size: int = 4972,
    scale: float = 1.0,
) -> CGraph:
    """Generate an APS-citation substitute.

    Defaults give 1 source + 5,000 upper papers + 9 chain papers + 4,972
    lower papers = 9,982 nodes and ≈36k edges.  ``scale`` shrinks both
    blocks for tests.
    """
    if scale <= 0:
        raise ParameterError("scale must be positive")
    rng = random.Random(seed)
    n_upper = max(20, round(upper_size * scale))
    n_lower = max(20, round(lower_size * scale))

    edges: list[tuple[str, str]] = []
    upper = _grow_citation_block(
        rng, "up_", n_upper, [CITATION_SOURCE], edges
    )

    # The Figure-10 bridge: a review lineage c1 → … → c9, each citing only
    # its predecessor (in-degree 1), descending from the upper paper with
    # the most *received copies* — that is what makes every chain node
    # high-impact (huge prefix, huge suffix) before any filter is placed.
    from repro.propagation.engine import item_receipts

    upper_graph = CGraph(
        edges, nodes=[CITATION_SOURCE, *upper], sources=[CITATION_SOURCE]
    )
    receipts = item_receipts(upper_graph, CITATION_SOURCE)
    top_upper = max(upper, key=lambda p: (receipts.get(p, 0), p))
    chain = [f"chain_{i}" for i in range(CHAIN_LENGTH)]
    edges.append((top_upper, chain[0]))
    edges.extend(zip(chain, chain[1:]))

    _grow_citation_block(rng, "low_", n_lower, [chain[-1]], edges)

    all_nodes = [CITATION_SOURCE, *upper, *chain]
    return CGraph(
        sorted(set(edges)),
        nodes=all_nodes,
        sources=[CITATION_SOURCE],
    )
