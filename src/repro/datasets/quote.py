"""G_Phrase substitute — the Memetracker "lipstick on a pig" subgraph.

The paper extracts, from Leskovec et al.'s Quote dataset, the subgraph of
sites that used one phrase, runs ``Acyclic`` from every node and keeps the
largest DAG.  Published statistics of the result (Section 5 and Figure 6):

* 932 nodes, 2,703 edges, a single source;
* ≈70 % of nodes are sinks;
* ≈50 % of nodes have in-degree one;
* a small set of nodes with both high in- and out-degree ("potentially
  good candidates to become filters");
* as few as **four** filters achieve perfect redundancy elimination
  (Figure 7's steep FR curve).

The original trace is not redistributable, so :func:`quote_like_graph`
generates a seeded DAG engineered to those statistics.  The load-bearing
property is the last one: exactly ``hub_count`` non-sink merge nodes exist
(Proposition 1 then says ``hub_count`` filters suffice for FR = 1), every
other interior node keeps in-degree ≤ 1, and sinks absorb the remaining
edge mass with small random in-degrees, reproducing both the degree CDF
shape of Figure 6 and the steep curve of Figure 7.
"""

from __future__ import annotations

import random

from repro.exceptions import ParameterError
from repro.graphs.cgraph import CGraph

#: Node id of the single source (the phrase's initiator site).
QUOTE_SOURCE = "origin"


def quote_like_graph(
    *,
    seed: int = 0,
    hub_count: int = 4,
    distributors: int = 36,
    relays: int = 240,
    sinks: int = 651,
    scale: float = 1.0,
) -> CGraph:
    """Generate a Quote-dataset substitute.

    Default parameters yield 932 nodes (1 source + 36 distributors + 240
    relays + 4 hubs + 651 sinks) and ≈2.7k edges, matching the published
    size.  ``scale`` shrinks every population proportionally (minimum
    sizes keep the structure intact) for fast tests.

    Structure
    ---------
    ``origin → distributors → relays`` forms in-degree-1 cascade trees
    (Memetracker's long chains of blogs quoting one upstream site);
    distributors and relays additionally feed the ``hub_count`` hubs (the
    mainstream-media aggregation sites), which are the only non-sink
    merge nodes; hubs and relays then fan out to sinks, which may hear the
    phrase from several places.
    """
    if scale <= 0:
        raise ParameterError("scale must be positive")
    if hub_count < 1:
        raise ParameterError("need at least one hub")
    rng = random.Random(seed)

    n_dist = max(3, round(distributors * scale))
    n_relay = max(6, round(relays * scale))
    n_sink = max(10, round(sinks * scale))

    dist_nodes = [f"d{i}" for i in range(n_dist)]
    relay_nodes = [f"r{i}" for i in range(n_relay)]
    hub_nodes = [f"h{i}" for i in range(hub_count)]
    sink_nodes = [f"k{i}" for i in range(n_sink)]

    edges: list[tuple[str, str]] = []

    # Source feeds every distributor: distributors have in-degree exactly 1.
    edges.extend((QUOTE_SOURCE, d) for d in dist_nodes)

    # Each relay hangs under exactly one distributor (in-degree 1).
    for r in relay_nodes:
        edges.append((rng.choice(dist_nodes), r))

    # Hubs aggregate: every hub hears from several distributors/relays,
    # making them the only interior merge nodes.
    feeders = dist_nodes + relay_nodes
    for h in hub_nodes:
        fan_in = rng.randint(8, max(9, len(feeders) // 7))
        for f in rng.sample(feeders, min(fan_in, len(feeders))):
            edges.append((f, h))

    # A short hub chain (h0 → h1 → …) deepens the redundant corridor the
    # way big aggregators re-syndicate each other.
    for a, b in zip(hub_nodes, hub_nodes[1:]):
        edges.append((a, b))

    # Sinks: roughly a third hear the phrase exactly once; the rest hear
    # it from a geometric-tailed handful of places.  Hubs carry most of
    # the spreading mass (the long right tail of Figure 6's CDF belongs
    # to sinks and hubs).
    spreaders = hub_nodes + relay_nodes
    weights = [n_relay // 2 for _ in hub_nodes] + [1] * n_relay
    for s in sink_nodes:
        if rng.random() < 0.35:
            fan_in = 1
        else:
            fan_in = min(2 + _geometric(rng, 0.30), 12)
        chosen = _weighted_sample(rng, spreaders, weights, fan_in)
        for c in chosen:
            edges.append((c, s))

    # Every hub must keep spreading (dout > 0) so the merge-node set —
    # and with it Proposition 1's perfect filter set — is exactly the hubs.
    for h in hub_nodes:
        edges.append((h, rng.choice(sink_nodes)))

    nodes = [QUOTE_SOURCE, *dist_nodes, *relay_nodes, *hub_nodes, *sink_nodes]
    return CGraph(sorted(set(edges)), nodes=nodes, sources=[QUOTE_SOURCE])


def _geometric(rng: random.Random, stop: float) -> int:
    """Number of failures before a Bernoulli(stop) success (≥ 0)."""
    count = 0
    while rng.random() > stop:
        count += 1
    return count


def _weighted_sample(
    rng: random.Random,
    population: list[str],
    weights: list[int],
    k: int,
) -> set[str]:
    """Up to ``k`` distinct weighted draws (simple rejection loop)."""
    chosen: set[str] = set()
    attempts = 0
    while len(chosen) < k and attempts < 20 * k:
        chosen.add(rng.choices(population, weights=weights, k=1)[0])
        attempts += 1
    return chosen
