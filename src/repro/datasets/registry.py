"""Name-based dataset lookup for the CLI, experiments and benchmarks."""

from __future__ import annotations

from collections.abc import Callable

from repro.datasets.citation import citation_like_graph
from repro.datasets.quote import quote_like_graph
from repro.datasets.scale import scale_dag_dataset
from repro.datasets.synthetic import dense_synthetic, sparse_synthetic
from repro.datasets.toy import (
    fig1_graph,
    fig2_like_graph,
    fig3_like_graph,
    fig10_sketch_graph,
)
from repro.datasets.twitter import twitter_like_graph
from repro.exceptions import ParameterError
from repro.graphs.cgraph import CGraph

_GENERATORS: dict[str, Callable[..., CGraph]] = {
    "synthetic-sparse": sparse_synthetic,
    "synthetic-dense": dense_synthetic,
    "quote": quote_like_graph,
    "twitter": twitter_like_graph,
    "citation": citation_like_graph,
    "scale-dag": scale_dag_dataset,
    "fig1": lambda **kw: fig1_graph(),
    "fig2": lambda **kw: fig2_like_graph(),
    "fig3": lambda **kw: fig3_like_graph(),
    "fig10": lambda **kw: fig10_sketch_graph(),
}

#: All dataset names, in presentation order.
DATASET_NAMES: tuple[str, ...] = tuple(_GENERATORS)


def get_dataset(name: str, **kwargs) -> CGraph:
    """Generate the dataset registered under ``name``.

    Keyword arguments (``seed``, ``scale``, …) pass through to the
    generator; toy figures accept and ignore them.
    """
    try:
        factory = _GENERATORS[name]
    except KeyError:
        known = ", ".join(sorted(_GENERATORS))
        raise ParameterError(
            f"unknown dataset {name!r}; known datasets: {known}"
        ) from None
    return factory(**kwargs)
