"""The paper's synthetic graph model (Section 5, "Results using synthetic
datasets").

Nodes are assigned uniformly at random to ``levels`` levels (expected
``nodes_per_level`` nodes each); a directed edge runs from node ``v`` in
level ``i`` to node ``u`` in level ``j > i`` with probability

    ``p(v, u) = x / y^(j - i)``

so nearby levels connect densely and distant levels sparsely.  The paper
evaluates ``(x, y) = (1, 4)`` — 1026 nodes / 32427 edges — and
``(x, y) = (3, 4)`` — 1069 nodes / 101226 edges.

The paper does not state how the item enters the graph; we attach a single
source feeding every level-1 node, which preserves the property it relies
on ("nodes on the same level have similar properties; the expected number
and length of paths going through them is the same").
"""

from __future__ import annotations

import random

from repro.exceptions import ParameterError
from repro.graphs.cgraph import CGraph

#: Node id of the attached super-source.
SYNTHETIC_SOURCE = "source"


def layered_graph(
    levels: int = 10,
    nodes_per_level: int = 100,
    *,
    x: float = 1.0,
    y: float = 4.0,
    seed: int = 0,
    attach_source: bool = True,
) -> CGraph:
    """Generate one layered synthetic c-graph.

    Parameters
    ----------
    levels, nodes_per_level:
        Level count and the *expected* population of each level (the paper
        uses 10 levels of expected size 100).
    x, y:
        Density knobs of the edge probability ``x / y^(j-i)``.  The paper's
        two configurations are ``x=1, y=4`` (sparse, ≈32k edges) and
        ``x=3, y=4`` (dense, ≈100k edges).
    seed:
        Seeds both the level assignment and the edge coin flips.
    attach_source:
        Attach :data:`SYNTHETIC_SOURCE` feeding every node of the first
        level; disable to get the bare layered DAG.
    """
    if levels < 2:
        raise ParameterError("need at least 2 levels")
    if nodes_per_level < 1:
        raise ParameterError("nodes_per_level must be positive")
    if y <= 1.0:
        raise ParameterError("y must exceed 1 so probabilities decay")
    rng = random.Random(seed)
    total = levels * nodes_per_level

    level_of: dict[int, int] = {
        node: rng.randrange(levels) for node in range(total)
    }
    by_level: list[list[int]] = [[] for _ in range(levels)]
    for node, level in level_of.items():
        by_level[level].append(node)

    edges: list[tuple[object, object]] = []
    for i in range(levels):
        for j in range(i + 1, levels):
            p = x / (y ** (j - i))
            if p <= 0.0:
                continue
            p = min(1.0, p)
            for v in by_level[i]:
                for u in by_level[j]:
                    if rng.random() < p:
                        edges.append((v, u))

    if attach_source:
        for u in by_level[0]:
            edges.append((SYNTHETIC_SOURCE, u))
        return CGraph(
            edges,
            nodes=list(range(total)) + [SYNTHETIC_SOURCE],
            sources=[SYNTHETIC_SOURCE],
        )
    return CGraph(edges, nodes=range(total))


def sparse_synthetic(seed: int = 0, *, scale: float = 1.0) -> CGraph:
    """The paper's ``x/y = 1/4`` configuration (Figures 4(a), 5(a)).

    ``scale`` shrinks the expected level population for fast CI runs.
    """
    return layered_graph(
        nodes_per_level=max(2, round(100 * scale)), x=1.0, y=4.0, seed=seed
    )


def dense_synthetic(seed: int = 0, *, scale: float = 1.0) -> CGraph:
    """The paper's ``x/y = 3/4`` configuration (Figures 4(b), 5(b))."""
    return layered_graph(
        nodes_per_level=max(2, round(100 * scale)), x=3.0, y=4.0, seed=seed
    )
