"""Twitter substitute — the "sigcomm09" follower cascade.

The paper's Twitter graph is built from the Kwak et al. 2010 crawl: a
six-level BFS from user "sigcomm09", restricted to computer-science
profiles.  Published statistics (Section 5, Figure 8):

* ≈90k nodes, ≈120k edges, one root, acyclic;
* out-going edges per level grow exponentially —
  2, 16, 194, 43,993, 80,639 for levels 1…5;
* very sparse (almost a tree), so ``Greedy_All`` removes *all* redundancy
  with about six filters and the other heuristics need at most ten.

:func:`twitter_like_graph` rebuilds that shape: a level-structured cascade
with exactly the published per-level out-edge counts (scaled by ``scale``),
where all interior nodes keep in-degree one except ``merge_interior``
deliberately duplicated ones — the handful of users followed across
branches — and the last level absorbs the remaining edge mass as sinks
with small random in-degrees.
"""

from __future__ import annotations

import random

from repro.exceptions import ParameterError
from repro.graphs.cgraph import CGraph

#: The crawl root.
TWITTER_ROOT = "sigcomm09"

#: Out-edge counts per BFS level (levels 1..5) reported in the paper.
PAPER_LEVEL_OUT_EDGES: tuple[int, ...] = (2, 16, 194, 43_993, 80_639)

#: Approximate share of level-4→5 edges that land on *distinct* sinks.
#: 90k total nodes minus the interior population leaves ≈45.8k sinks for
#: 80,639 incoming edges — about 1.76 edges per sink.
_SINK_EDGE_SHARE = 0.57


def twitter_like_graph(
    *,
    seed: int = 0,
    scale: float = 1.0,
    merge_interior: int = 6,
) -> CGraph:
    """Generate a Twitter-crawl substitute.

    Parameters
    ----------
    scale:
        Multiplies every per-level edge count; ``scale=1`` reproduces the
        published ≈90k-node/≈125k-edge size, ``scale=0.01`` a sub-second
        test instance with identical shape.
    merge_interior:
        Number of interior (non-sink) nodes given a second parent.  These
        are the only redundancy-creating interior nodes, so ``Greedy_All``
        reaches FR = 1 with exactly this many filters — the Figure 8
        behaviour.
    """
    if scale <= 0:
        raise ParameterError("scale must be positive")
    if merge_interior < 0:
        raise ParameterError("merge_interior must be non-negative")
    rng = random.Random(seed)

    out_edges = [max(2, round(c * scale)) for c in PAPER_LEVEL_OUT_EDGES]

    levels: list[list[str]] = [[TWITTER_ROOT]]
    edges: list[tuple[str, str]] = []

    # Interior levels 1..4: each level's population equals the previous
    # level's out-edge count (tree growth); every node gets exactly one
    # parent, chosen with a squared-uniform bias so a few parents become
    # the big fan-out hubs observed in follower graphs.
    for depth, count in enumerate(out_edges[:-1], start=1):
        level_nodes = [f"L{depth}_{i}" for i in range(count)]
        parents = levels[-1]
        for i, node in enumerate(level_nodes):
            if i < len(parents):
                parent = parents[i]  # guarantee every parent spreads
            else:
                parent = parents[min(
                    int(rng.random() ** 2 * len(parents)),
                    len(parents) - 1,
                )]
            edges.append((parent, node))
        levels.append(level_nodes)

    # Final level: sinks shared among the last interior level's edges.
    last_out = out_edges[-1]
    sink_count = max(2, round(last_out * _SINK_EDGE_SHARE))
    sinks = [f"L5_{i}" for i in range(sink_count)]
    spreaders = levels[-1]
    seen_follow: set[tuple[str, str]] = set()
    for i in range(last_out):
        parent = spreaders[min(
            int(rng.random() ** 2 * len(spreaders)),
            len(spreaders) - 1,
        )]
        if i < sink_count:
            sink = sinks[i]  # cover every sink at least once
        else:
            sink = sinks[rng.randrange(sink_count)]
        if (parent, sink) in seen_follow:
            continue  # the same user cannot follow someone twice
        seen_follow.add((parent, sink))
        edges.append((parent, sink))

    # Cross-branch follows: give `merge_interior` interior nodes a second
    # parent from the level above (never creating a cycle), the sole
    # sources of interior redundancy.  Only spreading nodes qualify — a
    # double-parented *sink* would add receipts but no merge node.
    spreading = {u for u, _ in edges}
    interior_pool = [
        (depth, node)
        for depth in range(2, len(levels))
        for node in levels[depth]
        if node in spreading
    ]
    rng.shuffle(interior_pool)
    existing = set(edges)
    added = 0
    for depth, node in interior_pool:
        if added >= merge_interior:
            break
        candidates = [p for p in levels[depth - 1] if (p, node) not in existing]
        if not candidates:
            continue
        parent = rng.choice(candidates)
        edges.append((parent, node))
        existing.add((parent, node))
        added += 1

    all_nodes = [node for level in levels for node in level] + sinks
    return CGraph(edges, nodes=all_nodes, sources=[TWITTER_ROOT])
