"""The scale-dag: a seeded layered DAG that grows to 10^6 nodes.

The built-in trace-shaped datasets top out around matrix scale because
they materialize python edge lists.  The scale-dag is generated as a
pure edge *stream* (:func:`repro.graphs.largescale.scale_dag_edges`):
``scale=1.0`` is the 10^5-node tier and ``scale=10.0`` the 10^6 one,
with ~30% of non-root nodes spawning as fresh sources (the
constant-source-fraction regime the paper's trace networks show) and
the rest drawing a handful of parents from a narrow window of a nearby
earlier level, which makes paths re-converge and gives the
filter-placement objective real information multiplicity to remove.

Two consumption modes share one edge stream, so structure is identical:

* ``streamed=False`` (default) — a materialized
  :class:`~repro.graphs.cgraph.CGraph`, right for tests and small
  scales;
* ``streamed=True`` — a :class:`~repro.graphs.largescale.StreamedGraph`
  compiled via the int32 streaming path, the only mode that reaches
  million-node scale (and what the ``scale`` bench suite uses).
"""

from __future__ import annotations

from repro.graphs.cgraph import CGraph
from repro.graphs.largescale import (
    scale_dag,
    scale_dag_edges,
    scale_dag_size,
)


def scale_dag_dataset(
    seed: int = 7,
    scale: float = 0.01,
    streamed: bool = False,
):
    """The scale-dag at ``scale`` (``1.0`` → ``n = 10^5``).

    The default ``scale=0.01`` (``n = 1000``) keeps blanket
    every-dataset sweeps test-sized; the scale tier passes ``scale`` and
    ``streamed=True`` explicitly.
    """
    if streamed:
        return scale_dag(scale, seed)
    return CGraph(
        scale_dag_edges(scale, seed), nodes=range(scale_dag_size(scale))
    )
