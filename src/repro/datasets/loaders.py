"""Loading the *real* datasets, for users who have them.

The paper's three real datasets are publicly documented but not
redistributable here:

* Quote / Memetracker (Leskovec et al. 2009) — phrase-cluster traces;
* the Kwak et al. 2010 Twitter crawl (``http://an.kaist.ac.kr/traces/
  WWW2010.html``);
* the APS citation corpus (``https://publish.aps.org/datasets``).

Given any of them as a plain edge list, :func:`load_real_dataset` applies
the exact preparation pipeline of Section 5: restrict to the nodes the
item can reach, break cycles with ``Acyclic`` (from the given initiator,
or — like the paper's Quote handling — from every candidate, keeping the
largest DAG), and hand back a single-source c-graph ready for the
placement algorithms and the experiment harness.
"""

from __future__ import annotations

from pathlib import Path
from typing import Hashable

from repro.graphs.acyclic import acyclic_subgraph, largest_acyclic_subgraph
from repro.graphs.cgraph import CGraph
from repro.graphs.io import read_edge_list
from repro.graphs.validation import reachable_subgraph

Node = Hashable


def prepare_cgraph(
    graph: CGraph,
    *,
    initiator: Node | None = None,
    max_acyclic_candidates: int = 64,
) -> CGraph:
    """Apply the paper's pre-processing to an arbitrary directed graph.

    With a known ``initiator`` (e.g. ``"sigcomm09"``), runs ``Acyclic``
    from it.  Without one — "there is no clear initiator of the phrase in
    the blogosphere" — runs ``Acyclic`` from up to
    ``max_acyclic_candidates`` highest-out-degree nodes and keeps the
    largest resulting DAG (out-degree ranking trims the paper's
    every-node sweep to something tractable; pass a larger limit to match
    it exactly).
    """
    if initiator is not None:
        prepared = acyclic_subgraph(graph, initiator)
    else:
        ranked = sorted(
            graph.nodes(),
            key=lambda v: (-graph.out_degree(v), repr(v)),
        )
        prepared = largest_acyclic_subgraph(
            graph, ranked[:max_acyclic_candidates]
        )
    return reachable_subgraph(prepared)


def load_real_dataset(
    path: str | Path,
    *,
    initiator: Node | None = None,
    int_ids: bool = True,
) -> CGraph:
    """Load an edge-list file and run :func:`prepare_cgraph` on it."""
    raw = read_edge_list(path, int_ids=int_ids)
    return prepare_cgraph(raw, initiator=initiator)
