"""Theorem 2's gadget: VertexCover → FP on DAGs.

Construction, following the appendix:

* start from an undirected graph ``G(V, E)`` and an integer budget ``k``;
* add a source ``s`` (first) and a sink ``t`` (last), orient every original
  edge from the lower-ordered endpoint to the higher one, and wire
  ``s → v → t`` for every ``v ∈ V`` — a DAG by construction;
* replace **every** directed edge ``(u, v)`` by the *multiplier tool*:
  ``m`` fresh interior nodes ``w_1 … w_m`` with edges ``u → w_i → v``, so
  ``x`` copies leaving ``u`` become ``x·m`` copies arriving at ``v``.

With ``m`` large enough, any filter placement that avoids covering some
original edge ``(u, v)`` lets ``Θ(m³)`` copies cascade through the
``s → u → v → t`` corridor, while placements that are vertex covers keep
every corridor at ``O(m²)`` — so cheap filter placements and vertex covers
coincide.  The tests certify the separation numerically on small instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.exceptions import ParameterError
from repro.graphs.cgraph import CGraph

Vertex = Hashable

SOURCE = "s"
SINK = "t"


@dataclass(frozen=True)
class VertexCoverInstance:
    """An undirected VertexCover instance.

    ``vertices`` fixes the order ``σ`` used to orient edges in the gadget,
    making the construction deterministic.
    """

    vertices: tuple[Vertex, ...]
    edges: tuple[tuple[Vertex, Vertex], ...]

    def __post_init__(self) -> None:
        known = set(self.vertices)
        if len(known) != len(self.vertices):
            raise ParameterError("duplicate vertices in instance")
        for u, v in self.edges:
            if u == v:
                raise ParameterError(f"self-loop {u!r} not allowed")
            if u not in known or v not in known:
                raise ParameterError(f"edge ({u!r}, {v!r}) uses unknown vertex")


def is_vertex_cover(
    instance: VertexCoverInstance, chosen: set[Vertex]
) -> bool:
    """Does ``chosen`` touch every edge of the instance?"""
    return all(u in chosen or v in chosen for u, v in instance.edges)


def multiplier_node(u: Vertex, v: Vertex, index: int) -> tuple:
    """Id of the ``index``-th interior node of the ``(u, v)`` multiplier."""
    return ("w", u, v, index)


def vertexcover_to_fp(
    instance: VertexCoverInstance, m: int
) -> CGraph:
    """Build the Theorem-2 DAG for a VertexCover instance.

    Parameters
    ----------
    m:
        Multiplier width.  The proof takes ``m`` polynomially huge; for
        numeric certification ``m`` a few times ``|V|²`` already separates
        covers from non-covers.
    """
    if m < 1:
        raise ParameterError(f"multiplier width must be >= 1, got {m}")
    position = {v: i for i, v in enumerate(instance.vertices)}

    directed: list[tuple[Vertex, Vertex]] = []
    for u, v in instance.edges:
        if position[u] < position[v]:
            directed.append((u, v))
        else:
            directed.append((v, u))
    directed.extend((SOURCE, v) for v in instance.vertices)
    directed.extend((v, SINK) for v in instance.vertices)

    gadget_edges: list[tuple[Hashable, Hashable]] = []
    for u, v in directed:
        for index in range(m):
            w = multiplier_node(u, v, index)
            gadget_edges.append((u, w))
            gadget_edges.append((w, v))

    nodes = [SOURCE, SINK, *instance.vertices]
    return CGraph(gadget_edges, nodes=nodes, sources=[SOURCE])
