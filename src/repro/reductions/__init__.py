"""Executable NP-completeness gadgets (Theorems 1 and 2).

The paper proves FP NP-complete on general digraphs by reduction from
SetCover and on DAGs by reduction from VertexCover.  These modules build
the exact gadget graphs from the proofs, so the test suite can certify the
reductions numerically (cover ⇔ cheap filter placement) on small instances
— an executable appendix.
"""

from repro.reductions.setcover import (
    SetCoverInstance,
    setcover_to_fp,
    verify_cover_breaks_cycles,
)
from repro.reductions.vertexcover import (
    VertexCoverInstance,
    is_vertex_cover,
    vertexcover_to_fp,
)

__all__ = [
    "SetCoverInstance",
    "setcover_to_fp",
    "verify_cover_breaks_cycles",
    "VertexCoverInstance",
    "vertexcover_to_fp",
    "is_vertex_cover",
]
