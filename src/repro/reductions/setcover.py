"""Theorem 1's gadget: SetCover → FP on general (cyclic) digraphs.

Construction, following the appendix verbatim:

* one node ``v_i`` per set ``S_i``, arranged in a fixed cyclic order ``σ``;
* for every universe element ``u``, a directed cycle through the nodes of
  the sets containing ``u`` — edges ``v_j1 → v_j2`` for consecutive
  containing sets in the cyclic order (including the wrap-around edge);
* a source wired to every set node.

One item then multiplies forever around every element-cycle, so ``Φ`` is
finite **iff** the chosen filters hit every element's cycle — i.e. iff the
chosen sets cover the universe.  :func:`verify_cover_breaks_cycles` checks
that equivalence with the propagation machinery, which is how the tests
certify the reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.exceptions import ParameterError
from repro.graphs.cgraph import CGraph
from repro.propagation.simulator import is_propagation_finite

Element = Hashable

SOURCE = "source"


@dataclass(frozen=True)
class SetCoverInstance:
    """A SetCover instance: a universe and a family of subsets."""

    universe: frozenset[Element]
    sets: tuple[frozenset[Element], ...]

    def __post_init__(self) -> None:
        covered = frozenset().union(*self.sets) if self.sets else frozenset()
        if not self.universe <= covered:
            missing = self.universe - covered
            raise ParameterError(
                f"universe elements not in any set: {sorted(missing, key=repr)}"
            )

    def is_cover(self, chosen: set[int]) -> bool:
        """Do the sets indexed by ``chosen`` cover the universe?"""
        covered: set[Element] = set()
        for index in chosen:
            covered.update(self.sets[index])
        return self.universe <= covered


def set_node(index: int) -> str:
    """Graph node id for set ``S_index``."""
    return f"set_{index}"


def setcover_to_fp(instance: SetCoverInstance) -> CGraph:
    """Build the Theorem-1 c-graph for a SetCover instance.

    The returned graph is cyclic by construction (one cycle per universe
    element) and has the single designated source :data:`SOURCE`.
    """
    edges: set[tuple[str, str]] = set()
    nodes = [set_node(i) for i in range(len(instance.sets))]
    for i in range(len(instance.sets)):
        edges.add((SOURCE, set_node(i)))

    for element in sorted(instance.universe, key=repr):
        containing = [
            i for i, s in enumerate(instance.sets) if element in s
        ]
        if len(containing) == 1:
            # A single-set element cannot form a cycle: Theorem 1's gadget
            # adds a self-loop in spirit; on simple graphs we emulate the
            # forced choice by a 2-cycle through a private companion node,
            # which likewise diverges unless the set node filters it.
            only = set_node(containing[0])
            companion = f"element_{element}_loop"
            edges.add((only, companion))
            edges.add((companion, only))
            continue
        for position, index in enumerate(containing):
            nxt = containing[(position + 1) % len(containing)]
            edges.add((set_node(index), set_node(nxt)))

    return CGraph(sorted(edges), nodes=nodes + [SOURCE], sources=[SOURCE])


def verify_cover_breaks_cycles(
    instance: SetCoverInstance, chosen: set[int]
) -> bool:
    """Theorem 1's equivalence, checked by machine.

    Returns True iff placing filters on the set nodes indexed by ``chosen``
    makes propagation finite on the gadget graph — which the theorem says
    happens exactly when ``chosen`` is a set cover.
    """
    graph = setcover_to_fp(instance)
    filters = {set_node(i) for i in chosen}
    return is_propagation_finite(graph, filters)
