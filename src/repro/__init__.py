"""repro — Filter Placement for Minimizing Information Multiplicity.

A complete, self-contained reproduction of

    Dóra Erdős, Vatche Ishakian, Andrei Lapets, Evimaria Terzi,
    Azer Bestavros.  "The Filter-Placement Problem and its Application to
    Minimizing Information Multiplicity."  PVLDB 5(5), 2012.

Quick start
-----------
::

    from repro import CGraph, greedy_all, filter_ratio

    g = CGraph([
        ("s", "x"), ("s", "y"),
        ("x", "z1"), ("x", "z2"), ("y", "z2"), ("y", "z3"),
        ("z1", "w"), ("z2", "w"), ("z3", "w"),
    ])
    result = greedy_all(g, k=2)
    print(result.filters)                  # where to install filters
    print(filter_ratio(g, result.filters)) # fraction of redundancy removed

Package layout
--------------
* :mod:`repro.graphs` — the c-graph structure, traversals, the ``Acyclic``
  algorithm, the binary-tree transform, I/O.
* :mod:`repro.propagation` — exact, simulated, and probabilistic
  propagation engines.
* :mod:`repro.backends` — pluggable propagation backends: the exact
  big-int engine and a vectorized NumPy engine, behind one registry.
* :mod:`repro.core` — the objective and every placement algorithm from the
  paper (plus exact baselines).
* :mod:`repro.reductions` — executable NP-completeness gadgets
  (Theorems 1 and 2).
* :mod:`repro.datasets` — the synthetic generator of Section 5 and
  structure-matched substitutes for the Quote/Twitter/APS datasets.
* :mod:`repro.analysis` — FR curves, degree CDFs, runtime harness.
* :mod:`repro.experiments` — one module per paper figure.
* :mod:`repro.bench` — benchmark scenario matrices, instrumentation,
  ``BENCH.json`` trajectory files and the regression comparator.
"""

from repro.exceptions import (
    CyclicGraphError,
    DivergentPropagationError,
    GraphStructureError,
    MissingNodeError,
    MissingSourceError,
    ParameterError,
    ReproError,
)
from repro.graphs import (
    CGraph,
    acyclic_subgraph,
    binarize_ctree,
    ensure_single_source,
    largest_acyclic_subgraph,
)
from repro.propagation import (
    node_receipts,
    simulate,
    total_receipts,
)
from repro.backends import (
    BACKEND_NAMES,
    available_backends,
    get_backend,
    set_default_backend,
    use_backend,
)
from repro.core import (
    PlacementResult,
    filter_ratio,
    get_algorithm,
    greedy_all,
    greedy_l,
    greedy_max,
    greedy_one,
    impacts,
    lazy_greedy_all,
    marginal_gains,
    max_objective,
    minimal_perfect_filter_set,
    objective_value,
    optimal_placement,
    phi,
    tree_optimal_placement,
    use_strategy,
)

__version__ = "1.2.0"

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "GraphStructureError",
    "CyclicGraphError",
    "MissingNodeError",
    "MissingSourceError",
    "ParameterError",
    "DivergentPropagationError",
    # graphs
    "CGraph",
    "acyclic_subgraph",
    "largest_acyclic_subgraph",
    "ensure_single_source",
    "binarize_ctree",
    # propagation
    "node_receipts",
    "total_receipts",
    "simulate",
    # backends
    "BACKEND_NAMES",
    "available_backends",
    "get_backend",
    "set_default_backend",
    "use_backend",
    # core
    "PlacementResult",
    "phi",
    "objective_value",
    "max_objective",
    "filter_ratio",
    "minimal_perfect_filter_set",
    "impacts",
    "marginal_gains",
    "greedy_all",
    "lazy_greedy_all",
    "greedy_max",
    "greedy_one",
    "greedy_l",
    "tree_optimal_placement",
    "optimal_placement",
    "get_algorithm",
    "use_strategy",
]
