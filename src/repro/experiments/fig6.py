"""Figure 6: in-degree CDF of the Quote-like graph (G_Phrase).

Published reference points: almost 70 % of nodes are sinks, almost 50 %
have in-degree one, and a small set of nodes carries both high in- and
out-degree (the filter candidates).
"""

from __future__ import annotations

from repro.analysis.metrics import cdf_value_at, degree_cdf, describe
from repro.analysis.report import format_cdf_table, format_stats_table
from repro.datasets.quote import quote_like_graph
from repro.experiments.base import ExperimentResult


def run(*, seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    graph = quote_like_graph(seed=seed, scale=scale)
    cdf = degree_cdf(graph, "in")
    stats = describe(graph)

    body = "\n".join([
        "In-degree CDF of G_Phrase:",
        format_cdf_table(cdf),
        "",
        format_stats_table({"quote-like": stats}),
        "",
        f"P[din <= 1] = {cdf_value_at(cdf, 1):.3f}   "
        f"(paper: ~50% of nodes have in-degree one; ~70% are sinks)",
    ])
    return ExperimentResult(
        experiment="fig6",
        title="Figure 6: CDF of node indegree for G_Phrase",
        body=body,
        series={
            "cdf": cdf,
            "sink_fraction": stats.sink_fraction,
            "indegree_one_fraction": stats.indegree_one_fraction,
            "merge_nodes": stats.merge_nodes,
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
