"""Figure 10: the chain pathology, isolated on its miniature sketch.

The paper sketches why ``Greedy_Max`` stalls on the citation graph: nine
in-degree-one nodes strung on a path all carry the full upper-half
multiplicity, every one looks high-impact in isolation, and filtering any
single one collapses the rest.  This driver runs both algorithms on
:func:`repro.datasets.toy.fig10_sketch_graph` and prints their picks and
FR curves side by side — the smallest instance exhibiting the Figure 9
separation.
"""

from __future__ import annotations

from repro.analysis.curves import fr_curves
from repro.analysis.report import format_curve_table, format_table
from repro.core.greedy_all import GreedyAll
from repro.core.greedy_max import GreedyMax
from repro.core.impact import impacts
from repro.datasets.toy import fig10_sketch_graph
from repro.experiments.base import ExperimentResult

DEFAULT_KS: tuple[int, ...] = tuple(range(0, 7))


def run(*, seed: int = 0, chain_length: int = 9) -> ExperimentResult:
    graph = fig10_sketch_graph(chain_length)
    initial = impacts(graph)
    chain_nodes = [f"x{i}" for i in range(1, chain_length + 1)]

    g_all = GreedyAll().place(graph, 6)
    g_max = GreedyMax().place(graph, 6)
    curves = fr_curves(graph, ["G_All", "G_Max"], DEFAULT_KS, seed=seed)

    impact_rows = [
        [v, str(initial[v])]
        for v in ["h", *chain_nodes[:4], "m"]
        if v in initial
    ]
    chain_picked_by_max = sum(1 for v in g_max.filters if v in chain_nodes)
    body = "\n".join([
        "Initial impacts (every chain node looks valuable):",
        format_table(["node", "I(v)"], impact_rows),
        "",
        f"G_Max picks : {g_max.filters}  ({chain_picked_by_max} chain nodes)",
        f"G_All picks : {g_all.filters}",
        "",
        format_curve_table(curves),
    ])
    return ExperimentResult(
        experiment="fig10",
        title="Figure 10: sketch of the APS chain pathology",
        body=body,
        series={
            "initial_impacts": initial,
            "g_max_chain_picks": chain_picked_by_max,
            "g_all_filters": g_all.filters,
            "g_max_filters": g_max.filters,
            "curves": {n: c.values for n, c in curves.items()},
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
