"""Figure 7: FR versus number of filters on the Quote-like graph.

Paper findings this experiment regenerates:

* the FR curve is steep — **four** filters suffice for FR = 1 under
  ``Greedy_All`` (the four high-in/out hubs cover every redundant path);
* ``Greedy_Max`` matches ``Greedy_All`` from small k onward;
* ``Greedy_1`` and ``Greedy_L`` are only slightly worse;
* ``Rand_W`` performs surprisingly well (hub weights are large), while
  ``Rand_K`` and ``Rand_I`` waste picks on the ~70 % sink population.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.curves import fr_curves
from repro.analysis.report import format_curve_table
from repro.core.registry import PAPER_ALGORITHM_NAMES
from repro.datasets.quote import quote_like_graph
from repro.experiments.base import ExperimentResult

DEFAULT_KS: tuple[int, ...] = tuple(range(0, 11))


def run(
    *,
    seed: int = 0,
    scale: float = 1.0,
    ks: Sequence[int] = DEFAULT_KS,
    trials: int = 25,
    algorithms: Sequence[str] = PAPER_ALGORITHM_NAMES,
) -> ExperimentResult:
    graph = quote_like_graph(seed=seed, scale=scale)
    curves = fr_curves(graph, algorithms, ks, trials=trials, seed=seed)

    g_all = curves.get("G_All")
    perfect_at = g_all.first_k_reaching(1.0) if g_all else None
    body = "\n".join([
        format_curve_table(curves),
        "",
        f"G_All reaches FR = 1 at k = {perfect_at} "
        f"(paper: four filters achieve perfect redundancy elimination)",
    ])
    return ExperimentResult(
        experiment="fig7",
        title="Figure 7: FR for G_Phrase on the Quote dataset",
        body=body,
        series={
            "curves": {n: c.values for n, c in curves.items()},
            "ks": tuple(ks),
            "g_all_perfect_at": perfect_at,
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
