"""Shared experiment plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class ExperimentResult:
    """Output of one experiment driver.

    Attributes
    ----------
    experiment:
        Registry name (``"fig7"`` …).
    title:
        Human-readable description including the paper artifact.
    body:
        Pre-rendered text (tables) matching what the paper's figure shows.
    series:
        Machine-readable numbers for assertions and downstream tooling:
        figure-specific structure, documented per driver.
    """

    experiment: str
    title: str
    body: str
    series: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        bar = "=" * min(72, max(len(self.title), 20))
        return f"{self.title}\n{bar}\n{self.body}\n"
