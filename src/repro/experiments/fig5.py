"""Figure 5: FR versus number of filters on the synthetic graphs.

The paper sweeps k from 0 to 50 for all seven algorithms on both layered
graphs and reports a *gradual* FR increase — filters cover roughly
equal-sized distinct path portions, so the marginal utility stays nearly
constant (contrast with the steep real-data curves of Figures 7–9).
The final FR at k = 50 sits near 0.5: dense synthetic graphs cannot be
fully filtered with few filters.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.curves import fr_curves
from repro.analysis.report import format_curve_table
from repro.core.registry import PAPER_ALGORITHM_NAMES
from repro.datasets.synthetic import dense_synthetic, sparse_synthetic
from repro.experiments.base import ExperimentResult

#: Budgets matching the paper's 0..50 x-axis, sampled every 5.
DEFAULT_KS: tuple[int, ...] = tuple(range(0, 51, 5))


def run(
    *,
    seed: int = 0,
    scale: float = 1.0,
    ks: Sequence[int] = DEFAULT_KS,
    trials: int = 25,
    algorithms: Sequence[str] = PAPER_ALGORITHM_NAMES,
) -> ExperimentResult:
    sparse = sparse_synthetic(seed=seed, scale=scale)
    dense = dense_synthetic(seed=seed, scale=scale)

    curves_sparse = fr_curves(sparse, algorithms, ks, trials=trials, seed=seed)
    curves_dense = fr_curves(dense, algorithms, ks, trials=trials, seed=seed)

    body = "\n".join([
        "(a) x/y = 1/4 — FR vs number of filters",
        format_curve_table(curves_sparse),
        "",
        "(b) x/y = 3/4 — FR vs number of filters",
        format_curve_table(curves_dense),
    ])
    return ExperimentResult(
        experiment="fig5",
        title="Figure 5: FR for synthetic graphs",
        body=body,
        series={
            "sparse": {n: c.values for n, c in curves_sparse.items()},
            "dense": {n: c.values for n, c in curves_dense.items()},
            "ks": tuple(curves_sparse[algorithms[0]].ks),
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
