"""Dataset-summary statistics ("Table D").

The paper has no numbered tables; Section 5's prose quotes per-dataset
node/edge counts and structural fractions.  This driver collects them for
every dataset in one table so EXPERIMENTS.md can compare against the
published numbers:

* synthetic x/y=1/4 — 1026 nodes, 32,427 edges;
* synthetic x/y=3/4 — 1069 nodes, 101,226 edges;
* Quote subgraph — 932 nodes, 2,703 edges, ~70 % sinks, ~50 % in-degree 1;
* Twitter crawl — ~90k nodes, ~120k edges;
* APS citation subgraph — 9,982 nodes, 36,070 edges.
"""

from __future__ import annotations

from repro.analysis.metrics import describe
from repro.analysis.report import format_stats_table
from repro.datasets.citation import citation_like_graph
from repro.datasets.quote import quote_like_graph
from repro.datasets.synthetic import dense_synthetic, sparse_synthetic
from repro.datasets.twitter import twitter_like_graph
from repro.experiments.base import ExperimentResult


def run(*, seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    stats = {
        "synthetic x/y=1/4": describe(sparse_synthetic(seed=seed, scale=scale)),
        "synthetic x/y=3/4": describe(dense_synthetic(seed=seed, scale=scale)),
        "quote-like": describe(quote_like_graph(seed=seed, scale=scale)),
        "twitter-like": describe(twitter_like_graph(seed=seed, scale=scale)),
        "citation-like": describe(citation_like_graph(seed=seed, scale=scale)),
    }
    body = format_stats_table(stats)
    return ExperimentResult(
        experiment="tabled",
        title="Dataset summary (Section 5 in-text statistics)",
        body=body,
        series={name: vars(s) for name, s in stats.items()},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
