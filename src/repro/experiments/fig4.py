"""Figure 4: in-degree CDFs of the two synthetic graphs.

The paper plots the cumulative in-degree distribution of the layered
synthetic graphs for ``x/y = 1/4`` (Figure 4a, in-degrees concentrated
below ~50) and ``x/y = 3/4`` (Figure 4b, stretching past 100).  The
qualitative claims this experiment checks: the dense configuration's
distribution is stochastically larger, and both are unimodal around
``x · Σ_d n/y^d``-ish means (no heavy tail — unlike the real datasets).
"""

from __future__ import annotations

from repro.analysis.metrics import degree_cdf, describe
from repro.analysis.report import format_cdf_table, format_stats_table
from repro.datasets.synthetic import dense_synthetic, sparse_synthetic
from repro.experiments.base import ExperimentResult


def run(*, seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    sparse = sparse_synthetic(seed=seed, scale=scale)
    dense = dense_synthetic(seed=seed, scale=scale)

    cdf_sparse = degree_cdf(sparse, "in")
    cdf_dense = degree_cdf(dense, "in")

    body = "\n".join([
        "(a) x/y = 1/4 — in-degree CDF",
        format_cdf_table(cdf_sparse),
        "",
        "(b) x/y = 3/4 — in-degree CDF",
        format_cdf_table(cdf_dense),
        "",
        format_stats_table({
            "synthetic x/y=1/4": describe(sparse),
            "synthetic x/y=3/4": describe(dense),
        }),
    ])
    return ExperimentResult(
        experiment="fig4",
        title="Figure 4: CDF of indegrees for synthetic graphs",
        body=body,
        series={
            "sparse_cdf": cdf_sparse,
            "dense_cdf": cdf_dense,
            "sparse_max_in": max((d for d, _ in cdf_sparse), default=0),
            "dense_max_in": max((d for d, _ in cdf_dense), default=0),
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
