"""Figure 8: FR versus number of filters on the Twitter-like graph.

Paper findings this experiment regenerates:

* ``Greedy_All`` removes *all* redundancy with about **six** filters;
* ``Greedy_Max``, ``Greedy_1`` and ``Greedy_L`` reach FR = 1 with at most
  ten;
* ``Greedy_L`` converges the slowest of the greedy family (its prefix
  bias drags it away from the source);
* the randomized baselines are hopeless at these budgets — k = 10 picks
  among 90k nodes rarely hit the six merge points.

``scale`` defaults to 0.2 (≈18k nodes) to keep the 25-trial randomized
sweeps quick; pass ``scale=1.0`` for the full-size (~90k node) graph used
in EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.curves import fr_curves
from repro.analysis.report import format_curve_table
from repro.core.registry import PAPER_ALGORITHM_NAMES
from repro.datasets.twitter import twitter_like_graph
from repro.experiments.base import ExperimentResult

DEFAULT_KS: tuple[int, ...] = tuple(range(0, 11))


def run(
    *,
    seed: int = 0,
    scale: float = 0.2,
    ks: Sequence[int] = DEFAULT_KS,
    trials: int = 25,
    algorithms: Sequence[str] = PAPER_ALGORITHM_NAMES,
) -> ExperimentResult:
    graph = twitter_like_graph(seed=seed, scale=scale)
    curves = fr_curves(graph, algorithms, ks, trials=trials, seed=seed)

    g_all = curves.get("G_All")
    perfect_at = g_all.first_k_reaching(1.0) if g_all else None
    body = "\n".join([
        format_curve_table(curves),
        "",
        f"graph: {graph.number_of_nodes()} nodes, "
        f"{graph.number_of_edges()} edges (scale={scale})",
        f"G_All reaches FR = 1 at k = {perfect_at} "
        f"(paper: six filters remove all redundancy)",
    ])
    return ExperimentResult(
        experiment="fig8",
        title="Figure 8: FR for the Twitter graph",
        body=body,
        series={
            "curves": {n: c.values for n, c in curves.items()},
            "ks": tuple(ks),
            "g_all_perfect_at": perfect_at,
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
