"""Experiment registry: name → driver module's ``run``."""

from __future__ import annotations

from collections.abc import Callable

from repro.exceptions import ParameterError
from repro.experiments import (
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    tabled,
)
from repro.experiments.base import ExperimentResult

_DRIVERS: dict[str, Callable[..., ExperimentResult]] = {
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "tabled": tabled.run,
}

#: All experiment names, in figure order.
EXPERIMENT_NAMES: tuple[str, ...] = tuple(_DRIVERS)


def get_experiment(name: str) -> Callable[..., ExperimentResult]:
    """The ``run`` callable of the experiment registered under ``name``."""
    try:
        return _DRIVERS[name]
    except KeyError:
        known = ", ".join(sorted(_DRIVERS))
        raise ParameterError(
            f"unknown experiment {name!r}; known experiments: {known}"
        ) from None
