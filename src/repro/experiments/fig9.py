"""Figure 9: FR versus number of filters on the citation-like graph.

Paper findings this experiment regenerates:

* ``Greedy_All`` is clearly the best algorithm on this dataset;
* ``Greedy_Max`` goes **flat over a long k-range**: the nine-node
  in-degree-one bridge chain (Figure 10) makes every chain node look
  high-impact, ``Greedy_Max`` buys them all, and one upstream filter had
  already collapsed their value;
* ``Greedy_1`` / ``Greedy_L`` converge to high FR within ~15 filters.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.curves import fr_curves
from repro.analysis.report import format_curve_table
from repro.core.registry import PAPER_ALGORITHM_NAMES
from repro.datasets.citation import citation_like_graph
from repro.experiments.base import ExperimentResult

DEFAULT_KS: tuple[int, ...] = tuple(range(0, 11))


def run(
    *,
    seed: int = 0,
    scale: float = 0.5,
    ks: Sequence[int] = DEFAULT_KS,
    trials: int = 25,
    algorithms: Sequence[str] = PAPER_ALGORITHM_NAMES,
) -> ExperimentResult:
    graph = citation_like_graph(seed=seed, scale=scale)
    curves = fr_curves(graph, algorithms, ks, trials=trials, seed=seed)

    g_max = curves.get("G_Max")
    plateau = 0
    if g_max and g_max.values:
        run_length = 1
        for prev, cur in zip(g_max.values, g_max.values[1:]):
            run_length = run_length + 1 if abs(cur - prev) < 1e-12 else 1
            plateau = max(plateau, run_length)
    body = "\n".join([
        format_curve_table(curves),
        "",
        f"graph: {graph.number_of_nodes()} nodes, "
        f"{graph.number_of_edges()} edges (scale={scale})",
        f"G_Max's longest FR plateau spans {plateau} consecutive budgets "
        f"(paper: 'the long range over which G_Max is constant')",
    ])
    return ExperimentResult(
        experiment="fig9",
        title="Figure 9: FR for G_Citation in the APS dataset",
        body=body,
        series={
            "curves": {n: c.values for n, c in curves.items()},
            "ks": tuple(ks),
            "g_max_plateau": plateau,
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
