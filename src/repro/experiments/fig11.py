"""Figure 11: wall-clock seconds to place ten filters on the Twitter graph.

The paper (4 GHz Opteron, pure-Python plist engine) reports: ``G_1`` under
a minute, ``G_Max`` and ``G_L`` about an hour, ``G_All`` 83 minutes.  The
reproduced claim is the *ordering* — ``G_1`` is far cheaper than the
impact-based methods, and ``G_All``'s per-iteration recomputation makes it
the most expensive — not the absolute seconds: this library's two-pass
impact engine is asymptotically faster than the paper's plist bookkeeping
(run ``filter-placement bench --suite ablation`` for the engine
comparison).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.report import format_table
from repro.analysis.runtime import runtime_comparison
from repro.datasets.twitter import twitter_like_graph
from repro.experiments.base import ExperimentResult

#: Figure 11's bar order; ``G_All_paper`` is Algorithm 1 without early
#: stopping (the cost the paper measured), ``G_All`` this library's default.
DEFAULT_ALGORITHMS: tuple[str, ...] = (
    "G_1",
    "G_Max",
    "G_L",
    "G_All",
    "G_All_paper",
)


def run(
    *,
    seed: int = 0,
    scale: float = 0.2,
    k: int = 10,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    repeats: int = 1,
) -> ExperimentResult:
    graph = twitter_like_graph(seed=seed, scale=scale)
    measurements = runtime_comparison(graph, algorithms, k, repeats=repeats)

    rows = [
        [m.algorithm, f"{m.seconds:.3f}", str(m.filters_found)]
        for m in measurements
    ]
    body = "\n".join([
        f"graph: {graph.number_of_nodes()} nodes, "
        f"{graph.number_of_edges()} edges (scale={scale}), k={k}",
        format_table(["algorithm", "seconds", "filters"], rows),
    ])
    return ExperimentResult(
        experiment="fig11",
        title="Figure 11: execution times for placing ten filters (Twitter)",
        body=body,
        series={
            "seconds": {m.algorithm: m.seconds for m in measurements},
            "k": k,
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
