"""Experiment drivers — one module per paper figure.

Every module exposes ``run(**knobs) -> ExperimentResult`` regenerating the
rows/series the corresponding figure plots:

=========  =========================================================
fig4       in-degree CDFs of the two synthetic graphs
fig5       FR vs k on the synthetic graphs, all seven algorithms
fig6       in-degree CDF of the Quote-like graph
fig7       FR vs k on the Quote-like graph
fig8       FR vs k on the Twitter-like graph
fig9       FR vs k on the citation-like graph
fig10      the chain pathology, isolated (G_Max plateau)
fig11      wall-clock seconds to place ten filters (Twitter-like)
tabled     dataset-summary statistics quoted in Section 5's prose
=========  =========================================================

``python -m repro.experiments.runner all`` runs everything and prints the
tables; the benchmarks wrap the same ``run`` functions.
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENT_NAMES, get_experiment

__all__ = ["ExperimentResult", "EXPERIMENT_NAMES", "get_experiment"]
