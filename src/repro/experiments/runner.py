"""Command-line experiment runner.

Usage::

    python -m repro.experiments.runner all            # every figure
    python -m repro.experiments.runner fig7 fig9      # a selection
    python -m repro.experiments.runner all --fast     # CI-sized scales
    python -m repro.experiments.runner fig8 --scale 1.0 --trials 25

``--fast`` shrinks every dataset and trial count so the full suite runs in
well under a minute; without it the defaults match EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENT_NAMES, get_experiment

#: Per-experiment keyword overrides applied by --fast.
FAST_OVERRIDES: dict[str, dict[str, object]] = {
    "fig4": {"scale": 0.1},
    "fig5": {"scale": 0.1, "trials": 3, "ks": (0, 5, 10, 20)},
    "fig6": {"scale": 0.25},
    "fig7": {"scale": 0.25, "trials": 3},
    "fig8": {"scale": 0.02, "trials": 3},
    "fig9": {"scale": 0.05, "trials": 3},
    "fig10": {},
    "fig11": {"scale": 0.02},
    "tabled": {"scale": 0.1},
}


def run_experiments(
    names: Sequence[str],
    *,
    fast: bool = False,
    seed: int = 0,
    scale: float | None = None,
    trials: int | None = None,
    backend: str | None = None,
    strategy: str | None = None,
    model: "object | None" = None,
) -> list[ExperimentResult]:
    """Run the named experiments and return their results in order.

    ``backend`` scopes the propagation backend for the whole run (a name
    from :data:`repro.backends.BACKEND_NAMES`; None keeps the default).
    ``strategy`` scopes the execution strategy the same way (a name from
    :data:`repro.core.registry.STRATEGY_NAMES`): under ``"lazy"`` every
    ``Greedy_All`` evaluation inside the figures runs as CELF on the
    incremental gain engine — identical curves, fewer sweeps.
    ``model`` scopes a probabilistic relaying model
    (:class:`repro.propagation.model.PropagationModel`; None keeps
    deterministic relaying): every model-aware gain evaluation inside
    the figures becomes the seeded sample average over live-edge worlds.
    """
    if model is not None:
        from repro.propagation.model import use_model

        with use_model(model):
            return run_experiments(
                names,
                fast=fast,
                seed=seed,
                scale=scale,
                trials=trials,
                backend=backend,
                strategy=strategy,
            )
    if strategy is not None:
        from repro.core.registry import use_strategy

        with use_strategy(strategy):
            return run_experiments(
                names,
                fast=fast,
                seed=seed,
                scale=scale,
                trials=trials,
                backend=backend,
            )
    if backend is not None:
        from repro.backends.registry import use_backend

        with use_backend(backend):
            return run_experiments(
                names, fast=fast, seed=seed, scale=scale, trials=trials
            )
    results: list[ExperimentResult] = []
    for name in names:
        driver = get_experiment(name)
        kwargs: dict[str, object] = {"seed": seed}
        if fast:
            kwargs.update(FAST_OVERRIDES.get(name, {}))
        if scale is not None:
            kwargs["scale"] = scale
        if trials is not None:
            kwargs["trials"] = trials
        # Drop knobs the driver does not accept (fig10 has no scale, etc.).
        import inspect

        accepted = inspect.signature(driver).parameters
        kwargs = {k: v for k, v in kwargs.items() if k in accepted}
        results.append(driver(**kwargs))
    return results


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner", description=__doc__
    )
    parser.add_argument(
        "names",
        nargs="+",
        help=f"experiment names or 'all' (known: {', '.join(EXPERIMENT_NAMES)})",
    )
    parser.add_argument("--fast", action="store_true", help="CI-sized runs")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--trials", type=int, default=None)
    from repro.backends.registry import BACKEND_NAMES

    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help="propagation backend for every evaluation (default: auto)",
    )
    from repro.core.registry import STRATEGY_NAMES

    parser.add_argument(
        "--strategy",
        choices=STRATEGY_NAMES,
        default=None,
        help="execution strategy for lazy-capable algorithms "
        "(default: exact)",
    )
    from repro.propagation.model import DEFAULT_TRIALS, MODEL_NAMES

    parser.add_argument(
        "--model",
        choices=MODEL_NAMES,
        default="deterministic",
        help="propagation model for every model-aware evaluation "
        "(default: deterministic)",
    )
    parser.add_argument(
        "--edge-prob",
        type=float,
        default=1.0,
        help="uniform edge relay probability for probabilistic models",
    )
    parser.add_argument(
        "--mc-trials",
        type=int,
        default=DEFAULT_TRIALS,
        help="Monte-Carlo worlds per sample-average evaluation "
        "(--trials is the experiments' own repetition knob)",
    )
    args = parser.parse_args(argv)

    from repro.propagation.model import build_model

    model = build_model(
        args.model,
        edge_prob=args.edge_prob,
        trials=args.mc_trials,
        seed=args.seed,
    )
    names = list(EXPERIMENT_NAMES) if "all" in args.names else args.names
    start = time.perf_counter()
    for result in run_experiments(
        names,
        fast=args.fast,
        seed=args.seed,
        scale=args.scale,
        trials=args.trials,
        backend=args.backend,
        strategy=args.strategy,
        model=model,
    ):
        print(result.render())
    print(f"[{time.perf_counter() - start:.1f}s total]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
