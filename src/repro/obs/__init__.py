"""Observability: tracing spans, metrics, and backend instrumentation.

Three zero-dependency modules, one per concern:

* :mod:`repro.obs.trace` — nested spans on monotonic clocks with a
  bounded ring buffer of finished traces; Chrome ``trace_event`` and
  tree-text exports; per-thread request-id context.
* :mod:`repro.obs.metrics` — counters / gauges / log-bucketed
  histograms behind a get-or-create registry; Prometheus text
  exposition via :meth:`~repro.obs.metrics.MetricsRegistry.render`.
* :mod:`repro.obs.instrument` — :class:`InstrumentedBackend`, the
  counting/tracing propagation-backend wrapper shared by the bench
  harness and the service.

Everything is near-zero-cost while tracing is disabled (the default):
:func:`span` is one attribute check returning a shared no-op object.
"""

from repro.obs.instrument import (
    EVALUATION_KINDS,
    INCREMENTAL_KINDS,
    SWEEP_KINDS,
    InstrumentedBackend,
    InstrumentedGainSession,
    incremental_count,
    sweep_count,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    TRACER,
    Span,
    Trace,
    Tracer,
    chrome_trace,
    current_request_id,
    format_trace,
    set_request_id,
    span,
)

__all__ = [
    "EVALUATION_KINDS",
    "INCREMENTAL_KINDS",
    "SWEEP_KINDS",
    "InstrumentedBackend",
    "InstrumentedGainSession",
    "incremental_count",
    "sweep_count",
    "DEFAULT_BUCKETS",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TRACER",
    "Span",
    "Trace",
    "Tracer",
    "chrome_trace",
    "current_request_id",
    "format_trace",
    "set_request_id",
    "span",
]
