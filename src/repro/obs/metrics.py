"""Counters, gauges, and log-bucketed histograms — the stack's one ledger.

A :class:`MetricsRegistry` holds named metric families; every layer of
the stack increments the same process-global :data:`REGISTRY` so one
``GET /metrics`` scrape (or one :meth:`MetricsRegistry.render` call)
shows backend sweeps, CELF heap traffic, sampled-world builds, cache
hits, job states, and graph-store residency side by side.

Zero dependencies and deliberately small:

* **Counters** only go up.  ``inc()`` is the hot-path operation;
  ``set_total()`` exists for the *mirror-at-scrape* pattern, where a
  component already keeps its own monotonic tallies (the placement
  cache's hit/miss counts, the store's registration count) and the
  registry copies them at render time instead of double-counting live.
* **Gauges** go anywhere — residency, queue depths, uptime.
* **Histograms** use fixed log-scale buckets (half-decade steps from
  1 µs to ~31.6 s by default) so latency distributions need no
  per-metric tuning, and render in Prometheus cumulative
  ``_bucket``/``_sum``/``_count`` form.

Families are **get-or-create**: asking for an existing name with the
same type and label names returns the same object, so modules can
declare their metrics at import or call time without coordinating, and
multiple service apps in one process (tests!) share one ledger.  A name
re-used with a different type or label set raises — that is always a
bug.

:meth:`MetricsRegistry.render` emits the Prometheus text exposition
format, version 0.0.4: ``# HELP`` / ``# TYPE`` headers, one
``name{label="value"} value`` sample per line.  Only families with at
least one live sample are emitted — Prometheus treats an unobserved
family as nonexistent, not zero.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any

#: Half-decade log-scale bucket edges: 1e-6 .. 10**1.5 seconds (1 µs to
#: ~31.6 s), the span between "free" and "the request timed out".
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    10.0 ** (e / 2.0) for e in range(-12, 4)
)

_LABEL_ESCAPES = str.maketrans(
    {"\\": "\\\\", '"': '\\"', "\n": "\\n"}
)

_HELP_ESCAPES = str.maketrans({"\\": "\\\\", "\n": "\\n"})


def _format_value(value: float) -> str:
    """A sample value in exposition form (integers without the ``.0``)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _format_labels(names: tuple[str, ...], values: tuple[str, ...]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{str(value).translate(_LABEL_ESCAPES)}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class _Metric:
    """Shared bookkeeping for one metric family (name, help, labels)."""

    kind = "untyped"

    def __init__(
        self, name: str, help_text: str, label_names: tuple[str, ...]
    ) -> None:
        self.name = name
        self.help_text = help_text
        self.label_names = label_names
        self._lock = threading.Lock()

    def _key(self, labels: dict[str, Any]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def header_lines(self) -> list[str]:
        lines = []
        if self.help_text:
            escaped = self.help_text.translate(_HELP_ESCAPES)
            lines.append(f"# HELP {self.name} {escaped}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Counter(_Metric):
    """A monotonically increasing count, optionally labelled."""

    kind = "counter"

    def __init__(
        self, name: str, help_text: str, label_names: tuple[str, ...]
    ) -> None:
        super().__init__(name, help_text, label_names)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        """Add ``amount`` (must be >= 0) to the labelled sample."""
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def set_total(self, value: float, **labels: Any) -> None:
        """Overwrite the labelled sample with an externally-kept total.

        For mirroring components that maintain their own monotonic
        counters (cache hits, store registrations) at scrape time.
        """
        key = self._key(labels)
        with self._lock:
            self._values[key] = value

    def value(self, **labels: Any) -> float:
        """The current labelled sample (0 if never incremented)."""
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0)

    def samples(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            f"{self.name}{_format_labels(self.label_names, key)}"
            f" {_format_value(value)}"
            for key, value in items
        ]


class Gauge(_Metric):
    """A value that can go up and down (residency, depth, uptime)."""

    kind = "gauge"

    def __init__(
        self, name: str, help_text: str, label_names: tuple[str, ...]
    ) -> None:
        super().__init__(name, help_text, label_names)
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = value

    def inc(self, amount: float = 1, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0)

    def samples(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            f"{self.name}{_format_labels(self.label_names, key)}"
            f" {_format_value(value)}"
            for key, value in items
        ]


class Histogram(_Metric):
    """A distribution over fixed buckets (log-scale by default).

    Rendered in Prometheus cumulative form: one ``_bucket{le="..."}``
    sample per edge plus ``le="+Inf"``, then ``_sum`` and ``_count``.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, label_names)
        edges = tuple(sorted(buckets))
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        self.buckets = edges
        # Per label-set: per-edge counts (+1 slot for > last edge),
        # running sum, total count.
        self._counts: dict[tuple[str, ...], list[int]] = {}
        self._sums: dict[tuple[str, ...], float] = {}
        self._totals: dict[tuple[str, ...], int] = {}

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation (``value <= edge`` lands in a bucket)."""
        key = self._key(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = self._counts[key] = [0] * (len(self.buckets) + 1)
            counts[index] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: Any) -> int:
        """Total observations for the labelled sample."""
        key = self._key(labels)
        with self._lock:
            return self._totals.get(key, 0)

    def sum(self, **labels: Any) -> float:
        """Sum of all observed values for the labelled sample."""
        key = self._key(labels)
        with self._lock:
            return self._sums.get(key, 0.0)

    def bucket_counts(self, **labels: Any) -> dict[float, int]:
        """Cumulative per-edge counts (including ``inf``), for tests."""
        key = self._key(labels)
        with self._lock:
            counts = list(self._counts.get(key, []))
        if not counts:
            counts = [0] * (len(self.buckets) + 1)
        cumulative: dict[float, int] = {}
        running = 0
        for edge, n in zip(self.buckets, counts):
            running += n
            cumulative[edge] = running
        cumulative[math.inf] = running + counts[-1]
        return cumulative

    def samples(self) -> list[str]:
        with self._lock:
            keys = sorted(self._counts)
            snapshot = {
                key: (
                    list(self._counts[key]),
                    self._sums.get(key, 0.0),
                    self._totals.get(key, 0),
                )
                for key in keys
            }
        lines: list[str] = []
        bucket_label_names = self.label_names + ("le",)
        for key, (counts, total_sum, total) in snapshot.items():
            running = 0
            for edge, n in zip(self.buckets, counts):
                running += n
                labels = _format_labels(
                    bucket_label_names, key + (_format_value(edge),)
                )
                lines.append(f"{self.name}_bucket{labels} {running}")
            labels = _format_labels(bucket_label_names, key + ("+Inf",))
            lines.append(f"{self.name}_bucket{labels} {total}")
            plain = _format_labels(self.label_names, key)
            lines.append(f"{self.name}_sum{plain} {_format_value(total_sum)}")
            lines.append(f"{self.name}_count{plain} {total}")
        return lines


class MetricsRegistry:
    """A named collection of metric families with get-or-create access."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(
        self,
        cls: type,
        name: str,
        help_text: str,
        labels: tuple[str, ...],
        **kwargs: Any,
    ) -> Any:
        label_names = tuple(labels)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                if existing.label_names != label_names:
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.label_names}, not {label_names}"
                    )
                return existing
            metric = cls(name, help_text, label_names, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help_text: str = "", labels: tuple[str, ...] = ()
    ) -> Counter:
        """Get or create a :class:`Counter` family."""
        return self._get_or_create(Counter, name, help_text, labels)

    def gauge(
        self, name: str, help_text: str = "", labels: tuple[str, ...] = ()
    ) -> Gauge:
        """Get or create a :class:`Gauge` family."""
        return self._get_or_create(Gauge, name, help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] | None = None,
    ) -> Histogram:
        """Get or create a :class:`Histogram` family."""
        return self._get_or_create(
            Histogram,
            name,
            help_text,
            labels,
            buckets=tuple(buckets) if buckets is not None else DEFAULT_BUCKETS,
        )

    def get(self, name: str) -> _Metric | None:
        """The family registered under ``name``, or None."""
        with self._lock:
            return self._metrics.get(name)

    def families(self) -> list[str]:
        """Registered family names, sorted."""
        with self._lock:
            return sorted(self._metrics)

    def render(self) -> str:
        """The Prometheus text exposition (version 0.0.4) of the ledger.

        Families with no live samples are omitted entirely.
        """
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: list[str] = []
        for metric in metrics:
            samples = metric.samples()
            if not samples:
                continue
            lines.extend(metric.header_lines())
            lines.extend(samples)
        return "\n".join(lines) + "\n" if lines else ""

    def reset(self) -> None:
        """Drop every family (tests only — live code never unregisters)."""
        with self._lock:
            self._metrics.clear()


#: The process-global registry every instrumented layer reports to.
REGISTRY = MetricsRegistry()
