"""Backend instrumentation: evaluation counters, spans, and metrics.

Wall-clock alone can't tell *why* an algorithm got faster — fewer sweeps
(lazy evaluation working) and cheaper sweeps (a faster backend) look the
same on a stopwatch.  :class:`InstrumentedBackend` wraps any propagation
backend, forwards every call unchanged, and tallies how many of each
evaluation the algorithm requested.  The bench harness installs it as the
default backend for the timed region and reports the counters next to the
seconds; the service wraps every placement's backend in one so
``GET /metrics`` can attribute work per backend and evaluation kind.

Two cost classes are counted, and the distinction is what the lazy-greedy
numbers hinge on:

* **Full-graph sweeps** (:data:`SWEEP_KINDS`) — every one-shot query
  (``node_receipts``, ``total_receipts``, ``marginal_gains``,
  ``simplified_impacts``) plus ``session_init``, the full ψ/W pass a
  :class:`~repro.backends.base.GainSession` runs at construction.  Each
  touches the whole graph once per source.  :func:`sweep_count` sums
  these; "propagation evaluations" in the acceptance criteria and in
  ``docs/benchmarks.md`` means exactly this sum.
* **Incremental session operations** (:data:`INCREMENTAL_KINDS`) —
  ``session_update`` (one regional re-settle per placed filter) and
  ``session_refresh`` (one O(1) stale-gain read per lazy re-evaluation).
  Strictly cheaper than a sweep; :func:`incremental_count` sums them and
  the bench table reports them in their own column so the two cost
  classes are never conflated.

Cost discipline (``BENCH.json`` timings run through this wrapper):

* The per-call path does exactly what the old bench ``CountingBackend``
  did — one unlocked dict increment — plus a single
  ``TRACER.enabled`` attribute read.  No locks, no metric objects.
* Spans and per-sweep latency histograms are recorded only while the
  tracer is enabled, and only for sweep-class calls (a CELF run issues
  thousands of ``session_refresh`` reads; tracing each would cost more
  than the read).
* Global metrics are **published in bulk**: :meth:`publish` flushes the
  local counter dict into :data:`~repro.obs.metrics.REGISTRY` as
  ``fp_backend_evaluations_total{kind,backend}`` increments.  Callers
  (the service, the bench harness) publish once per run, so the hot
  loop never touches a lock.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable, Mapping
from time import perf_counter
from typing import Hashable

from repro.backends.base import PropagationBackend
from repro.graphs.cgraph import CGraph
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.trace import TRACER

Node = Hashable

#: Full-graph sweep counters: one increment = one whole-graph pass.
#: The ``sketch_*`` kinds are charged by the sketch strategy itself
#: (it bypasses the backend protocol): ``sketch_build`` is the one
#: bottom-k merge pass, ``sketch_gains`` one estimated two-sweep gain
#: evaluation, ``sketch_rescore`` one exact prefix-rescore session.
SWEEP_KINDS: tuple[str, ...] = (
    "node_receipts",
    "total_receipts",
    "marginal_gains",
    "simplified_impacts",
    "session_init",
    "sketch_build",
    "sketch_gains",
    "sketch_rescore",
)

#: Incremental session counters: regional updates and O(1) gain reads.
INCREMENTAL_KINDS: tuple[str, ...] = (
    "session_update",
    "session_refresh",
)

#: Counter keys, one per protocol method / session operation.
EVALUATION_KINDS: tuple[str, ...] = SWEEP_KINDS + INCREMENTAL_KINDS


def sweep_count(counts: Mapping[str, int]) -> int:
    """Full-graph propagation sweeps in an evaluation-counter mapping."""
    return sum(counts.get(kind, 0) for kind in SWEEP_KINDS)


def incremental_count(counts: Mapping[str, int]) -> int:
    """Incremental session operations in an evaluation-counter mapping."""
    return sum(counts.get(kind, 0) for kind in INCREMENTAL_KINDS)


def evaluation_counter(registry: MetricsRegistry = REGISTRY):
    """The ``fp_backend_evaluations_total`` family in ``registry``."""
    return registry.counter(
        "fp_backend_evaluations_total",
        "Propagation evaluations forwarded by instrumented backends.",
        labels=("kind", "backend"),
    )


def evaluation_histogram(registry: MetricsRegistry = REGISTRY):
    """The ``fp_backend_evaluation_seconds`` family in ``registry``."""
    return registry.histogram(
        "fp_backend_evaluation_seconds",
        "Latency of sweep-class backend evaluations (traced runs only).",
        labels=("kind", "backend"),
    )


class InstrumentedBackend:
    """A pass-through :class:`PropagationBackend` that counts and traces.

    Keeps a local ``counts`` dict (the old bench ``CountingBackend``
    ledger, unchanged semantics), emits a span and a latency-histogram
    observation per sweep while the tracer is enabled, and flushes the
    ledger to the global metrics registry on :meth:`publish`.
    """

    def __init__(self, inner: PropagationBackend) -> None:
        self.inner = inner
        self.name = f"counting({inner.name})"
        self.counts: dict[str, int] = dict.fromkeys(EVALUATION_KINDS, 0)
        self._published: dict[str, int] = dict.fromkeys(EVALUATION_KINDS, 0)

    def reset(self) -> None:
        """Zero all counters (the harness resets between repeats)."""
        self.counts = dict.fromkeys(EVALUATION_KINDS, 0)
        self._published = dict.fromkeys(EVALUATION_KINDS, 0)

    def total_evaluations(self) -> int:
        """All evaluations of any kind, summed."""
        return sum(self.counts.values())

    def sweep_evaluations(self) -> int:
        """Full-graph sweeps only — the lazy-vs-eager headline number."""
        return sweep_count(self.counts)

    def incremental_evaluations(self) -> int:
        """Incremental session operations only."""
        return incremental_count(self.counts)

    def publish(self, registry: MetricsRegistry = REGISTRY) -> None:
        """Flush counts gathered since the last publish into ``registry``.

        Bulk, idempotent-per-delta: only the increments since the last
        :meth:`publish` (or :meth:`reset`) are added, so callers may
        publish as often as they like without double counting.
        """
        counter = evaluation_counter(registry)
        backend = self.inner.name
        for kind in EVALUATION_KINDS:
            delta = self.counts[kind] - self._published[kind]
            if delta:
                counter.inc(delta, kind=kind, backend=backend)
                self._published[kind] = self.counts[kind]

    # -- internal: the counted-and-maybe-traced sweep forwarder -----------

    def _sweep(self, kind: str, method, *args, **kwargs):
        self.counts[kind] += 1
        if not TRACER.enabled:
            return method(*args, **kwargs)
        backend = self.inner.name
        start = perf_counter()
        with TRACER.span(f"backend.{kind}", backend=backend):
            result = method(*args, **kwargs)
        evaluation_histogram().observe(
            perf_counter() - start, kind=kind, backend=backend
        )
        return result

    # -- PropagationBackend ------------------------------------------------

    def node_receipts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        items_per_source: int | Mapping[Node, int] = 1,
    ) -> dict[Node, int]:
        """Forward ``node_receipts`` (``Σ_s ψ_s``), counting one sweep."""
        return self._sweep(
            "node_receipts",
            self.inner.node_receipts,
            graph,
            filters,
            items_per_source=items_per_source,
        )

    def total_receipts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        items_per_source: int | Mapping[Node, int] = 1,
    ) -> int:
        """Forward ``total_receipts`` (``Φ(A, V)``), counting one sweep."""
        return self._sweep(
            "total_receipts",
            self.inner.total_receipts,
            graph,
            filters,
            items_per_source=items_per_source,
        )

    def marginal_gains(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
    ) -> dict[Node, int]:
        """Forward ``marginal_gains`` (``I(v | A)``), counting one sweep."""
        return self._sweep(
            "marginal_gains", self.inner.marginal_gains, graph, filters
        )

    def marginal_gains_ids(
        self,
        graph: CGraph,
        filter_ids: Iterable[int] = (),
    ):
        """Forward the id fast path — the same whole-graph sweep, so it
        lands on the same ``marginal_gains`` counter."""
        return self._sweep(
            "marginal_gains", self.inner.marginal_gains_ids, graph, filter_ids
        )

    def simplified_impacts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
    ) -> dict[Node, int]:
        """Forward ``simplified_impacts`` (``I'(v)``), counting one sweep."""
        return self._sweep(
            "simplified_impacts",
            self.inner.simplified_impacts,
            graph,
            filters,
        )

    def simplified_impacts_ids(
        self,
        graph: CGraph,
        filter_ids: Iterable[int] = (),
    ):
        """Forward the id fast path, counted as ``simplified_impacts``."""
        return self._sweep(
            "simplified_impacts",
            self.inner.simplified_impacts_ids,
            graph,
            filter_ids,
        )

    def gain_session(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
    ) -> "InstrumentedGainSession":
        """Open a counted incremental session (``session_init`` sweep)."""
        # Construction runs the session's one full ψ/W sweep.
        inner = self._sweep(
            "session_init", self.inner.gain_session, graph, filters
        )
        return InstrumentedGainSession(inner, self.counts)

    # -- propagation-model axis -------------------------------------------
    # Sampled evaluations batch the model's worlds into one call; each
    # call is one (T-fold) whole-graph pass, so it lands on the same
    # counter as its deterministic counterpart — the sweep/incremental
    # split stays comparable across the model axis.

    def sampled_marginal_gains_ids(
        self,
        graph: CGraph,
        filter_ids: Iterable[Node] = (),
        *,
        model=None,
    ):
        """Forward the sampled gains batch, counted as ``marginal_gains``."""
        return self._sweep(
            "marginal_gains",
            self.inner.sampled_marginal_gains_ids,
            graph,
            filter_ids,
            model=model,
        )

    def sampled_simplified_impacts_ids(
        self,
        graph: CGraph,
        filter_ids: Iterable[Node] = (),
        *,
        model=None,
    ):
        """Forward the sampled ``I'`` batch, counted as ``simplified_impacts``."""
        return self._sweep(
            "simplified_impacts",
            self.inner.sampled_simplified_impacts_ids,
            graph,
            filter_ids,
            model=model,
        )

    def sampled_total_receipts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        model=None,
    ) -> int:
        """Forward the sampled ``Φ`` batch, counted as ``total_receipts``."""
        return self._sweep(
            "total_receipts",
            self.inner.sampled_total_receipts,
            graph,
            filters,
            model=model,
        )

    def expected_total_receipts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        model=None,
    ) -> float:
        """Forward the SAA ``Φ`` estimate, counted as ``total_receipts``."""
        return self._sweep(
            "total_receipts",
            self.inner.expected_total_receipts,
            graph,
            filters,
            model=model,
        )

    def expected_marginal_gains(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        model=None,
    ):
        """Forward the SAA gain estimate, counted as ``marginal_gains``."""
        return self._sweep(
            "marginal_gains",
            self.inner.expected_marginal_gains,
            graph,
            filters,
            model=model,
        )

    def sampled_gain_session(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        model=None,
    ) -> "InstrumentedGainSession":
        """Open a counted SAA session (``session_init`` batched sweep)."""
        inner = self._sweep(
            "session_init",
            self.inner.sampled_gain_session,
            graph,
            filters,
            model=model,
        )
        return InstrumentedGainSession(inner, self.counts)

    def warm(self, graph: CGraph) -> None:
        """Forward warm-up uncounted — preprocessing, not an evaluation."""
        self.inner.warm(graph)


class InstrumentedGainSession:
    """A pass-through :class:`~repro.backends.base.GainSession` that counts.

    Shares its counter dict with the :class:`InstrumentedBackend` that
    opened it, so a whole placement run lands in one ledger.  The
    incremental operations are the optimizer's innermost loop, so they
    stay span-free even under tracing — one dict increment each.
    """

    def __init__(self, inner, counts: dict[str, int]) -> None:
        self.inner = inner
        self.backend_name = inner.backend_name
        self.counts = counts

    @property
    def filters(self):
        return self.inner.filters

    @property
    def nodes_touched(self) -> int:
        return self.inner.nodes_touched

    def gains(self):
        """All current ``I(v | A)`` from the wrapped session, uncounted."""
        # Reading the maintained state back is a copy, not a sweep: the
        # propagation work was already charged to session_init/update.
        return self.inner.gains()

    def gain(self, node):
        """One lazy gain read, counted as ``session_refresh``."""
        self.counts["session_refresh"] += 1
        return self.inner.gain(node)

    def add_filter(self, node):
        """One regional re-settle, counted as ``session_update``."""
        self.counts["session_update"] += 1
        return self.inner.add_filter(node)

    def gains_ids(self):
        """Id-indexed gains from the wrapped session, uncounted (a copy)."""
        return self.inner.gains_ids()

    def gain_id(self, node_id):
        """One lazy id gain read, counted as ``session_refresh``."""
        self.counts["session_refresh"] += 1
        return self.inner.gain_id(node_id)

    def add_filter_id(self, node_id):
        """One regional id re-settle, counted as ``session_update``."""
        self.counts["session_update"] += 1
        return self.inner.add_filter_id(node_id)
