"""Nested-span tracing on monotonic clocks — the stack's one stopwatch.

A *span* is one timed region with a name, optional attributes, and
children; a *trace* is a tree of spans under one ``trace_id``.  The
global :data:`TRACER` collects finished traces in a bounded in-memory
ring buffer, addressable by id — the service keys job traces by job id
so ``GET /traces/{job_id}`` can serve the solve's span tree after the
fact, and the CLI's ``--trace`` flag prints the tree of the run it just
timed.

Design constraints, in priority order:

* **Near-zero cost when disabled.**  Tracing is off by default; the
  module-level :func:`span` helper checks one attribute and returns a
  shared no-op context manager, so an instrumented call site costs a
  function call and an attribute read — it must never move a BENCH
  number or perturb deterministic results.
* **Monotonic clocks.**  Durations come from ``time.perf_counter``;
  wall-clock (``time.time``) is recorded once per trace purely for
  display, never for arithmetic.
* **Thread-local context.**  The active span stack lives in a
  ``threading.local`` — concurrent service requests and worker threads
  trace independently and never interleave each other's trees.  A trace
  opened in one thread does not leak into another; cross-thread
  correlation travels by *id* (the job id, the request id), not by
  shared mutable context.

Two export shapes per trace: a human-readable tree (:func:`format_trace`)
and Chrome ``trace_event`` JSON (:func:`chrome_trace`) loadable in
``chrome://tracing`` / Perfetto.

The module also owns the per-thread **request-id context**
(:func:`set_request_id` / :func:`current_request_id`): the HTTP layer
binds the ``X-Request-Id`` of the request being served, and everything
downstream — access logs, job records, trace attributes — reads it back
without plumbing an argument through every signature.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from typing import Any

#: Finished traces retained in the ring buffer (oldest evicted first).
DEFAULT_MAX_TRACES = 256


class Span:
    """One timed region: name, offsets, attributes, children."""

    __slots__ = (
        "name",
        "attrs",
        "children",
        "start_offset",
        "duration",
        "thread_id",
        "_start",
    )

    def __init__(self, name: str, attrs: dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.start_offset = 0.0  # seconds since trace start
        self.duration = 0.0
        self.thread_id = threading.get_ident()
        self._start = 0.0  # perf_counter at entry

    def set(self, key: str, value: Any) -> None:
        """Attach an attribute to the span (e.g. a counter total)."""
        self.attrs[key] = value

    def to_dict(self) -> dict[str, Any]:
        """The span subtree as JSON-compatible nested dicts."""
        doc: dict[str, Any] = {
            "name": self.name,
            "start_offset_seconds": round(self.start_offset, 9),
            "duration_seconds": round(self.duration, 9),
        }
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        if self.children:
            doc["children"] = [c.to_dict() for c in self.children]
        return doc


class Trace:
    """A finished (or in-flight) tree of spans under one id."""

    __slots__ = (
        "trace_id",
        "attrs",
        "roots",
        "started_unix",
        "duration",
        "_start",
        "implicit",
    )

    def __init__(
        self,
        trace_id: str,
        attrs: dict[str, Any],
        *,
        implicit: bool = False,
    ) -> None:
        self.trace_id = trace_id
        self.attrs = attrs
        self.roots: list[Span] = []
        self.started_unix = time.time()
        self.duration = 0.0
        self._start = time.perf_counter()
        # Implicit traces are opened by a root-level span() with no
        # surrounding trace() and finalized when that span exits.
        self.implicit = implicit

    def to_dict(self) -> dict[str, Any]:
        """The whole trace as a JSON-compatible dict (the /traces shape)."""
        doc: dict[str, Any] = {
            "trace_id": self.trace_id,
            "started_unix": round(self.started_unix, 6),
            "duration_seconds": round(self.duration, 9),
            "spans": [root.to_dict() for root in self.roots],
        }
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        return doc


class _SpanContext:
    """Context manager entering one live span on the current thread."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc_info: Any) -> None:
        self._tracer._pop(self._span)


class _NoopSpan:
    """The shared disabled-path span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def set(self, key: str, value: Any) -> None:
        return None


_NOOP = _NoopSpan()

_trace_counter = itertools.count(1)


class _TraceContext:
    """Context manager opening an explicit trace on the current thread."""

    __slots__ = ("_tracer", "_trace_id", "_attrs", "_trace", "_prev")

    def __init__(
        self, tracer: "Tracer", trace_id: str | None, attrs: dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self._trace_id = trace_id
        self._attrs = attrs
        self._trace: Trace | None = None
        self._prev: tuple[Trace | None, list[Span]] | None = None

    def __enter__(self) -> Trace:
        state = self._tracer._state()
        self._prev = (state.trace, state.stack)
        trace_id = self._trace_id or f"trace-{next(_trace_counter):06d}"
        self._trace = Trace(trace_id, self._attrs)
        state.trace = self._trace
        state.stack = []
        return self._trace

    def __exit__(self, *exc_info: Any) -> None:
        assert self._trace is not None and self._prev is not None
        state = self._tracer._state()
        self._trace.duration = time.perf_counter() - self._trace._start
        state.trace, state.stack = self._prev
        self._tracer._store(self._trace)


class _ThreadState(threading.local):
    """Per-thread tracing context: the open trace and its span stack."""

    def __init__(self) -> None:
        self.trace: Trace | None = None
        self.stack: list[Span] = []


class Tracer:
    """Span collector with a bounded ring buffer of finished traces.

    Disabled by default: :meth:`enable` turns span collection on
    globally (the CLI's ``--trace``/``--profile`` flags and the service
    do this).  All public reads are safe whether or not tracing is
    enabled.
    """

    def __init__(self, *, max_traces: int = DEFAULT_MAX_TRACES) -> None:
        self.enabled = False
        self.max_traces = max_traces
        self._local = _ThreadState()
        self._lock = threading.Lock()
        self._finished: OrderedDict[str, Trace] = OrderedDict()

    # -- control -------------------------------------------------------

    def enable(self) -> None:
        """Start collecting spans (idempotent)."""
        self.enabled = True

    def disable(self) -> None:
        """Stop collecting spans; already-finished traces remain readable."""
        self.enabled = False

    def clear(self) -> None:
        """Drop every finished trace (tests and long-lived services)."""
        with self._lock:
            self._finished.clear()

    # -- span / trace entry points -------------------------------------

    def span(self, name: str, **attrs: Any) -> "_SpanContext | _NoopSpan":
        """A context manager timing one region under the current trace.

        With tracing disabled this returns the shared no-op span.  With
        no surrounding :meth:`trace`, the span opens an *implicit* trace
        that is finalized (and stored) when this root span exits.
        """
        if not self.enabled:
            return _NOOP
        return _SpanContext(self, Span(name, attrs))

    def trace(
        self, trace_id: str | None = None, **attrs: Any
    ) -> "_TraceContext | _NoopSpan":
        """A context manager grouping spans under one stored trace."""
        if not self.enabled:
            return _NOOP
        return _TraceContext(self, trace_id, attrs)

    # -- reads ---------------------------------------------------------

    def get(self, trace_id: str) -> Trace | None:
        """The finished trace stored under ``trace_id``, or None."""
        with self._lock:
            return self._finished.get(trace_id)

    def last(self) -> Trace | None:
        """The most recently finished trace, or None."""
        with self._lock:
            if not self._finished:
                return None
            return next(reversed(self._finished.values()))

    def traces(self) -> list[Trace]:
        """All retained traces, oldest first."""
        with self._lock:
            return list(self._finished.values())

    # -- internals -----------------------------------------------------

    def _state(self) -> _ThreadState:
        return self._local

    def _push(self, span: Span) -> None:
        state = self._state()
        if state.trace is None:
            # Root-level span with no explicit trace: open an implicit
            # one so CLI runs need no trace() bookkeeping of their own.
            state.trace = Trace(
                f"trace-{next(_trace_counter):06d}", {}, implicit=True
            )
            state.stack = []
        span._start = time.perf_counter()
        span.start_offset = span._start - state.trace._start
        if state.stack:
            state.stack[-1].children.append(span)
        else:
            state.trace.roots.append(span)
        state.stack.append(span)

    def _pop(self, span: Span) -> None:
        span.duration = time.perf_counter() - span._start
        state = self._state()
        # Tolerate mismatched exits (an exception unwinding through
        # several spans): pop down to and including this span.
        while state.stack:
            top = state.stack.pop()
            if top is span:
                break
        if not state.stack and state.trace is not None and state.trace.implicit:
            trace = state.trace
            trace.duration = time.perf_counter() - trace._start
            state.trace = None
            self._store(trace)

    def _store(self, trace: Trace) -> None:
        with self._lock:
            self._finished[trace.trace_id] = trace
            self._finished.move_to_end(trace.trace_id)
            while len(self._finished) > self.max_traces:
                self._finished.popitem(last=False)


#: The process-global tracer every instrumented layer reports to.
TRACER = Tracer()


def span(name: str, **attrs: Any) -> "_SpanContext | _NoopSpan":
    """``TRACER.span`` with the module-level fast path.

    The one call sites should use: a single attribute check when tracing
    is disabled, so instrumentation can sit on warm paths without
    showing up in benchmarks.
    """
    tracer = TRACER
    if not tracer.enabled:
        return _NOOP
    return _SpanContext(tracer, Span(name, attrs))


# ----------------------------------------------------------------------
# Request-id context
# ----------------------------------------------------------------------

_request_local = threading.local()


def set_request_id(request_id: str | None) -> None:
    """Bind (or with None, clear) the current thread's request id."""
    _request_local.request_id = request_id


def current_request_id() -> str | None:
    """The request id bound to this thread, or None outside a request."""
    return getattr(_request_local, "request_id", None)


# ----------------------------------------------------------------------
# Exports
# ----------------------------------------------------------------------


def format_trace(trace: Trace) -> str:
    """The trace as a human-readable tree with millisecond durations."""
    lines = [f"trace {trace.trace_id}  ({trace.duration * 1e3:.2f} ms)"]
    for key, value in sorted(trace.attrs.items()):
        lines.append(f"  {key}: {value}")

    def walk(span: Span, prefix: str, is_last: bool) -> None:
        branch = "└─" if is_last else "├─"
        attrs = ""
        if span.attrs:
            attrs = "  " + " ".join(
                f"{k}={v}" for k, v in sorted(span.attrs.items())
            )
        lines.append(
            f"{prefix}{branch} {span.name:<24} "
            f"{span.duration * 1e3:10.3f} ms{attrs}"
        )
        child_prefix = prefix + ("   " if is_last else "│  ")
        for i, child in enumerate(span.children):
            walk(child, child_prefix, i == len(span.children) - 1)

    for i, root in enumerate(trace.roots):
        walk(root, "", i == len(trace.roots) - 1)
    return "\n".join(lines)


def chrome_trace(trace: Trace) -> dict[str, Any]:
    """The trace in Chrome ``trace_event`` JSON (complete ``"X"`` events).

    Load the dumped JSON in ``chrome://tracing`` or Perfetto;
    timestamps are microseconds relative to the trace start.
    """
    events: list[dict[str, Any]] = []

    def walk(span: Span) -> None:
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": round(span.start_offset * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": 1,
                "tid": span.thread_id,
                "args": dict(span.attrs),
            }
        )
        for child in span.children:
            walk(child)

    for root in trace.roots:
        walk(root)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "trace_id": trace.trace_id,
            "started_unix": trace.started_unix,
            **trace.attrs,
        },
    }
