"""Deterministic 64-bit mixing for the sketch and large-scale layers.

Everything downstream of these functions — sketch registers, estimator
outputs, the streamed random-DAG generators — must be byte-reproducible
per seed on every platform and with or without NumPy, so the only
randomness primitive allowed here is a fixed-width integer mix with no
platform- or library-dependent state.  We use the splitmix64 finalizer
(Steele, Lea & Flood's SplittableRandom mix; also xorshift's recommended
seeder): two xor-shift-multiply rounds, full 64-bit avalanche, four
arithmetic ops — cheap enough for the pure-python streaming generators
and trivially vectorizable for the NumPy lane paths.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1
#: The splitmix64 sequence increment (the golden ratio in 0.64 fixed point).
GOLDEN_GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def splitmix64(x: int) -> int:
    """The splitmix64 finalizer of ``x`` (a pure 64-bit mix).

    A bijection on 64-bit words with full avalanche, so distinct inputs
    never collide and every output bit is uniform.  Callers derive keyed
    streams as ``splitmix64(seed * GOLDEN_GAMMA + index)`` style
    combinations.
    """
    x = (x + GOLDEN_GAMMA) & _MASK64
    x = ((x ^ (x >> 30)) * _MIX1) & _MASK64
    x = ((x ^ (x >> 27)) * _MIX2) & _MASK64
    return x ^ (x >> 31)


def hash_stream(seed: int, key: int) -> int:
    """A keyed 64-bit hash: the head of stream ``key`` under ``seed``.

    ``splitmix64`` applied to a seed/key combination that keeps distinct
    seeds' streams disjoint in practice (the multiply decorrelates seeds
    that differ in low bits).
    """
    return splitmix64(((seed & _MASK64) * _MIX1 + key) & _MASK64)


def source_hashes(seed: int, source_ids, numpy_module=None):
    """Per-source register values for the bottom-k sketches.

    One 64-bit hash per designated source, keyed by the source's interned
    id so the values are independent of source *order*.  The all-ones
    word is reserved as the empty-register sentinel and remapped (the
    estimator treats register values as draws from ``[0, 2^64 - 1)``).

    Returns a list of ints, or a ``uint64`` ndarray when ``numpy_module``
    is passed — both containing bit-identical values, which is what makes
    the two merge paths byte-reproducible against each other.
    """
    sentinel = _MASK64
    if numpy_module is not None:
        np = numpy_module
        x = np.asarray(source_ids, dtype=np.uint64)
        with np.errstate(over="ignore"):
            x = (np.uint64(seed & _MASK64) * np.uint64(_MIX1)) + x
            x = x + np.uint64(GOLDEN_GAMMA)
            x = (x ^ (x >> np.uint64(30))) * np.uint64(_MIX1)
            x = (x ^ (x >> np.uint64(27))) * np.uint64(_MIX2)
            x = x ^ (x >> np.uint64(31))
        x[x == np.uint64(sentinel)] = np.uint64(0)
        return x
    values = []
    for s in source_ids:
        h = hash_stream(seed, int(s))
        values.append(0 if h == sentinel else h)
    return values
