"""Bottom-k reachability sketches over the shared compiled CSR.

The exact aggregate tier answers "how many sources reach ``v``"
(``nreach``) from bit-packed reachability masks — ``Θ(n · S / 64)`` words
of state and one OR per edge per 64 sources, which is what caps the exact
machinery near the dense ``(sources, nodes)`` matrix scale.  This module
replaces the masks with **bottom-k sketches**: every node keeps the ``k``
smallest 64-bit hashes among the sources that reach it, merged in one
topological pass over the same CSR the exact sweeps use::

    R(v) = bottom_k( own(v) ∪ ⋃_{p ∈ pred(v)} R(p) )

where ``own(v)`` is ``v``'s source hash when ``v`` is a designated source
(mirroring the own-lane bit of :func:`repro.graphs.compiled.
packed_reach_masks`, so the estimator subtracts the same source mark the
exact popcount does).  State is ``Θ(n · k)`` words and the merge work is
``Θ((n + m) · k log k)`` — independent of the source count.

Estimation is the classic KMV / bottom-k estimator: with fewer than ``k``
distinct hashes the register file *is* the reach set and the count is
exact; with the registers full, the ``k``-th smallest normalized hash
``U_(k)`` gives the unbiased estimate ``(k - 1) / U_(k)`` whose relative
standard error is ``1 / sqrt(k - 2)`` (Beyer et al., SIGMOD'07).
:func:`epsilon_for_k` exposes the two-sigma ``(1 ± ε)`` bound the CLI and
docs quote; :func:`k_for_epsilon` inverts it.

Two merge paths produce **bit-identical registers**: a NumPy lane-merge
fast path (per-level ragged gather + lexsort + segment dedup) and a pure
python fallback (sorted-set merge per node), so sketches are
byte-reproducible per ``(graph, k, seed)`` in every environment — the
no-numpy CI job holds the two to equality via
:meth:`ReachSketches.register_bytes`.
"""

from __future__ import annotations

import math
import struct
import sys
from typing import TYPE_CHECKING

from repro.exceptions import ParameterError
from repro.sketches.hashing import source_hashes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graphs.compiled import CompiledGraph

try:  # The lane-merge fast path; the module never requires it.
    import numpy as _np
except Exception:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

#: Reserved empty-register word (hash values are remapped away from it).
EMPTY_REGISTER = (1 << 64) - 1

#: Default register count: exact on every graph with ≤ 64 sources (all
#: built-in datasets and the fuzz corpus) and a ±25% two-sigma estimator
#: beyond, while keeping sketch state at one legacy reach-mask lane.
DEFAULT_SKETCH_K = 64

_TWO64 = float(1 << 64)


def epsilon_for_k(k: int) -> float:
    """The two-sigma relative error bound ``ε = 2 / sqrt(k - 2)``.

    The KMV estimator's relative standard error is ``1 / sqrt(k - 2)``;
    doubling it gives the ~95% ``(1 ± ε)`` band quoted to users.  For
    ``k ≤ 3`` the bound is vacuous (returned as 2.0).
    """
    if k <= 3:
        return 2.0
    return 2.0 / math.sqrt(k - 2)


def k_for_epsilon(epsilon: float) -> int:
    """The smallest register count whose :func:`epsilon_for_k` ≤ ε."""
    if not 0.0 < epsilon:
        raise ParameterError(f"epsilon must be positive, got {epsilon!r}")
    if epsilon >= 2.0:
        return 4
    return max(4, math.ceil(4.0 / (epsilon * epsilon)) + 2)


class ReachSketches:
    """Bottom-k source-reachability registers for one compiled graph.

    ``registers`` is backend-shaped: an ``(n, k)`` ``uint64`` ndarray on
    the NumPy path, or a list of ascending int tuples (≤ ``k`` entries,
    sentinel-free) on the pure-python path.  All consumers go through
    the accessors, which hide the representation.
    """

    __slots__ = ("k", "seed", "n", "registers", "_backend", "_source_mark")

    def __init__(self, k, seed, n, registers, backend, source_mark):
        self.k = k
        self.seed = seed
        self.n = n
        self.registers = registers
        self._backend = backend
        self._source_mark = source_mark

    @property
    def backend(self) -> str:
        """Which merge path built the registers: ``numpy`` or ``python``."""
        return self._backend

    def register_row(self, node_id: int) -> tuple[int, ...]:
        """The node's registers as an ascending, sentinel-free int tuple."""
        if self._backend == "numpy":
            row = self.registers[node_id]
            return tuple(int(x) for x in row[row != _np.uint64(EMPTY_REGISTER)])
        return self.registers[node_id]

    def register_bytes(self) -> bytes:
        """All registers as canonical little-endian bytes (``n × k`` words,
        sentinel-padded) — the byte-reproducibility surface the tests and
        the fuzz harness compare across merge paths and runs."""
        if self._backend == "numpy":
            if sys.byteorder == "little":
                return self.registers.tobytes()
            return self.registers.byteswap().tobytes()  # pragma: no cover
        out = bytearray()
        pad = (EMPTY_REGISTER,) * self.k
        for row in self.registers:
            padded = row + pad[: self.k - len(row)]
            out += struct.pack(f"<{self.k}Q", *padded)
        return bytes(out)

    def estimate_row(self, row: tuple[int, ...]) -> float:
        """KMV estimate of the distinct count behind one register tuple."""
        filled = len(row)
        if filled < self.k:
            return float(filled)
        # Round the register to float *before* the +1, exactly as the
        # vectorized path does — keeps both paths bit-identical.
        return (self.k - 1) * _TWO64 / (float(row[self.k - 1]) + 1.0)

    def estimate(self, node_id: int) -> float:
        """Estimated ``nreach(node_id)`` (own source mark subtracted,
        mirroring the exact popcount decomposition)."""
        return max(
            0.0,
            self.estimate_row(self.register_row(node_id))
            - self._source_mark[node_id],
        )

    def counts(self) -> list[float]:
        """Estimated ``nreach`` for every node — the sketch analog of
        :meth:`repro.graphs.compiled.CompiledGraph.reach_counts`."""
        mark = self._source_mark
        if self._backend == "numpy":
            np = _np
            regs = self.registers
            sentinel = np.uint64(EMPTY_REGISTER)
            filled = (regs != sentinel).sum(axis=1)
            est = filled.astype(np.float64)
            full = filled == self.k
            if full.any():
                kth = regs[full, self.k - 1].astype(np.float64) + 1.0
                est[full] = (self.k - 1) * _TWO64 / kth
            est -= np.frombuffer(bytes(mark), dtype=np.uint8).astype(
                np.float64
            )[: self.n]
            return [float(x) if x > 0.0 else 0.0 for x in est]
        return [
            max(0.0, self.estimate_row(row) - mark[v])
            for v, row in enumerate(self.registers)
        ]

    def is_exact(self) -> bool:
        """True when no register file overflowed — every estimate is then
        the exact reach count (the graceful-degradation regime)."""
        if self._backend == "numpy":
            np = _np
            return bool(
                (self.registers[:, self.k - 1] == np.uint64(EMPTY_REGISTER))
                .all()
            )
        return all(len(row) < self.k for row in self.registers)

    def nbytes(self) -> int:
        """Register-file memory, in bytes."""
        if self._backend == "numpy":
            return int(self.registers.nbytes)
        return sys.getsizeof(self.registers) + sum(
            sys.getsizeof(row) for row in self.registers
        )


def _build_python(compiled: "CompiledGraph", k: int, seed: int):
    """Pure-python merge: sorted-set bottom-k per node in topo order."""
    hashes = source_hashes(seed, compiled.source_ids)
    own: dict[int, int] = {
        s: h for s, h in zip(compiled.source_ids, hashes)
    }
    pred = compiled.pred_ids
    registers: list[tuple[int, ...]] = [()] * compiled.n
    for v in compiled.topo_order:
        parents = pred[v]
        own_hash = own.get(v)
        if not parents:
            registers[v] = () if own_hash is None else (own_hash,)
            continue
        if len(parents) == 1 and own_hash is None:
            registers[v] = registers[parents[0]]
            continue
        merged: set[int] = set()
        for p in parents:
            merged.update(registers[p])
        if own_hash is not None:
            merged.add(own_hash)
        if len(merged) > k:
            registers[v] = tuple(sorted(merged)[:k])
        else:
            registers[v] = tuple(sorted(merged))
    return registers


def _build_numpy(compiled: "CompiledGraph", k: int, seed: int):
    """NumPy lane merge: one ragged gather + lexsort + dedup per level."""
    np = _np
    n = compiled.n
    sentinel = np.uint64(EMPTY_REGISTER)
    registers = np.full((n, k), sentinel, dtype=np.uint64)

    own_hash = np.zeros(n, dtype=np.uint64)
    is_source = np.zeros(n, dtype=bool)
    src_ids = np.asarray(compiled.source_ids, dtype=np.int64)
    if len(src_ids):
        own_hash[src_ids] = source_hashes(seed, src_ids, numpy_module=np)
        is_source[src_ids] = True

    in_offsets = np.asarray(compiled.in_offsets, dtype=np.int64)
    in_sources = np.asarray(compiled.in_sources, dtype=np.int64)
    in_degree = in_offsets[1:] - in_offsets[:-1]
    topo = np.asarray(compiled.topo_order, dtype=np.int64)
    level_offsets = compiled.level_offsets

    for level in range(compiled.num_levels):
        vs = topo[level_offsets[level]:level_offsets[level + 1]]
        lens = in_degree[vs]
        total = int(lens.sum())
        if total:
            seg = np.repeat(np.arange(len(vs), dtype=np.int64), lens)
            # Ragged gather: flat positions of every predecessor slot.
            ends = np.cumsum(lens)
            pos = (
                np.arange(total, dtype=np.int64)
                - np.repeat(ends - lens, lens)
                + np.repeat(in_offsets[vs], lens)
            )
            preds = in_sources[pos]
            values = registers[preds].reshape(-1)
            segs = np.repeat(seg, k)
        else:
            values = np.empty(0, dtype=np.uint64)
            segs = np.empty(0, dtype=np.int64)
        src_local = np.nonzero(is_source[vs])[0]
        if len(src_local):
            values = np.concatenate([values, own_hash[vs[src_local]]])
            segs = np.concatenate([segs, src_local])
        if not len(values):
            continue
        order = np.lexsort((values, segs))
        values = values[order]
        segs = segs[order]
        keep = np.ones(len(values), dtype=bool)
        keep[1:] = (values[1:] != values[:-1]) | (segs[1:] != segs[:-1])
        keep &= values != sentinel
        values = values[keep]
        segs = segs[keep]
        if not len(values):
            continue
        counts = np.bincount(segs, minlength=len(vs))
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        rank = np.arange(len(values), dtype=np.int64) - starts[segs]
        keep = rank < k
        registers[vs[segs[keep]], rank[keep]] = values[keep]
    return registers


def build_reach_sketches(
    compiled: "CompiledGraph",
    *,
    k: int = DEFAULT_SKETCH_K,
    seed: int = 0,
    lanes: str | None = None,
) -> ReachSketches:
    """Build the bottom-k reachability sketches for one compiled DAG.

    ``lanes`` pins the merge implementation (``"numpy"`` / ``"python"``;
    None auto-selects NumPy when importable).  Both produce bit-identical
    registers; the knob exists for the differential tests.

    Emits a ``sketch.build`` span and bumps ``fp_sketch_builds_total``.
    """
    from repro.obs.metrics import REGISTRY
    from repro.obs.trace import span

    if not isinstance(k, int) or k < 4:
        raise ParameterError(f"sketch k must be an int >= 4, got {k!r}")
    if lanes is None:
        lanes = "numpy" if _np is not None else "python"
    if lanes not in ("numpy", "python"):
        raise ParameterError(f"unknown sketch lanes {lanes!r}")
    if lanes == "numpy" and _np is None:
        raise ParameterError("numpy sketch lanes requested but numpy is "
                             "not importable")
    compiled.topo_order  # raises CyclicGraphError early on non-DAGs
    with span(
        "sketch.build", nodes=compiled.n, k=k, seed=seed, lanes=lanes
    ):
        if lanes == "numpy":
            registers = _build_numpy(compiled, k, seed)
        else:
            registers = _build_python(compiled, k, seed)
    REGISTRY.counter(
        "fp_sketch_builds_total",
        "Bottom-k reachability sketch builds.",
        labels=("lanes",),
    ).inc(1, lanes=lanes)
    return ReachSketches(
        k, seed, compiled.n, registers, lanes, compiled.source_mark()
    )
