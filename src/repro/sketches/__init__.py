"""Bottom-k reachability sketches and the ``sketch`` placement strategy.

The approximate-impact tier for graphs beyond the exact machinery's
matrix scale: :mod:`~repro.sketches.bottomk` builds per-node bottom-k
source-reachability sketches in one topological merge pass,
:mod:`~repro.sketches.gains` turns their cardinality estimates into
float marginal-gain sweeps over the shared CSR, and
:mod:`~repro.sketches.celf` runs ``Greedy_All`` on the estimates with an
exact rescore of the winning prefix.  Wired in as
``get_algorithm(..., strategy="sketch")``.
"""

from repro.sketches.bottomk import (
    DEFAULT_SKETCH_K,
    EMPTY_REGISTER,
    ReachSketches,
    build_reach_sketches,
    epsilon_for_k,
    k_for_epsilon,
)
from repro.sketches.celf import (
    DEFAULT_RESCORE_LIMIT,
    SketchCelfGreedyAll,
    sketch_greedy_all,
)
from repro.sketches.gains import SketchGainEngine
from repro.sketches.hashing import hash_stream, source_hashes, splitmix64

__all__ = [
    "DEFAULT_RESCORE_LIMIT",
    "DEFAULT_SKETCH_K",
    "EMPTY_REGISTER",
    "ReachSketches",
    "SketchCelfGreedyAll",
    "SketchGainEngine",
    "build_reach_sketches",
    "epsilon_for_k",
    "hash_stream",
    "k_for_epsilon",
    "sketch_greedy_all",
    "source_hashes",
    "splitmix64",
]
