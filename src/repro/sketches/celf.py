"""``Greedy_All`` on sketch-estimated gains — the ``sketch`` strategy.

The third execution strategy beside ``exact`` and ``lazy``: CELF-style
selection driven by the bottom-k gain estimates of
:class:`repro.sketches.gains.SketchGainEngine`, followed by an exact
rescore of the winning prefix.  The contract, in decreasing strength:

* **Exactness regime** (fewer sources than registers — every built-in
  dataset, the whole fuzz corpus): estimates are exact integers and the
  selection is *bit-identical* to ``exact``/``lazy`` ``Greedy_All``,
  including tie-breaks.  Steps are exact by construction
  (``rescored=True`` with no extra work).
* **Approximate regime, small graph** (``n ≤ rescore_limit``): selection
  is heuristic (estimated gains are only approximately submodular), but
  the returned step gains are exact — one incremental gain session
  replays the chosen prefix and rescores each pick, feeding the
  estimator-error histogram.  ``rescored=True``; the estimates that
  drove selection survive in ``PlacementResult.estimated_gains``.
* **Approximate regime, large graph**: rescoring is skipped
  (``rescored=False``), steps carry the estimates, and exact objectives
  are left to the caller's scoring boundary (the bench score phase / the
  service serializer) — the rescore's gain-session build costs about one
  exact run, which is exactly what the sketch tier exists to avoid.

Unlike the lazy strategy, staleness here is *global*: a placement can
move any node's estimated gain, so each selection bumps a version
counter and the first stale pop of a round triggers one full
(two-sweep) re-estimate; further stale pops are O(1) reads of the fresh
vector.  ``k`` placements therefore cost ``k + 1`` two-sweep
evaluations — the float analog of eager ``Greedy_All``'s sweep count,
at float/NumPy speed instead of big-int speed.
"""

from __future__ import annotations

import heapq
import random
from typing import TYPE_CHECKING

from repro.core.base import PlacementResult, PlacementStep, check_budget
from repro.exceptions import MissingSourceError, ParameterError
from repro.graphs.cgraph import CGraph
from repro.sketches.bottomk import (
    DEFAULT_SKETCH_K,
    build_reach_sketches,
    epsilon_for_k,
    k_for_epsilon,
)
from repro.sketches.gains import SketchGainEngine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import PropagationBackend
    from repro.propagation.model import PropagationModel

#: Above this node count the exact prefix rescore is skipped; exact
#: objectives then come from the caller's scoring boundary instead.
#: The rescore replays the prefix through one exact gain session, whose
#: big-int construction costs roughly a full exact run — affordable only
#: where exact itself is affordable, so the guard sits where the session
#: build is still sub-second-ish, not at the scale tier's upper rungs.
DEFAULT_RESCORE_LIMIT = 5_000

#: Relative-error bucket edges for ``fp_sketch_relative_error``.
ERROR_BUCKETS = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0
)


class SketchCelfGreedyAll:
    """``Greedy_All`` selection on bottom-k gain estimates.

    Parameters
    ----------
    sketch_k:
        Registers per node.  More registers, tighter estimates:
        the two-sigma relative error is ``2 / sqrt(k - 2)``.
    epsilon:
        Target relative error; overrides ``sketch_k`` via
        :func:`repro.sketches.bottomk.k_for_epsilon` when given.
    sketch_seed:
        Seed of the source-hash family.  Sketches (and hence placements)
        are byte-reproducible per ``(graph, sketch_k, sketch_seed)``.
    rescore_limit:
        Node-count guard on the exact prefix rescore.
    lanes:
        Pin the sketch/sweep implementation (``"numpy"``/``"python"``);
        None auto-selects.  Both lanes select identically.
    early_stop / backend / name / model:
        As for :class:`repro.core.celf.CelfGreedyAll`.  ``model`` must
        resolve to the deterministic unit model — sketches estimate
        deterministic reachability, so probabilistic relaying is
        rejected rather than silently mis-estimated.
    """

    name = "G_All_sketch"
    prefix_consistent = True

    def __init__(
        self,
        *,
        early_stop: bool = True,
        backend: "str | PropagationBackend | None" = None,
        name: str | None = None,
        model: "PropagationModel | None" = None,
        sketch_k: int = DEFAULT_SKETCH_K,
        epsilon: float | None = None,
        sketch_seed: int = 0,
        rescore_limit: int = DEFAULT_RESCORE_LIMIT,
        lanes: str | None = None,
    ) -> None:
        if epsilon is not None:
            sketch_k = k_for_epsilon(epsilon)
        if not isinstance(sketch_k, int) or sketch_k < 4:
            raise ParameterError(
                f"sketch_k must be an int >= 4, got {sketch_k!r}"
            )
        self.early_stop = early_stop
        self.backend = backend
        self.model = model
        self.sketch_k = sketch_k
        self.sketch_seed = sketch_seed
        self.rescore_limit = rescore_limit
        self.lanes = lanes
        if name is not None:
            self.name = name

    @property
    def epsilon(self) -> float:
        """The two-sigma relative-error bound at the configured k."""
        return epsilon_for_k(self.sketch_k)

    def place(
        self,
        graph: CGraph,
        k: int,
        *,
        rng: random.Random | None = None,
    ) -> PlacementResult:
        """Sketch build → CELF on estimates → exact prefix rescore."""
        from repro.backends.registry import resolve_backend
        from repro.obs.metrics import REGISTRY
        from repro.obs.trace import span
        from repro.propagation.model import resolve_model

        check_budget(graph, k)
        if resolve_model(self.model) is not None:
            raise ParameterError(
                "the sketch strategy estimates deterministic reachability; "
                "probabilistic relaying models require strategy "
                "'exact' or 'lazy'"
            )
        if k == 0:
            return PlacementResult(
                algorithm=self.name,
                filters=(),
                requested_k=0,
                steps=(),
                rescored=True,
            )
        if not graph.sources:
            raise MissingSourceError("graph has no sources")
        compiled = graph.compiled()
        sketches = build_reach_sketches(
            compiled, k=self.sketch_k, seed=self.sketch_seed,
            lanes=self.lanes,
        )
        engine = SketchGainEngine(compiled, sketches, lanes=self.lanes)

        chosen_ids: list[int] = []
        steps: list[PlacementStep] = []
        estimates: list[float] = []
        version = 0
        gains_version = 0
        gains = engine.gains_ids(())
        heap = [
            (-g, v, 0)
            for v, g in enumerate(gains)
            if g > 0 or not self.early_stop
        ]
        heapq.heapify(heap)
        pops = 0
        refreshes = 0
        sweeps_at_step = engine.evaluations
        first_step = True
        with span(
            "sketch.select",
            k=k,
            sketch_k=self.sketch_k,
            lanes=engine.lanes,
            exact=engine.exact,
        ) as select_span:
            while len(chosen_ids) < k and heap:
                neg_gain, v, ver = heapq.heappop(heap)
                pops += 1
                if ver != version:
                    # Global staleness: the first stale pop of the round
                    # re-estimates the whole vector (two float sweeps);
                    # every later stale pop is an O(1) read.
                    if gains_version != version:
                        gains = engine.gains_ids(chosen_ids)
                        gains_version = version
                    g = gains[v]
                    refreshes += 1
                    if g > 0 or not self.early_stop:
                        heapq.heappush(heap, (-g, v, version))
                    continue
                gain = -neg_gain
                if gain <= 0 and self.early_stop:
                    break
                evaluations = [
                    ("sketch_gains", engine.evaluations - sweeps_at_step),
                ]
                if first_step:
                    evaluations.append(("sketch_build", 1))
                    first_step = False
                steps.append(
                    PlacementStep(
                        node=compiled.nodes[v],
                        gain=gain,
                        evaluations=tuple(
                            sorted((k_, c) for k_, c in evaluations if c)
                        ),
                    )
                )
                chosen_ids.append(v)
                estimates.append(gain)
                sweeps_at_step = engine.evaluations
                version += 1
            select_span.set("pops", pops)
            select_span.set("refreshes", refreshes)
            select_span.set("sweeps", engine.evaluations)
            select_span.set("placed", len(chosen_ids))

        rescored = engine.exact
        if not engine.exact and compiled.n <= self.rescore_limit:
            error_hist = REGISTRY.histogram(
                "fp_sketch_relative_error",
                "Relative error of sketch gain estimates vs the exact "
                "rescore, per selected step.",
                buckets=ERROR_BUCKETS,
            )
            backend = resolve_backend(self.backend)
            with span(
                "sketch.rescore", steps=len(chosen_ids),
                backend=backend.name,
            ):
                session = backend.gain_session(graph, ())
                rescored_steps = []
                for step, v, estimate in zip(steps, chosen_ids, estimates):
                    exact_gain = session.gain_id(v)
                    session.add_filter_id(v)
                    error_hist.observe(
                        abs(estimate - exact_gain) / max(exact_gain, 1)
                    )
                    rescored_steps.append(
                        PlacementStep(
                            node=step.node,
                            gain=exact_gain,
                            evaluations=tuple(
                                sorted(
                                    step.evaluations
                                    + (("sketch_rescore", 1),)
                                )
                            ),
                        )
                    )
                steps = rescored_steps
            rescored = True

        return PlacementResult(
            algorithm=self.name,
            filters=tuple(compiled.to_nodes(chosen_ids)),
            requested_k=k,
            steps=tuple(steps),
            estimated_gains=tuple(estimates),
            rescored=rescored,
        )


def sketch_greedy_all(
    graph: CGraph, k: int, **kwargs
) -> PlacementResult:
    """Functional convenience wrapper around :class:`SketchCelfGreedyAll`."""
    return SketchCelfGreedyAll(**kwargs).place(graph, k)
