"""Sketch-estimated marginal gains over the shared CSR.

The exact aggregate formulation (:func:`repro.core.impact.
marginal_gains_ids_exact`) computes ``I(v | A) = (T(v) − nreach(v)) ·
W(v)`` from two exact sweeps plus the cached reachability counts.  The
sketch tier keeps the *formula* and swaps the reachability input: the
``nreach`` vector becomes the bottom-k estimate
(:meth:`repro.sketches.bottomk.ReachSketches.counts`), and the two sweeps
run in float64 so the per-edge work is a float add instead of big-int
arithmetic (path counts explode exponentially; the floats saturate
gracefully where the exact ints grow thousand-bit).

Exactness regime
----------------
When no register file overflowed (:meth:`ReachSketches.is_exact` — always
the case when the graph has fewer sources than ``k``), every estimate *is*
the exact reach count.  The engine then routes through the exact integer
sweeps, so its gains are **bit-identical** to the exact tier's — which is
what lets the ``sketch`` strategy reproduce exact selections on every
built-in dataset and the whole fuzz corpus, with the float machinery
engaging only beyond the exact tier's comfort zone.

Float determinism
-----------------
Both float paths accumulate per node in predecessor CSR order — the pure
python fallback by an in-order ``sum`` fold, the NumPy fast path by
``np.bincount(weights=...)`` (a sequential input-order accumulation) over
per-level ragged gathers — so the two produce bit-identical gain vectors
and sketch placements never depend on whether NumPy is importable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.impact import absorbing_suffix_ids
from repro.exceptions import ParameterError
from repro.propagation.engine import aggregate_receipts_ids

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graphs.compiled import CompiledGraph
    from repro.sketches.bottomk import ReachSketches

try:
    import numpy as _np
except Exception:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None


class _LevelPlan:
    """Per-level ragged CSR gathers, built once per engine (NumPy path).

    ``forward[L]`` is ``(vs, preds, seg)``: the level's node ids, the
    flattened predecessor ids, and each predecessor's position within the
    level.  ``backward[L]`` is ``(vs, kids, seg, dout)`` for the successor
    direction.  Rebuilding these per gains evaluation would double the
    sweep cost; they are the sketch analog of the backends' cached plans.
    """

    __slots__ = ("forward", "backward")

    def __init__(self, compiled: "CompiledGraph") -> None:
        np = _np
        topo = np.asarray(compiled.topo_order, dtype=np.int64)
        level_offsets = compiled.level_offsets

        def gather(vs, offsets, data):
            lens = offsets[vs + 1] - offsets[vs]
            total = int(lens.sum())
            if not total:
                empty = np.empty(0, dtype=np.int64)
                return empty, empty, lens
            seg = np.repeat(np.arange(len(vs), dtype=np.int64), lens)
            ends = np.cumsum(lens)
            pos = (
                np.arange(total, dtype=np.int64)
                - np.repeat(ends - lens, lens)
                + np.repeat(offsets[vs], lens)
            )
            return data[pos], seg, lens

        in_offsets = np.asarray(compiled.in_offsets, dtype=np.int64)
        in_sources = np.asarray(compiled.in_sources, dtype=np.int64)
        out_offsets = np.asarray(compiled.out_offsets, dtype=np.int64)
        out_targets = np.asarray(compiled.out_targets, dtype=np.int64)
        self.forward = []
        self.backward = []
        for level in range(compiled.num_levels):
            vs = topo[level_offsets[level]:level_offsets[level + 1]]
            preds, seg, _ = gather(vs, in_offsets, in_sources)
            self.forward.append((vs, preds, seg))
            kids, seg_out, dout = gather(vs, out_offsets, out_targets)
            self.backward.append(
                (vs, kids, seg_out, dout.astype(np.float64))
            )


class SketchGainEngine:
    """Estimated marginal gains for one ``(compiled, sketches)`` pair.

    ``lanes`` pins the sweep implementation (``"numpy"``/``"python"``;
    None auto-selects).  :attr:`exact` reports the exactness regime —
    when True, :meth:`gains_ids` returns exact Python ints, bit-identical
    to :func:`repro.core.impact.marginal_gains_ids_exact`.
    """

    __slots__ = (
        "compiled",
        "sketches",
        "exact",
        "lanes",
        "evaluations",
        "_nreach",
        "_nreach_arr",
        "_bonus_arr",
        "_plan",
    )

    def __init__(
        self,
        compiled: "CompiledGraph",
        sketches: "ReachSketches",
        *,
        lanes: str | None = None,
    ) -> None:
        if lanes is None:
            lanes = "numpy" if _np is not None else "python"
        if lanes not in ("numpy", "python"):
            raise ParameterError(f"unknown sketch lanes {lanes!r}")
        if lanes == "numpy" and _np is None:
            raise ParameterError(
                "numpy sketch lanes requested but numpy is not importable"
            )
        self.compiled = compiled
        self.sketches = sketches
        self.lanes = lanes
        self.exact = sketches.is_exact()
        self.evaluations = 0
        counts = sketches.counts()
        if self.exact:
            # Underfull registers count exactly — integer arithmetic from
            # here on, so the exact tier's tie-breaks carry over verbatim.
            self._nreach = [int(c) for c in counts]
        else:
            self._nreach = counts
        self._nreach_arr = None
        self._bonus_arr = None
        self._plan = None

    def estimated_counts(self) -> "list[int] | list[float]":
        """The ``nreach`` estimates the gain formula consumes."""
        return self._nreach

    def gains_ids(self, filter_ids=()) -> "list[int] | list[float]":
        """Estimated ``I(v | A)`` for every node under filter set ``A``.

        Two sweeps (a ``W`` pass and a ``T`` pass), like the exact
        aggregate tier; the regime decides the arithmetic.
        """
        mask = self.compiled.filter_mask(filter_ids)
        self.evaluations += 1
        if self.exact:
            return self._gains_exact(mask)
        if self.lanes == "numpy":
            return self._gains_numpy(mask)
        return self._gains_python(mask)

    # ------------------------------------------------------------------
    # Exactness regime: reuse the exact integer sweeps unchanged.
    # ------------------------------------------------------------------

    def _gains_exact(self, mask: bytearray) -> list[int]:
        compiled = self.compiled
        w = absorbing_suffix_ids(compiled, mask)
        totals = aggregate_receipts_ids(compiled, mask, self._nreach)
        nreach = self._nreach
        gains = [0] * compiled.n
        for v in range(compiled.n):
            if mask[v]:
                continue
            excess = totals[v] - nreach[v]
            if excess > 0:
                wv = w[v]
                if wv:
                    gains[v] = excess * wv
        return gains

    # ------------------------------------------------------------------
    # Approximate regime: float64 sweeps, two bit-identical lanes.
    # ------------------------------------------------------------------

    def _gains_python(self, mask: bytearray) -> list[float]:
        compiled = self.compiled
        n = compiled.n
        nreach = self._nreach
        bonus = compiled.source_mark()
        succ = compiled.succ_ids
        pred = compiled.pred_ids
        topo = compiled.topo_order

        w = [0.0] * n
        w_eff = [0.0] * n
        w_eff_get = w_eff.__getitem__
        for v in reversed(topo):
            children = succ[v]
            if children:
                acc = len(children) + sum(map(w_eff_get, children))
                w[v] = acc
                if not mask[v]:
                    w_eff[v] = acc

        totals = [0.0] * n
        emit = [0.0] * n
        emit_get = emit.__getitem__
        for v in topo:
            parents = pred[v]
            t = sum(map(emit_get, parents)) if parents else 0.0
            totals[v] = t
            emit[v] = (nreach[v] if mask[v] else t) + bonus[v]

        gains = [0.0] * n
        for v in range(n):
            if mask[v]:
                continue
            excess = totals[v] - nreach[v]
            if excess > 0.0:
                wv = w[v]
                if wv > 0.0:
                    gains[v] = excess * wv
        return gains

    def _gains_numpy(self, mask: bytearray) -> list[float]:
        np = _np
        compiled = self.compiled
        n = compiled.n
        if self._plan is None:
            self._plan = _LevelPlan(compiled)
            self._nreach_arr = np.asarray(self._nreach, dtype=np.float64)
            self._bonus_arr = np.frombuffer(
                bytes(compiled.source_mark()), dtype=np.uint8
            ).astype(np.float64)
        plan = self._plan
        nreach = self._nreach_arr
        bonus = self._bonus_arr
        maskb = np.frombuffer(bytes(mask), dtype=np.uint8).astype(bool)

        w = np.zeros(n, dtype=np.float64)
        w_eff = np.zeros(n, dtype=np.float64)
        for vs, kids, seg, dout in reversed(plan.backward):
            if len(kids):
                acc = dout + np.bincount(
                    seg, weights=w_eff[kids], minlength=len(vs)
                )
            else:
                acc = dout
            w[vs] = acc
            w_eff[vs] = np.where(maskb[vs], 0.0, acc)

        totals = np.zeros(n, dtype=np.float64)
        emit = np.zeros(n, dtype=np.float64)
        for vs, preds, seg in plan.forward:
            if len(preds):
                t = np.bincount(
                    seg, weights=emit[preds], minlength=len(vs)
                )
            else:
                t = np.zeros(len(vs), dtype=np.float64)
            totals[vs] = t
            emit[vs] = np.where(maskb[vs], nreach[vs], t) + bonus[vs]

        excess = totals - nreach
        gains = np.where(
            (~maskb) & (excess > 0.0) & (w > 0.0), excess * w, 0.0
        )
        return gains.tolist()
