"""The benchmark runner: scenarios in, timed records out.

For every scenario the harness

1. generates (and memoizes) the dataset graph,
2. wraps the requested propagation backend in a
   :class:`~repro.bench.instrument.CountingBackend` and installs it as the
   process default for the timed region — the algorithms resolve it through
   the registry, so no algorithm needs bench-specific code,
3. times ``algorithm.place(graph, k)`` best-of-``repeats``
   (``time.perf_counter``), and
4. scores the placement (``F(A)``, Filter Ratio) *outside* the timed
   region, on the same backend.

Records go to :mod:`repro.bench.results` for ``BENCH.json`` serialization
and to :mod:`repro.bench.compare` for regression checks.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING

from repro.backends.registry import get_backend, use_backend
from repro.bench.instrument import CountingBackend
from repro.bench.results import BenchRecord
from repro.bench.scenarios import BenchScenario
from repro.core.objective import max_objective, objective_value, phi
from repro.core.registry import get_algorithm
from repro.datasets.registry import get_dataset
from repro.exceptions import ParameterError
from repro.graphs.cgraph import CGraph
from repro.obs.trace import span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graphs.largescale import StreamedGraph


def _load_graph(scenario: BenchScenario) -> "CGraph | StreamedGraph":
    kwargs: dict[str, object] = {"seed": scenario.seed}
    if scenario.scale is not None:
        kwargs["scale"] = scenario.scale
    if scenario.streamed:
        # The scale tier's ingestion path: generator → int32 CSR without
        # a materialized edge list.  Returns a StreamedGraph — the
        # source-axis rewrite below needs a CGraph, so the two axes are
        # mutually exclusive by construction.
        if scenario.sources:
            raise ParameterError(
                "streamed cells cannot re-designate sources"
            )
        kwargs["streamed"] = True
    graph = get_dataset(scenario.dataset, **kwargs)
    if scenario.sources:
        # Widen the source axis (the paper datasets carry one source):
        # re-designate the first N nodes, clamped to the graph's size.
        graph = graph.with_sources(graph.nodes()[: scenario.sources])
    return graph


def _is_sketch_cell(scenario: BenchScenario) -> bool:
    """Whether the cell's algorithm is the sketch-strategy execution."""
    from repro.core.registry import get_algorithm
    from repro.sketches.celf import SketchCelfGreedyAll

    return isinstance(get_algorithm(scenario.algorithm), SketchCelfGreedyAll)


def _scenario_backend(scenario: BenchScenario):
    """The cell's backend: the registry singleton, or a cell-private one.

    ``fresh_backend`` cells get their own instance so the one-time warm
    cost lands in *their* ``plan_seconds`` — with the singleton, the
    first toucher of a graph (often the suite's Φ-constant computation)
    silently pays for everyone.  Tier-pinned cells are always private:
    retuning the singleton's tier would leak into other cells.
    """
    if scenario.tier == "bitpack" and not scenario.fresh_backend:
        return get_backend(scenario.backend)
    from repro.backends.registry import build_backend

    return build_backend(scenario.backend, tier=scenario.tier)


def _scenario_model(scenario: BenchScenario):
    """The scenario's resolved PropagationModel (None = deterministic)."""
    if scenario.model == "deterministic":
        return None
    from repro.propagation.model import build_model

    return build_model(
        scenario.model,
        edge_prob=scenario.edge_prob,
        trials=scenario.trials,
        seed=scenario.seed,
    )


def run_compile_scenario(
    scenario: BenchScenario,
    *,
    graph: CGraph | None = None,
    repeats: int = 1,
) -> BenchRecord:
    """Measure one ``compile`` cell: plan build time + compiled bytes.

    Each repeat rebuilds the :class:`CGraph` from its edge/node/source
    data *outside* the timed region (the compiled view is cached on the
    immutable graph, so a fresh instance is the only way to time a cold
    build) and times exactly one ``graph.compiled()`` call.

    Streamed cells time the whole ingestion instead — generation,
    interning and CSR assembly are one fused pass with no edge list to
    set up untimed, which is precisely the property the cell measures —
    and additionally record the compiled tables' ``mapped_bytes``
    (0 for in-memory builds; nonzero once the graph is reopened from a
    ``.fpc`` file).
    """
    if repeats <= 0:
        raise ParameterError("repeats must be positive")
    if scenario.streamed:
        best = float("inf")
        total = 0.0
        fresh = None
        for _ in range(repeats):
            start = time.perf_counter()
            fresh = _load_graph(scenario)
            fresh.compiled()
            elapsed = time.perf_counter() - start
            total += elapsed
            best = min(best, elapsed)
        assert fresh is not None  # repeats >= 1
        split = fresh.compiled().nbytes_split()
        phases = {"plan": best}
        if repeats > 1:
            phases["repeat_overhead"] = total - best
        return BenchRecord(
            scenario=scenario,
            nodes=fresh.number_of_nodes(),
            edges=fresh.number_of_edges(),
            seconds=best,
            repeats=repeats,
            plan_seconds=best,
            phases=phases,
            wall_seconds=total,
            evaluations={
                "compiled_bytes": split["resident"],
                "mapped_bytes": split["mapped"],
            },
            filters=(),
            filters_found=0,
            objective=0,
            filter_ratio=0.0,
        )
    if graph is None:
        graph = _load_graph(scenario)
    edges = list(graph.edges())
    nodes = graph.nodes()
    sources = graph.sources

    best = float("inf")
    total = 0.0
    compiled = None
    for _ in range(repeats):
        fresh = CGraph(edges, nodes=nodes, sources=sources)
        start = time.perf_counter()
        compiled = fresh.compiled()
        elapsed = time.perf_counter() - start
        total += elapsed
        best = min(best, elapsed)
    assert compiled is not None  # repeats >= 1

    # The graph rebuilds between repeats are deliberately untimed, so
    # the cell's wall-clock is the sum of the timed builds only.
    phases = {"plan": best}
    if repeats > 1:
        phases["repeat_overhead"] = total - best
    return BenchRecord(
        scenario=scenario,
        nodes=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        seconds=best,
        repeats=repeats,
        plan_seconds=best,
        phases=phases,
        wall_seconds=total,
        evaluations={"compiled_bytes": compiled.nbytes()},
        filters=(),
        filters_found=0,
        objective=0,
        filter_ratio=0.0,
    )


def run_scenario(
    scenario: BenchScenario,
    *,
    graph: CGraph | None = None,
    repeats: int = 1,
    phi_constants: tuple[int, int] | None = None,
    compile_seconds: float | None = None,
) -> BenchRecord:
    """Measure one scenario cell.

    ``phi_constants`` is an optional pre-computed ``(Φ(∅), F(V))`` pair for
    ``graph`` — backend-independent, so :func:`run_suite` computes it once
    per graph instead of twice per cell.  ``compile_seconds`` is the
    graph's measured one-time compile cost (again per graph, from
    :func:`run_suite`); standalone calls measure it inline.  Either way
    the plan work lands in the record's ``plan_seconds``, never in
    ``seconds``.
    """
    if repeats <= 0:
        raise ParameterError("repeats must be positive")
    if scenario.mode == "compile":
        return run_compile_scenario(scenario, graph=graph, repeats=repeats)
    if scenario.mode != "algorithm":
        # Service cells time the request path, not the bare algorithm.
        from repro.bench.service import run_service_scenario

        return run_service_scenario(
            scenario,
            graph=graph,
            repeats=repeats,
            phi_constants=phi_constants,
            compile_seconds=compile_seconds,
        )
    if graph is None:
        graph = _load_graph(scenario)
    backend = _scenario_backend(scenario)
    model = _scenario_model(scenario)
    if scenario.workers:
        from repro.propagation.parallel import use_world_workers

        workers_scope = use_world_workers(scenario.workers)
    else:
        from contextlib import nullcontext

        workers_scope = nullcontext()
    # Plan work happens outside the timed region — the shared compiled
    # view plus the backend's adapter over it — and is *measured* so
    # BENCH.json reports the split instead of hiding the cost.  On a
    # pre-compiled graph (the run_suite path) the first term is ~0 and
    # ``compile_seconds`` carries the real number.  For probabilistic
    # cells one untimed evaluation additionally samples the worlds and
    # builds the backend's live-mask adapters — the model's one-time
    # cost, amortized by every timed evaluation exactly as in a real run.
    with workers_scope:
        wall_start = time.perf_counter()
        with span("bench.plan", cell=scenario.key()):
            graph.compiled()
            # Sketch-strategy cells never drive the exact backend during
            # the solve (the sketch engine builds its own float lanes),
            # so warming it here would charge them the exact adapter
            # build they exist to avoid — their exact score, if any,
            # warms lazily in the untimed score phase instead.
            if scenario.exact_score and not _is_sketch_cell(scenario):
                backend.warm(graph)
            if model is not None:
                backend.sampled_marginal_gains_ids(graph, (), model=model)
        plan_phase = time.perf_counter() - wall_start
        plan_seconds = plan_phase
        if compile_seconds is not None:
            plan_seconds += compile_seconds
        counting = CountingBackend(backend)
        algorithm = get_algorithm(scenario.algorithm, model=model)

        best = float("inf")
        repeat_total = 0.0
        result = None
        with use_backend(counting):
            with span("bench.solve", cell=scenario.key(), repeats=repeats):
                for _ in range(repeats):
                    counting.reset()
                    start = time.perf_counter()
                    result = algorithm.place(graph, scenario.k)
                    elapsed = time.perf_counter() - start
                    repeat_total += elapsed
                    best = min(best, elapsed)
        counting.publish()
        assert result is not None  # repeats >= 1

        score_start = time.perf_counter()
        with span("bench.score", cell=scenario.key()):
            result, objective, fr = _score_placement(
                scenario, graph, backend, model, result, phi_constants
            )
        score_seconds = time.perf_counter() - score_start
        wall_seconds = time.perf_counter() - wall_start

    # ``phases`` decomposes the cell's in-harness wall-clock exactly:
    # plan (in-cell share only — the amortized compile lives in
    # ``plan_seconds``), solve (best repeat, == seconds),
    # repeat_overhead (the non-best repeats; the former timing skew
    # where ``repeats > 1`` left them unaccounted), score.
    phases = {"plan": plan_phase, "solve": best, "score": score_seconds}
    if repeats > 1:
        phases["repeat_overhead"] = repeat_total - best

    # The sketch strategy bypasses the propagation backend for its
    # estimates, so the counting wrapper never sees its work; the
    # per-step evaluation markers carry it instead.  Exact/lazy step
    # markers mirror backend calls the counter already saw — merging
    # those would double-count — so only the sketch-native kinds join.
    evaluations = dict(counting.counts)
    for step in result.steps:
        for kind, count in step.evaluations:
            if kind.startswith("sketch_"):
                evaluations[kind] = evaluations.get(kind, 0) + count

    return BenchRecord(
        scenario=scenario,
        nodes=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        seconds=best,
        repeats=repeats,
        plan_seconds=plan_seconds,
        phases=phases,
        wall_seconds=wall_seconds,
        evaluations=evaluations,
        filters=tuple(repr(v) for v in result.filters),
        filters_found=len(result.filters),
        objective=objective,
        filter_ratio=fr,
    )


def _score_placement(
    scenario: BenchScenario,
    graph: CGraph,
    backend,
    model,
    result,
    phi_constants: tuple[int, int] | None,
):
    """Score a placement (objective + FR) outside the timed region."""
    if not scenario.exact_score:
        # Estimator-scored rung: one exact Φ sweep at the n = 10^6 rung
        # is the cost the sketch strategy exists to avoid, which is the
        # regime the cell documents.  The recorded step gains sum to
        # the algorithm's own
        # objective claim — exact F(A) for exact strategies, the
        # bottom-k estimate for an unrescored sketch run — and the
        # filter ratio is left at 0.0 rather than faked.
        objective = float(sum(step.gain for step in result.steps))
        return result, objective, 0.0
    if model is not None:
        # SAA scoring: every estimate averages the cell's shared
        # worlds, so objective and FR are mutually consistent floats.
        from repro.core.objective import expected_phi

        phi_empty_x = expected_phi(
            graph, (), model=model, backend=backend
        )
        f_max_x = phi_empty_x - expected_phi(
            graph, graph.nodes(), model=model, backend=backend
        )
        objective = phi_empty_x - expected_phi(
            graph, result.filters, model=model, backend=backend
        )
        fr = 1.0 if f_max_x == 0 else objective / f_max_x
    else:
        # Score with at most three sweeps: Φ(∅) and Φ(V)
        # (amortizable via phi_constants) plus Φ(A), each once.
        if phi_constants is None:
            phi_empty = phi(graph, (), backend=backend)
            f_max = max_objective(
                graph, phi_empty=phi_empty, backend=backend
            )
        else:
            phi_empty, f_max = phi_constants
        objective = objective_value(
            graph, result.filters, phi_empty=phi_empty, backend=backend
        )
        fr = 1.0 if f_max == 0 else objective / f_max
    return result, objective, fr


def run_suite(
    scenarios: Sequence[BenchScenario],
    *,
    repeats: int = 1,
    progress: Callable[[str], None] | None = None,
) -> list[BenchRecord]:
    """Measure every scenario, reusing one graph per dataset cell.

    ``progress`` (e.g. ``print``) receives one line per finished cell.
    """
    graphs: dict[tuple, CGraph] = {}
    constants: dict[tuple, tuple[int, int]] = {}
    compile_seconds: dict[tuple, float] = {}
    records: list[BenchRecord] = []
    for scenario in scenarios:
        gkey = scenario.graph_key()
        if gkey not in graphs:
            graph = _load_graph(scenario)
            graphs[gkey] = graph
            # Time the one-shot compile immediately after generation —
            # before any Φ constant or warm call builds it as a side
            # effect — so every cell of this graph can report the true
            # plan cost it amortizes.  No is_dag() pre-check: compiling
            # handles cyclic graphs, and the legacy dict-path check
            # would pollute the measurement with non-plan work.
            start = time.perf_counter()
            graph.compiled()
            compile_seconds[gkey] = time.perf_counter() - start
        graph = graphs[gkey]
        if (
            gkey not in constants
            and scenario.mode != "compile"
            and scenario.exact_score
        ):
            # Estimator-scored cells never compute Φ constants: the
            # sweeps are exactly the cost their rung cannot pay.
            phi_empty = phi(graph, ())
            constants[gkey] = (
                phi_empty,
                max_objective(graph, phi_empty=phi_empty),
            )
        record = run_scenario(
            scenario,
            graph=graph,
            repeats=repeats,
            phi_constants=constants.get(gkey),
            compile_seconds=compile_seconds[gkey],
        )
        records.append(record)
        if progress is not None:
            progress(
                f"{scenario.key():<55} {record.seconds * 1e3:9.1f} ms  "
                f"FR={record.filter_ratio:.4f}"
            )
    return records


def render_records(records: Sequence[BenchRecord]) -> str:
    """The records as an aligned text table (CLI output).

    ``sweeps`` counts full-graph propagation evaluations, ``inc`` the
    incremental session operations (regional updates + O(1) refreshes) —
    the split ``docs/benchmarks.md`` explains.  Lazy ``Greedy_All`` shows
    one sweep and a handful of ``inc``; eager shows ``k`` sweeps.
    ``plan ms`` is the one-time plan/compile cost the timed ``ms`` column
    excludes (``compile`` cells time exactly that, so there the columns
    coincide).
    """
    from repro.analysis.report import format_table
    from repro.bench.instrument import incremental_count, sweep_count

    headers = [
        "dataset", "alg", "k", "backend", "model", "nodes", "edges",
        "ms", "plan ms", "sweeps", "inc", "FR",
    ]
    rows = []
    for r in records:
        s = r.scenario
        algorithm = s.algorithm
        if s.mode == "service_cold":
            algorithm += ":cold"
        elif s.mode == "service_hit":
            algorithm += ":hit"
        if s.model == "deterministic":
            model = "-"
        else:
            model = f"{s.model} p{s.edge_prob:g} t{s.trials}"
        rows.append([
            s.dataset if s.scale is None else f"{s.dataset}@{s.scale:g}",
            algorithm,
            str(s.k),
            s.backend,
            model,
            str(r.nodes),
            str(r.edges),
            f"{r.seconds * 1e3:.1f}",
            f"{r.plan_seconds * 1e3:.1f}",
            str(sweep_count(r.evaluations)),
            str(incremental_count(r.evaluations)),
            f"{r.filter_ratio:.4f}",
        ])
    return format_table(headers, rows)
