"""Benchmark harness: scenario matrices, instrumentation, trajectory files.

The subsystem that keeps the performance story honest across PRs:

* :mod:`repro.bench.scenarios` — the scenario matrix
  (dataset × algorithm × k × backend) and the built-in suites
  (``toy``, ``default``, ``ablation``, ``lazy``).
* :mod:`repro.bench.instrument` — :class:`CountingBackend`, which tallies
  how many propagation evaluations an algorithm requested, split into
  full-graph sweeps and incremental session operations.
* :mod:`repro.bench.harness` — graph caching, wall-clock timing,
  placement scoring.
* :mod:`repro.bench.results` — the versioned ``BENCH.json`` document
  (write + validate + load).
* :mod:`repro.bench.compare` — the regression comparator between two
  ``BENCH.json`` files (perf ratios and deterministic-result drift).

CLI entry point: ``filter-placement bench`` (see :mod:`repro.cli`).
"""

from repro.bench.compare import (
    ComparisonReport,
    compare_documents,
    format_comparison,
    lazy_savings,
    summarize_speedups,
)
from repro.bench.harness import render_records, run_scenario, run_suite
from repro.bench.instrument import (
    EVALUATION_KINDS,
    INCREMENTAL_KINDS,
    SWEEP_KINDS,
    CountingBackend,
    CountingGainSession,
    incremental_count,
    sweep_count,
)
from repro.bench.results import (
    SCHEMA_VERSION,
    BenchRecord,
    build_document,
    load_bench_json,
    validate_document,
    write_bench_json,
    write_document,
)
from repro.bench.scenarios import (
    SUITE_NAMES,
    BenchScenario,
    ablation_suite,
    default_suite,
    get_suite,
    lazy_suite,
    toy_suite,
)

__all__ = [
    "BenchScenario",
    "BenchRecord",
    "CountingBackend",
    "CountingGainSession",
    "ComparisonReport",
    "EVALUATION_KINDS",
    "INCREMENTAL_KINDS",
    "SCHEMA_VERSION",
    "SUITE_NAMES",
    "SWEEP_KINDS",
    "ablation_suite",
    "build_document",
    "compare_documents",
    "default_suite",
    "format_comparison",
    "get_suite",
    "incremental_count",
    "lazy_savings",
    "lazy_suite",
    "load_bench_json",
    "render_records",
    "run_scenario",
    "run_suite",
    "summarize_speedups",
    "sweep_count",
    "toy_suite",
    "validate_document",
    "write_bench_json",
    "write_document",
]
