"""Evaluation-count instrumentation.

Wall-clock alone can't tell *why* an algorithm got faster — fewer sweeps
(lazy evaluation working) and cheaper sweeps (a faster backend) look the
same on a stopwatch.  :class:`CountingBackend` wraps any propagation
backend, forwards every call unchanged, and tallies how many of each
evaluation the algorithm requested.  The bench harness installs it as the
default backend for the timed region and reports the counters next to the
seconds, so e.g. the ablation suite can show ``G_All_lazy`` issuing fewer
``marginal_gains`` sweeps than ``G_All`` on the same cell.
"""

from __future__ import annotations

from collections.abc import Collection, Mapping
from typing import Hashable

from repro.backends.base import PropagationBackend
from repro.graphs.cgraph import CGraph

Node = Hashable

#: Counter keys, one per protocol method.
EVALUATION_KINDS: tuple[str, ...] = (
    "node_receipts",
    "total_receipts",
    "marginal_gains",
    "simplified_impacts",
)


class CountingBackend:
    """A pass-through :class:`PropagationBackend` that counts calls."""

    def __init__(self, inner: PropagationBackend) -> None:
        self.inner = inner
        self.name = f"counting({inner.name})"
        self.counts: dict[str, int] = dict.fromkeys(EVALUATION_KINDS, 0)

    def reset(self) -> None:
        """Zero all counters (the harness resets between repeats)."""
        self.counts = dict.fromkeys(EVALUATION_KINDS, 0)

    def total_evaluations(self) -> int:
        """All evaluations of any kind, summed."""
        return sum(self.counts.values())

    # -- PropagationBackend ------------------------------------------------

    def node_receipts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        items_per_source: int | Mapping[Node, int] = 1,
    ) -> dict[Node, int]:
        self.counts["node_receipts"] += 1
        return self.inner.node_receipts(
            graph, filters, items_per_source=items_per_source
        )

    def total_receipts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        items_per_source: int | Mapping[Node, int] = 1,
    ) -> int:
        self.counts["total_receipts"] += 1
        return self.inner.total_receipts(
            graph, filters, items_per_source=items_per_source
        )

    def marginal_gains(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
    ) -> dict[Node, int]:
        self.counts["marginal_gains"] += 1
        return self.inner.marginal_gains(graph, filters)

    def simplified_impacts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
    ) -> dict[Node, int]:
        self.counts["simplified_impacts"] += 1
        return self.inner.simplified_impacts(graph, filters)

    def warm(self, graph: CGraph) -> None:
        # Preprocessing, not an evaluation: forwarded but never counted.
        self.inner.warm(graph)
