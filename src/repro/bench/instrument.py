"""Evaluation-count instrumentation (now part of :mod:`repro.obs`).

The counting wrapper that the bench harness installs around the timed
region grew into the stack-wide :class:`repro.obs.InstrumentedBackend`
— same counters, same semantics, plus span/metric emission when the
tracer is enabled.  This module re-exports the machinery under its
historical names so existing imports (and the bench docs' vocabulary)
keep working: ``CountingBackend`` *is* ``InstrumentedBackend``.
"""

from __future__ import annotations

from repro.obs.instrument import (
    EVALUATION_KINDS,
    INCREMENTAL_KINDS,
    SWEEP_KINDS,
    InstrumentedBackend,
    InstrumentedGainSession,
    incremental_count,
    sweep_count,
)

#: Historical bench-layer names for the obs-layer wrapper.
CountingBackend = InstrumentedBackend
CountingGainSession = InstrumentedGainSession

__all__ = [
    "EVALUATION_KINDS",
    "INCREMENTAL_KINDS",
    "SWEEP_KINDS",
    "CountingBackend",
    "CountingGainSession",
    "InstrumentedBackend",
    "InstrumentedGainSession",
    "incremental_count",
    "sweep_count",
]
