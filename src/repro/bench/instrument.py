"""Evaluation-count instrumentation.

Wall-clock alone can't tell *why* an algorithm got faster — fewer sweeps
(lazy evaluation working) and cheaper sweeps (a faster backend) look the
same on a stopwatch.  :class:`CountingBackend` wraps any propagation
backend, forwards every call unchanged, and tallies how many of each
evaluation the algorithm requested.  The bench harness installs it as the
default backend for the timed region and reports the counters next to the
seconds, so the ``lazy`` suite can show CELF issuing one full sweep where
eager ``Greedy_All`` issues ``k``.

Two cost classes are counted, and the distinction is what the lazy-greedy
numbers hinge on:

* **Full-graph sweeps** (:data:`SWEEP_KINDS`) — every one-shot query
  (``node_receipts``, ``total_receipts``, ``marginal_gains``,
  ``simplified_impacts``) plus ``session_init``, the full ψ/W pass a
  :class:`~repro.backends.base.GainSession` runs at construction.  Each
  touches the whole graph once per source.  :func:`sweep_count` sums
  these; "propagation evaluations" in the acceptance criteria and in
  ``docs/benchmarks.md`` means exactly this sum.
* **Incremental session operations** (:data:`INCREMENTAL_KINDS`) —
  ``session_update`` (one regional re-settle per placed filter) and
  ``session_refresh`` (one O(1) stale-gain read per lazy re-evaluation).
  Strictly cheaper than a sweep; :func:`incremental_count` sums them and
  the bench table reports them in their own column so the two cost
  classes are never conflated.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable, Mapping
from typing import Hashable

from repro.backends.base import PropagationBackend
from repro.graphs.cgraph import CGraph

Node = Hashable

#: Full-graph sweep counters: one increment = one whole-graph pass.
SWEEP_KINDS: tuple[str, ...] = (
    "node_receipts",
    "total_receipts",
    "marginal_gains",
    "simplified_impacts",
    "session_init",
)

#: Incremental session counters: regional updates and O(1) gain reads.
INCREMENTAL_KINDS: tuple[str, ...] = (
    "session_update",
    "session_refresh",
)

#: Counter keys, one per protocol method / session operation.
EVALUATION_KINDS: tuple[str, ...] = SWEEP_KINDS + INCREMENTAL_KINDS


def sweep_count(counts: Mapping[str, int]) -> int:
    """Full-graph propagation sweeps in an evaluation-counter mapping."""
    return sum(counts.get(kind, 0) for kind in SWEEP_KINDS)


def incremental_count(counts: Mapping[str, int]) -> int:
    """Incremental session operations in an evaluation-counter mapping."""
    return sum(counts.get(kind, 0) for kind in INCREMENTAL_KINDS)


class CountingBackend:
    """A pass-through :class:`PropagationBackend` that counts calls."""

    def __init__(self, inner: PropagationBackend) -> None:
        self.inner = inner
        self.name = f"counting({inner.name})"
        self.counts: dict[str, int] = dict.fromkeys(EVALUATION_KINDS, 0)

    def reset(self) -> None:
        """Zero all counters (the harness resets between repeats)."""
        self.counts = dict.fromkeys(EVALUATION_KINDS, 0)

    def total_evaluations(self) -> int:
        """All evaluations of any kind, summed."""
        return sum(self.counts.values())

    def sweep_evaluations(self) -> int:
        """Full-graph sweeps only — the lazy-vs-eager headline number."""
        return sweep_count(self.counts)

    def incremental_evaluations(self) -> int:
        """Incremental session operations only."""
        return incremental_count(self.counts)

    # -- PropagationBackend ------------------------------------------------

    def node_receipts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        items_per_source: int | Mapping[Node, int] = 1,
    ) -> dict[Node, int]:
        """Forward ``node_receipts`` (``Σ_s ψ_s``), counting one sweep."""
        self.counts["node_receipts"] += 1
        return self.inner.node_receipts(
            graph, filters, items_per_source=items_per_source
        )

    def total_receipts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        items_per_source: int | Mapping[Node, int] = 1,
    ) -> int:
        """Forward ``total_receipts`` (``Φ(A, V)``), counting one sweep."""
        self.counts["total_receipts"] += 1
        return self.inner.total_receipts(
            graph, filters, items_per_source=items_per_source
        )

    def marginal_gains(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
    ) -> dict[Node, int]:
        """Forward ``marginal_gains`` (``I(v | A)``), counting one sweep."""
        self.counts["marginal_gains"] += 1
        return self.inner.marginal_gains(graph, filters)

    def marginal_gains_ids(
        self,
        graph: CGraph,
        filter_ids: Iterable[int] = (),
    ):
        """Forward the id fast path — the same whole-graph sweep, so it
        lands on the same ``marginal_gains`` counter."""
        self.counts["marginal_gains"] += 1
        return self.inner.marginal_gains_ids(graph, filter_ids)

    def simplified_impacts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
    ) -> dict[Node, int]:
        """Forward ``simplified_impacts`` (``I'(v)``), counting one sweep."""
        self.counts["simplified_impacts"] += 1
        return self.inner.simplified_impacts(graph, filters)

    def simplified_impacts_ids(
        self,
        graph: CGraph,
        filter_ids: Iterable[int] = (),
    ):
        """Forward the id fast path, counted as ``simplified_impacts``."""
        self.counts["simplified_impacts"] += 1
        return self.inner.simplified_impacts_ids(graph, filter_ids)

    def gain_session(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
    ) -> "CountingGainSession":
        """Open a counted incremental session (``session_init`` sweep)."""
        # Construction runs the session's one full ψ/W sweep.
        self.counts["session_init"] += 1
        return CountingGainSession(
            self.inner.gain_session(graph, filters), self.counts
        )

    # -- propagation-model axis -------------------------------------------
    # Sampled evaluations batch the model's worlds into one call; each
    # call is one (T-fold) whole-graph pass, so it lands on the same
    # counter as its deterministic counterpart — the sweep/incremental
    # split stays comparable across the model axis.

    def sampled_marginal_gains_ids(
        self,
        graph: CGraph,
        filter_ids: Iterable[Node] = (),
        *,
        model=None,
    ):
        """Forward the sampled gains batch, counted as ``marginal_gains``."""
        self.counts["marginal_gains"] += 1
        return self.inner.sampled_marginal_gains_ids(
            graph, filter_ids, model=model
        )

    def sampled_simplified_impacts_ids(
        self,
        graph: CGraph,
        filter_ids: Iterable[Node] = (),
        *,
        model=None,
    ):
        """Forward the sampled ``I'`` batch, counted as ``simplified_impacts``."""
        self.counts["simplified_impacts"] += 1
        return self.inner.sampled_simplified_impacts_ids(
            graph, filter_ids, model=model
        )

    def sampled_total_receipts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        model=None,
    ) -> int:
        """Forward the sampled ``Φ`` batch, counted as ``total_receipts``."""
        self.counts["total_receipts"] += 1
        return self.inner.sampled_total_receipts(graph, filters, model=model)

    def expected_total_receipts(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        model=None,
    ) -> float:
        """Forward the SAA ``Φ`` estimate, counted as ``total_receipts``."""
        self.counts["total_receipts"] += 1
        return self.inner.expected_total_receipts(graph, filters, model=model)

    def expected_marginal_gains(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        model=None,
    ):
        """Forward the SAA gain estimate, counted as ``marginal_gains``."""
        self.counts["marginal_gains"] += 1
        return self.inner.expected_marginal_gains(graph, filters, model=model)

    def sampled_gain_session(
        self,
        graph: CGraph,
        filters: Collection[Node] = (),
        *,
        model=None,
    ) -> "CountingGainSession":
        """Open a counted SAA session (``session_init`` batched sweep)."""
        self.counts["session_init"] += 1
        return CountingGainSession(
            self.inner.sampled_gain_session(graph, filters, model=model),
            self.counts,
        )

    def warm(self, graph: CGraph) -> None:
        """Forward warm-up uncounted — preprocessing, not an evaluation."""
        self.inner.warm(graph)


class CountingGainSession:
    """A pass-through :class:`~repro.backends.base.GainSession` that counts.

    Shares its counter dict with the :class:`CountingBackend` that opened
    it, so a whole placement run lands in one ledger.
    """

    def __init__(self, inner, counts: dict[str, int]) -> None:
        self.inner = inner
        self.backend_name = inner.backend_name
        self.counts = counts

    @property
    def filters(self):
        return self.inner.filters

    @property
    def nodes_touched(self) -> int:
        return self.inner.nodes_touched

    def gains(self):
        """All current ``I(v | A)`` from the wrapped session, uncounted."""
        # Reading the maintained state back is a copy, not a sweep: the
        # propagation work was already charged to session_init/update.
        return self.inner.gains()

    def gain(self, node):
        """One lazy gain read, counted as ``session_refresh``."""
        self.counts["session_refresh"] += 1
        return self.inner.gain(node)

    def add_filter(self, node):
        """One regional re-settle, counted as ``session_update``."""
        self.counts["session_update"] += 1
        return self.inner.add_filter(node)

    def gains_ids(self):
        """Id-indexed gains from the wrapped session, uncounted (a copy)."""
        return self.inner.gains_ids()

    def gain_id(self, node_id):
        """One lazy id gain read, counted as ``session_refresh``."""
        self.counts["session_refresh"] += 1
        return self.inner.gain_id(node_id)

    def add_filter_id(self, node_id):
        """One regional id re-settle, counted as ``session_update``."""
        self.counts["session_update"] += 1
        return self.inner.add_filter_id(node_id)
