"""The benchmark scenario matrix: dataset × algorithm × k × backend.

A :class:`BenchScenario` is one fully-specified measurement; a *suite* is a
named list of them.  Suites are plain functions so new matrices are one
function away, and every suite crosses the propagation backends available
in the environment unless the caller pins a subset.

Built-in suites
---------------
``toy``
    Seconds-long smoke matrix over the paper's figure graphs — what CI
    runs to keep the perf plumbing honest.
``default``
    The trajectory matrix: the paper-scale datasets × the four greedy
    algorithms × both backends.  ``BENCH.json`` files written from this
    suite are comparable across PRs.
``ablation``
    Eager vs lazy ``Greedy_All`` across backends — the engine ablation
    promised by :mod:`repro.core.greedy_all` (laziness only pays once a
    cheap evaluation engine exists; this matrix shows exactly that).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.exceptions import ParameterError


@dataclass(frozen=True)
class BenchScenario:
    """One benchmark cell: run ``algorithm`` on ``dataset`` with ``backend``.

    ``scale``/``seed`` parameterize the dataset generator (None means the
    generator's default scale).  ``key()`` identifies the cell across runs
    — the regression comparator matches prior and current records by it.
    """

    dataset: str
    algorithm: str
    k: int
    backend: str
    scale: float | None = None
    seed: int = 0

    def key(self) -> str:
        scale = "default" if self.scale is None else f"{self.scale:g}"
        return (
            f"{self.dataset}@{scale}/seed{self.seed}"
            f"/{self.algorithm}/k{self.k}/{self.backend}"
        )

    def graph_key(self) -> tuple[str, float | None, int]:
        """Cache key for the generated graph (shared across cells)."""
        return (self.dataset, self.scale, self.seed)


def _cross(
    cells: Sequence[tuple[str, float | None]],
    algorithms: Sequence[str],
    k: int,
    backends: Sequence[str],
    seed: int,
) -> list[BenchScenario]:
    return [
        BenchScenario(
            dataset=dataset,
            algorithm=algorithm,
            k=k,
            backend=backend,
            scale=scale,
            seed=seed,
        )
        for dataset, scale in cells
        for algorithm in algorithms
        for backend in backends
    ]


def toy_suite(
    *, backends: Sequence[str] | None = None, seed: int = 0
) -> list[BenchScenario]:
    """Seconds-long smoke matrix over the figure graphs."""
    backends = _resolve_backends(backends)
    return _cross(
        [("fig1", None), ("fig10", None)],
        ("G_All", "G_Max", "G_1", "G_L"),
        3,
        backends,
        seed,
    )


def default_suite(
    *, backends: Sequence[str] | None = None, seed: int = 0
) -> list[BenchScenario]:
    """The cross-PR trajectory matrix at paper scale."""
    backends = _resolve_backends(backends)
    cells: list[tuple[str, float | None]] = [
        ("synthetic-sparse", 2.0),  # n ≥ 2000: the backend speedup gate
        ("synthetic-dense", 1.0),
        ("quote", 1.0),
        ("citation", 1.0),
    ]
    return _cross(
        cells, ("G_All", "G_Max", "G_1", "G_L"), 10, backends, seed
    )


def ablation_suite(
    *, backends: Sequence[str] | None = None, seed: int = 0
) -> list[BenchScenario]:
    """Eager vs lazy ``Greedy_All`` across propagation backends.

    The comparison :class:`repro.core.greedy_all.LazyGreedyAll` documents:
    with a linear-sweep engine the lazy variant cannot win asymptotically,
    but the cheaper each sweep gets, the closer the two run — so the gap
    is itself a measure of engine cost.
    """
    backends = _resolve_backends(backends)
    return _cross(
        [("fig10", None), ("synthetic-sparse", 1.0)],
        ("G_All", "G_All_lazy"),
        8,
        backends,
        seed,
    )


_SUITES = {
    "toy": toy_suite,
    "default": default_suite,
    "ablation": ablation_suite,
}

#: Every built-in suite name, in presentation order.
SUITE_NAMES: tuple[str, ...] = tuple(_SUITES)


def _resolve_backends(backends: Sequence[str] | None) -> tuple[str, ...]:
    if backends is None:
        from repro.backends.registry import available_backends

        return available_backends()
    return tuple(backends)


def get_suite(
    name: str,
    *,
    backends: Sequence[str] | None = None,
    seed: int = 0,
) -> list[BenchScenario]:
    """The scenarios of the suite registered under ``name``."""
    try:
        factory = _SUITES[name]
    except KeyError:
        known = ", ".join(SUITE_NAMES)
        raise ParameterError(
            f"unknown bench suite {name!r}; known suites: {known}"
        ) from None
    return factory(backends=backends, seed=seed)
