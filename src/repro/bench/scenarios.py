"""The benchmark scenario matrix: dataset × algorithm × k × backend.

A :class:`BenchScenario` is one fully-specified measurement; a *suite* is a
named list of them.  Suites are plain functions so new matrices are one
function away, and every suite crosses the propagation backends available
in the environment unless the caller pins a subset.

Built-in suites
---------------
``toy``
    Seconds-long smoke matrix over the paper's figure graphs — what CI
    runs to keep the perf plumbing honest.  Includes ``G_All_lazy`` so
    the CI smoke can assert the lazy strategy's sweep count stays
    strictly below the eager one.
``default``
    The trajectory matrix: the paper-scale datasets × the greedy family
    (eager and lazy ``Greedy_All`` included) × both backends.
    ``BENCH.json`` files written from this suite are comparable across
    PRs.
``ablation``
    Eager vs lazy ``Greedy_All`` across backends — the engine ablation:
    the gap between the two is a direct read on how much of ``G_All``'s
    cost the incremental gain engine eliminates per backend.
``lazy``
    The lazy-strategy axis at trajectory scale: eager vs CELF on the
    default datasets at ``k ≥ 10``, where the acceptance bar is ≥5×
    fewer full propagation sweeps for the lazy cells
    (:func:`repro.bench.compare.lazy_savings`).
``service``
    The serving axis: the same placement request through
    :mod:`repro.service` against a cold vs a warm placement cache, where
    the acceptance bar is a ≥50× cold/hit latency ratio
    (:func:`repro.bench.compare.cache_speedup`).
``compile``
    The compile-once micro axis: time to build the shared
    :class:`~repro.graphs.compiled.CompiledGraph` plus its memory
    footprint (``evaluations["compiled_bytes"]``) per dataset scale.
    One plan feeds every backend, so these cells carry no backend axis
    beyond the placeholder ``python``.
``probabilistic``
    The propagation-model axis: ``Greedy_All`` (eager and CELF) under
    the live-edge model, scored by the seeded sample average over 64
    worlds.  The python/numpy cell pairs feed
    :func:`repro.bench.compare.mc_speedup`, whose acceptance bar is a
    ≥10× batched-vs-per-trial ratio at n≈2000.
``bitpack``
    The sweep-tier axis: the same many-source ``G_All`` cell on the
    ``bitpack`` (aggregated, source-count-independent) and ``lanes``
    (one sweep per source) tiers of each backend, with the first
    :data:`BITPACK_SOURCES` nodes re-designated as sources.  The
    bitpack/lanes pairs feed :func:`repro.bench.compare.bitpack_speedup`
    (acceptance bar: ≥10× on the largest deterministic cells).
``parallel``
    The world-shard axis: the probabilistic n≈2000 cell with the
    evaluation pinned to 1 vs 4 process-pool workers.  Placements are
    bit-identical by contract (``tests/test_parallel_worlds.py``); the
    cells track what the wall-clock does.
``scale``
    The million-node scale tier on ``scale-dag`` rungs: all three
    execution strategies where exact is cheap (n=3·10^3), the
    exact-vs-sketch comparison pair at n=3·10^4
    (:func:`repro.bench.compare.sketch_speedup` /
    :func:`repro.bench.compare.sketch_error` — since the blocked
    reachability warm the sketch's wall-clock win lives at n=10^6,
    the rung exact's Φ sweep cannot afford), streamed exact cells at
    n=5·10^4 and n=10^5 (feasible since the blocked reachability warm),
    sketch estimator-scored cells at n=10^5 and n=10^6
    (``/streamed/est`` keys) — plus a streamed ingestion cell recording
    the resident/mapped byte split.
``warm``
    The warm-cost axis: fresh-backend exact ``G_All`` cells at the
    ``scale-dag`` rungs whose ``plan_seconds`` column *is* the one-time
    adapter warm — the blocked reachability sweep under measurement.
    Cross-run, :func:`repro.bench.compare.warm_speedup` divides prior
    vs current plan cost on the overlapping keys (acceptance bar: ≥10×
    at n=5·10^4 against the pre-blocked baseline).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.exceptions import ParameterError


#: Measurement modes: ``algorithm`` times ``algorithm.place`` directly;
#: the ``service_*`` modes time the serving path of :mod:`repro.service`
#: (cold cache miss vs cached hit) for the same request; ``compile``
#: times only the shared :class:`~repro.graphs.compiled.CompiledGraph`
#: build (and records its memory footprint).
SCENARIO_MODES: tuple[str, ...] = (
    "algorithm",
    "service_cold",
    "service_hit",
    "compile",
)


@dataclass(frozen=True)
class BenchScenario:
    """One benchmark cell: run ``algorithm`` on ``dataset`` with ``backend``.

    ``scale``/``seed`` parameterize the dataset generator (None means the
    generator's default scale).  ``mode`` selects what is timed — the bare
    algorithm, or the service's cold-miss / cached-hit request path for
    the identical placement.  ``model``/``edge_prob``/``trials`` put the
    cell on the propagation-model axis: a non-deterministic model scores
    every evaluation as the seeded sample average over ``trials``
    live-edge worlds at the given uniform edge probability (the cell's
    ``seed`` also seeds the world sampler, so records stay reproducible).
    ``key()`` identifies the cell across runs — the regression comparator
    matches prior and current records by it.
    """

    dataset: str
    algorithm: str
    k: int
    backend: str
    scale: float | None = None
    seed: int = 0
    mode: str = "algorithm"
    model: str = "deterministic"
    edge_prob: float = 1.0
    trials: int = 0
    #: Re-designate the first N nodes as sources (0 = the dataset's own
    #: sources).  The bitpack cells use this: the real datasets carry a
    #: single source, which is exactly the regime where the per-source
    #: lanes tier is cheapest and the aggregated tier has nothing to win.
    sources: int = 0
    #: Deterministic sweep tier of the cell's backend (``bitpack`` |
    #: ``lanes``).  ``bitpack`` is every backend's default; ``lanes``
    #: cells pin the historical per-source formulation as the baseline
    #: the ``bitpack_speedup`` comparator divides against.
    tier: str = "bitpack"
    #: World-shard worker count for probabilistic cells (0 = inherit the
    #: ambient :func:`repro.propagation.parallel.active_workers` value;
    #: >0 pins the cell, 1 meaning explicitly serial).
    workers: int = 0
    #: Build the graph through the streamed loader
    #: (``get_dataset(..., streamed=True)`` →
    #: :class:`repro.graphs.largescale.StreamedGraph`) instead of
    #: materializing a :class:`~repro.graphs.cgraph.CGraph`.  The graph
    #: is identical either way; what changes is the construction path —
    #: which is exactly what a streamed ``compile`` cell times.
    streamed: bool = False
    #: Whether the score phase computes the exact objective (Φ sweeps).
    #: The scale tier's estimator cells turn this off: one exact Φ
    #: sweep at the n = 10^6 rung is the cost the sketch strategy
    #: exists to avoid.  Unscored cells record the sum of the
    #: recorded step gains (the estimator objective for an unrescored
    #: sketch run) and a filter ratio of 0.0.
    exact_score: bool = True
    #: Build this cell's backend fresh instead of resolving the process
    #: singleton, so the backend's one-time warm cost lands in the
    #: cell's ``plan_seconds`` rather than being amortized invisibly
    #: across the suite.  The scale and warm tiers' exact cells use
    #: this: the one-time blocked reachability warm *is* the cost under
    #: measurement, while the warmed sweeps are milliseconds.
    #: Key-silent — attribution, not identity.
    fresh_backend: bool = False

    def key(self) -> str:
        """``dataset@scale/seedN/algorithm/kK/backend[/…]``.

        ``compile`` cells use ``compile`` on the algorithm axis (with
        ``k=0``), so their keys need no extra suffix.  Non-default axes
        append suffixes — ``/srcN`` (re-designated sources),
        ``/tier-lanes`` (pinned lanes tier), ``/model-pP-tT``
        (probabilistic model), ``/wN`` (pinned world workers),
        ``/streamed`` (streamed graph construction), ``/est``
        (estimator-scored, no exact objective) — while default-valued
        axes add nothing, so prior ``BENCH.json`` baselines keep
        matching.
        """
        scale = "default" if self.scale is None else f"{self.scale:g}"
        base = (
            f"{self.dataset}@{scale}/seed{self.seed}"
            f"/{self.algorithm}/k{self.k}/{self.backend}"
        )
        if self.sources:
            base += f"/src{self.sources}"
        if self.tier != "bitpack":
            base += f"/tier-{self.tier}"
        if self.model != "deterministic":
            base += f"/{self.model}-p{self.edge_prob:g}-t{self.trials}"
        if self.workers:
            base += f"/w{self.workers}"
        if self.streamed:
            base += "/streamed"
        if not self.exact_score:
            base += "/est"
        if self.mode == "service_cold":
            return f"{base}/cold"
        if self.mode == "service_hit":
            return f"{base}/hit"
        return base

    def graph_key(self) -> tuple[str, float | None, int, int, bool]:
        """Cache key for the generated graph (shared across cells)."""
        return (
            self.dataset, self.scale, self.seed, self.sources,
            self.streamed,
        )


def _cross(
    cells: Sequence[tuple[str, float | None]],
    algorithms: Sequence[str],
    k: int,
    backends: Sequence[str],
    seed: int,
) -> list[BenchScenario]:
    return [
        BenchScenario(
            dataset=dataset,
            algorithm=algorithm,
            k=k,
            backend=backend,
            scale=scale,
            seed=seed,
        )
        for dataset, scale in cells
        for algorithm in algorithms
        for backend in backends
    ]


def toy_suite(
    *, backends: Sequence[str] | None = None, seed: int = 0
) -> list[BenchScenario]:
    """Seconds-long smoke matrix over the figure graphs."""
    backends = _resolve_backends(backends)
    return _cross(
        [("fig1", None), ("fig10", None)],
        ("G_All", "G_All_lazy", "G_Max", "G_1", "G_L"),
        3,
        backends,
        seed,
    )


def default_suite(
    *, backends: Sequence[str] | None = None, seed: int = 0
) -> list[BenchScenario]:
    """The cross-PR trajectory matrix at paper scale.

    Includes the service cells (cold-miss vs cached-hit on the default
    serving scenario) so the committed ``BENCH.json`` tracks serving
    latency alongside raw algorithm cost.
    """
    backends = _resolve_backends(backends)
    cells: list[tuple[str, float | None]] = [
        ("synthetic-sparse", 2.0),  # n ≥ 2000: the backend speedup gate
        ("synthetic-dense", 1.0),
        ("quote", 1.0),
        ("citation", 1.0),
    ]
    scenarios = _cross(
        cells, ("G_All", "G_All_lazy", "G_Max", "G_1", "G_L"), 10,
        backends, seed
    )
    scenarios.extend(
        _service_cells([("synthetic-sparse", 2.0)], backends, seed)
    )
    # One compile cell per dataset so the trajectory file also tracks the
    # one-time plan cost the solve cells amortize.
    scenarios.extend(_compile_cells(cells, seed))
    # Probabilistic cells at the n≈2000 gate scale: the python-vs-numpy
    # pair behind the ≥10× batched-sampler acceptance bar
    # (:func:`repro.bench.compare.mc_speedup`).
    scenarios.extend(
        _probabilistic_cells([("quote", 2.2)], backends, seed)
    )
    # Sweep-tier cells: bitpack vs lanes on the many-source matrix —
    # the ≥10× :func:`repro.bench.compare.bitpack_speedup` gate cells.
    scenarios.extend(
        _bitpack_cells(
            [("synthetic-sparse", 2.0), ("citation", 1.0)], backends, seed
        )
    )
    # World-shard cells: the probabilistic python cell pinned to 1 vs 4
    # pool workers (bit-identical placements, tracked wall-clock).
    scenarios.extend(_parallel_cells([("quote", 2.2)], seed))
    return scenarios


def _service_cells(
    cells: Sequence[tuple[str, float | None]],
    backends: Sequence[str],
    seed: int,
) -> list[BenchScenario]:
    return [
        BenchScenario(
            dataset=dataset,
            algorithm="G_All",
            k=10,
            backend=backend,
            scale=scale,
            seed=seed,
            mode=mode,
        )
        for dataset, scale in cells
        for backend in backends
        for mode in ("service_cold", "service_hit")
    ]


def _compile_cells(
    cells: Sequence[tuple[str, float | None]], seed: int
) -> list[BenchScenario]:
    return [
        BenchScenario(
            dataset=dataset,
            algorithm="compile",
            k=0,
            backend="python",
            scale=scale,
            seed=seed,
            mode="compile",
        )
        for dataset, scale in cells
    ]


#: Default model parameters of the ``probabilistic`` suite cells: the
#: acceptance bar ("batched NumPy sampler ≥10× the per-trial Python loop
#: at n≈2000 with 64 samples") pins the trial count; 0.9 models the
#: mostly-reliable links of an information network (the per-trial loop's
#: cost scales with live edges, the batched sampler's does not — the
#: ratio is honest at any p, this one just reflects realistic traffic).
PROBABILISTIC_EDGE_PROB = 0.9
PROBABILISTIC_TRIALS = 64


def _probabilistic_cells(
    cells: Sequence[tuple[str, float | None]],
    backends: Sequence[str],
    seed: int,
    algorithms: Sequence[str] = ("G_All",),
) -> list[BenchScenario]:
    return [
        BenchScenario(
            dataset=dataset,
            algorithm=algorithm,
            k=10,
            backend=backend,
            scale=scale,
            seed=seed,
            model="live-edge",
            edge_prob=PROBABILISTIC_EDGE_PROB,
            trials=PROBABILISTIC_TRIALS,
        )
        for dataset, scale in cells
        for algorithm in algorithms
        for backend in backends
    ]


def probabilistic_suite(
    *, backends: Sequence[str] | None = None, seed: int = 0
) -> list[BenchScenario]:
    """The propagation-model axis: SAA ``Greedy_All`` across backends.

    Each cell runs ``G_All`` (eager and CELF-under-SAA) with the
    live-edge model at ``p =`` :data:`PROBABILISTIC_EDGE_PROB` and
    :data:`PROBABILISTIC_TRIALS` sampled worlds; the cell's record
    carries ``model``/``trials`` so the comparator can match the
    python/numpy pairs.  The acceptance bar —
    :func:`repro.bench.compare.mc_speedup` ≥ 10 on the n≈2000 cell — is
    the batched-sampler-vs-per-trial-loop headline the tentpole promises.
    """
    backends = _resolve_backends(backends)
    return _probabilistic_cells(
        [("fig10", None), ("quote", 2.2)],
        backends,
        seed,
        algorithms=("G_All", "G_All_lazy"),
    )


#: Sources re-designated by the ``bitpack`` suite cells.  The paper
#: datasets carry one source each — the degenerate best case for the
#: per-source lanes tier — so the tier cells widen the source axis to a
#: multi-lane width (256 sources = 4 uint64 lanes) where the aggregated
#: formulation's source-count independence actually shows.
BITPACK_SOURCES = 256

#: Worker counts the ``parallel`` suite pins its cells to.
PARALLEL_WORKERS: tuple[int, ...] = (1, 4)


def _bitpack_cells(
    cells: Sequence[tuple[str, float | None]],
    backends: Sequence[str],
    seed: int,
    *,
    sources: int = BITPACK_SOURCES,
) -> list[BenchScenario]:
    return [
        BenchScenario(
            dataset=dataset,
            algorithm="G_All",
            k=10,
            backend=backend,
            scale=scale,
            seed=seed,
            sources=sources,
            tier=tier,
        )
        for dataset, scale in cells
        for backend in backends
        for tier in ("bitpack", "lanes")
    ]


def _parallel_cells(
    cells: Sequence[tuple[str, float | None]],
    seed: int,
) -> list[BenchScenario]:
    return [
        BenchScenario(
            dataset=dataset,
            algorithm="G_All",
            k=10,
            backend="python",
            scale=scale,
            seed=seed,
            model="live-edge",
            edge_prob=PROBABILISTIC_EDGE_PROB,
            trials=PROBABILISTIC_TRIALS,
            workers=workers,
        )
        for dataset, scale in cells
        for workers in PARALLEL_WORKERS
    ]


def bitpack_suite(
    *, backends: Sequence[str] | None = None, seed: int = 0
) -> list[BenchScenario]:
    """The sweep-tier axis: bitpack vs lanes on many-source cells.

    Each (dataset, backend) pair appears twice — once on the default
    ``bitpack`` tier and once pinned to ``lanes`` (key suffix
    ``/tier-lanes``) — with :data:`BITPACK_SOURCES` nodes re-designated
    as sources.  ``fig10`` is the toy cell CI's bench-smoke asserts on;
    the paper-scale cells carry the ≥10×
    :func:`repro.bench.compare.bitpack_speedup` acceptance bar.
    """
    backends = _resolve_backends(backends)
    return _bitpack_cells(
        [
            ("fig10", None),
            ("synthetic-sparse", 2.0),
            ("citation", 1.0),
        ],
        backends,
        seed,
    )


def parallel_suite(
    *, backends: Sequence[str] | None = None, seed: int = 0
) -> list[BenchScenario]:
    """The world-shard axis: serial vs process-pool sampled evaluation.

    The per-trial python loop on the probabilistic n≈2000 cell, pinned
    to each worker count in :data:`PARALLEL_WORKERS`.  The determinism
    contract (bit-identical placements/objectives for every worker
    count) is enforced by ``tests/test_parallel_worlds.py``; these cells
    track the wall-clock of the same evaluation.
    """
    del backends  # the shard axis is a python-loop property
    return _parallel_cells([("quote", 2.2)], seed)


#: The ``scale`` suite's dataset rungs, as ``scale-dag`` scale factors:
#: 0.03 → n=3·10^3 (every strategy, exact-scored), 0.3 → n=3·10^4 (the
#: ≥10× sketch-vs-exact gate), 0.5 → n=5·10^4 and 1.0 → n=10^5 (exact
#: climbs here too since the blocked reachability warm replaced the
#: superquadratic monolithic build — the rungs the old warm could not
#: finish), 10.0 → n=10^6 (streamed, sketch-only, estimator-scored: one
#: exact Φ sweep at matrix scale is the cost the sketch strategy
#: exists to avoid).
SCALE_RUNGS: tuple[float, ...] = (0.03, 0.3, 0.5, 1.0, 10.0)

#: The ``warm`` suite's rungs: ``(scale, streamed)`` pairs.  The two
#: trajectory rungs keep the in-memory construction so their keys match
#: the committed ``BENCH.scale.json`` cells (that overlap is what
#: :func:`repro.bench.compare.warm_speedup` divides against); the upper
#: rungs ride the streamed loader — at n ≥ 5·10^4 a materialized python
#: edge list is pure overhead the scale tier never pays.
WARM_RUNGS: tuple[tuple[float, bool], ...] = (
    (0.03, False),
    (0.3, False),
    (0.5, True),
    (1.0, True),
)


def scale_suite(
    *, backends: Sequence[str] | None = None, seed: int = 0
) -> list[BenchScenario]:
    """The scale tier: the sketch strategy climbing the ``scale-dag`` rungs.

    One backend carries the axis (numpy when available — the tier's
    intended lane; the suite is about strategy scaling, not the backend
    cross).  Cells:

    * ``@0.03`` — ``G_All``/``G_All_lazy``/``G_All_sketch``, exact-scored;
      the sketch cell still pays its exact prefix rescore here (n below
      the rescore guard), so its recorded gains are exact.
    * ``@0.3`` — ``G_All`` vs selection-only ``G_All_sketch``, both
      exact-scored in the score phase: the
      :func:`repro.bench.compare.sketch_speedup` and
      :func:`repro.bench.compare.sketch_error` (objective within
      ``1−ε``) comparison pair.  The exact cells carry
      ``fresh_backend`` so their one-time adapter warm is attributed to
      their own ``plan_seconds`` — since the blocked reachability sweep
      flattened that warm, exact wins this rung outright and the
      sketch's speedup case rests on the n=10^6 rung exact cannot run.
    * ``@0.5`` / ``@1.0`` — streamed exact ``G_All``: the rungs the old
      monolithic reach-mask warm could not finish, now minutes→seconds
      under the blocked out-of-core sweep (``fresh_backend`` keeps that
      warm in their ``plan_seconds``).
    * ``@1.0`` / ``@10.0`` — streamed ingestion, sketch,
      ``exact_score=False``: the estimator lane.  The n=10^6 cell is
      the honest million-node measurement.
    * a streamed ``compile`` cell at ``@1.0`` timing generator→CSR
      ingestion (no materialized edge list) and recording the
      resident/mapped compiled-byte split.
    """
    backends = _resolve_backends(backends)
    backend = "numpy" if "numpy" in backends else backends[0]
    scenarios = [
        BenchScenario(
            dataset="scale-dag",
            algorithm=algorithm,
            k=10,
            backend=backend,
            scale=0.03,
            seed=seed,
            fresh_backend=algorithm != "G_All_sketch",
        )
        for algorithm in ("G_All", "G_All_lazy", "G_All_sketch")
    ]
    scenarios.extend(
        BenchScenario(
            dataset="scale-dag",
            algorithm=algorithm,
            k=10,
            backend=backend,
            scale=0.3,
            seed=seed,
            fresh_backend=algorithm != "G_All_sketch",
        )
        for algorithm in ("G_All", "G_All_sketch")
    )
    # The rungs the monolithic warm could never finish: exact ``G_All``
    # at n=5·10^4 and n=10^5 on streamed graphs, fresh-backend so the
    # blocked reachability warm is attributed to their ``plan_seconds``.
    scenarios.extend(
        BenchScenario(
            dataset="scale-dag",
            algorithm="G_All",
            k=10,
            backend=backend,
            scale=scale,
            seed=seed,
            streamed=True,
            fresh_backend=True,
        )
        for scale in (0.5, 1.0)
    )
    scenarios.extend(
        BenchScenario(
            dataset="scale-dag",
            algorithm="G_All_sketch",
            k=10,
            backend=backend,
            scale=scale,
            seed=seed,
            streamed=True,
            exact_score=False,
        )
        for scale in (1.0, 10.0)
    )
    scenarios.append(
        BenchScenario(
            dataset="scale-dag",
            algorithm="compile",
            k=0,
            backend="python",
            scale=1.0,
            seed=seed,
            mode="compile",
            streamed=True,
        )
    )
    return scenarios


def warm_suite(
    *, backends: Sequence[str] | None = None, seed: int = 0
) -> list[BenchScenario]:
    """The warm-cost axis: fresh-backend exact cells at the scale rungs.

    Every cell is the same exact ``G_All`` ``k=10`` measurement on a
    ``scale-dag`` rung with ``fresh_backend`` set, so the cell's
    ``plan_seconds`` *is* the one-time warm cost under measurement —
    dominated by the blocked reachability sweep
    (:func:`repro.propagation.reach.warm_reach_counts`), which is the
    quantity this suite tracks across PRs.  The solve itself is
    milliseconds at every rung; the suite exists for the plan column.

    Rungs come from :data:`WARM_RUNGS` — the two trajectory rungs keep
    in-memory construction so their keys overlap the committed
    ``BENCH.scale.json`` (the baseline
    :func:`repro.bench.compare.warm_speedup` divides against; ≥10× at
    n=5·10^4 is the acceptance bar), the upper rungs stream.
    """
    backends = _resolve_backends(backends)
    backend = "numpy" if "numpy" in backends else backends[0]
    return [
        BenchScenario(
            dataset="scale-dag",
            algorithm="G_All",
            k=10,
            backend=backend,
            scale=scale,
            seed=seed,
            streamed=streamed,
            fresh_backend=True,
        )
        for scale, streamed in WARM_RUNGS
    ]


def apply_model(
    scenarios: Sequence[BenchScenario],
    *,
    model: str,
    edge_prob: float,
    trials: int,
) -> list[BenchScenario]:
    """Re-parameterize a suite's algorithm cells onto a relaying model.

    The CLI's ``bench --model`` flag: every ``algorithm``-mode cell gets
    the model axis applied (service/compile cells measure serving and
    plan cost, which the model does not change, and pass through
    untouched).  ``model="deterministic"`` — or unit probabilities,
    which *are* deterministic relaying and would otherwise label
    exact-path cells as probabilistic — returns the suite as-is,
    matching the normalization ``place`` and the service apply.
    """
    from dataclasses import replace

    if model == "deterministic" or edge_prob >= 1.0:
        return list(scenarios)
    return [
        replace(s, model=model, edge_prob=edge_prob, trials=trials)
        if s.mode == "algorithm"
        else s
        for s in scenarios
    ]


def compile_suite(
    *, backends: Sequence[str] | None = None, seed: int = 0
) -> list[BenchScenario]:
    """The compile-once micro axis: plan build time + bytes per dataset.

    Each cell rebuilds the graph fresh and times only
    ``CGraph.compiled()`` — the one-time cost that the solve suites pay
    outside their timed regions — and records the compiled tables'
    memory via ``evaluations["compiled_bytes"]``.  ``backends`` is
    accepted for signature uniformity but ignored: the compiled plan is
    backend-independent by construction.
    """
    del backends  # one shared plan; there is no backend axis to cross
    cells: list[tuple[str, float | None]] = [
        ("fig10", None),
        ("quote", 1.0),
        ("citation", 1.0),
        ("synthetic-sparse", 1.0),
        ("synthetic-sparse", 2.0),
        ("synthetic-dense", 1.0),
    ]
    return _compile_cells(cells, seed)


def service_suite(
    *, backends: Sequence[str] | None = None, seed: int = 0
) -> list[BenchScenario]:
    """The serving axis: cold-miss latency vs cached-hit latency.

    For each (dataset, backend) the pair of cells measures the same
    ``G_All`` ``k=10`` request through :mod:`repro.service` — first
    against an empty placement cache (job submission + full computation +
    payload build), then against a warm one (pure lookup).  The
    acceptance bar is a cold/hit ratio ≥ 50 on the default scenario
    (``synthetic-sparse@2.0``), checked by
    :func:`repro.bench.compare.cache_speedup`.
    """
    backends = _resolve_backends(backends)
    cells: list[tuple[str, float | None]] = [
        ("synthetic-sparse", 2.0),
        ("quote", 1.0),
    ]
    return _service_cells(cells, backends, seed)


def ablation_suite(
    *, backends: Sequence[str] | None = None, seed: int = 0
) -> list[BenchScenario]:
    """Eager vs lazy ``Greedy_All`` across propagation backends.

    With the incremental gain engine behind
    :class:`repro.core.celf.CelfGreedyAll`, the lazy variant replaces all
    but one of the eager run's full sweeps with regional updates — the
    wall-clock gap per backend measures how much of ``G_All``'s cost was
    sweep work that laziness can skip.
    """
    backends = _resolve_backends(backends)
    return _cross(
        [("fig10", None), ("synthetic-sparse", 1.0)],
        ("G_All", "G_All_lazy"),
        8,
        backends,
        seed,
    )


def lazy_suite(
    *, backends: Sequence[str] | None = None, seed: int = 0
) -> list[BenchScenario]:
    """The lazy-strategy axis: eager vs CELF at trajectory scale.

    Same datasets as the ``default`` suite, restricted to the two
    ``Greedy_All`` executions at ``k = 10`` — the matrix behind the
    "≥5× fewer propagation evaluations at k ≥ 10" acceptance bar, which
    :func:`repro.bench.compare.lazy_savings` checks on the records.
    """
    backends = _resolve_backends(backends)
    cells: list[tuple[str, float | None]] = [
        ("synthetic-sparse", 2.0),
        ("synthetic-dense", 1.0),
        ("quote", 1.0),
        ("citation", 1.0),
    ]
    return _cross(cells, ("G_All", "G_All_lazy"), 10, backends, seed)


_SUITES = {
    "toy": toy_suite,
    "default": default_suite,
    "ablation": ablation_suite,
    "lazy": lazy_suite,
    "service": service_suite,
    "compile": compile_suite,
    "probabilistic": probabilistic_suite,
    "bitpack": bitpack_suite,
    "parallel": parallel_suite,
    "scale": scale_suite,
    "warm": warm_suite,
}

#: Every built-in suite name, in presentation order.
SUITE_NAMES: tuple[str, ...] = tuple(_SUITES)


def _resolve_backends(backends: Sequence[str] | None) -> tuple[str, ...]:
    if backends is None:
        from repro.backends.registry import available_backends

        return available_backends()
    return tuple(backends)


def get_suite(
    name: str,
    *,
    backends: Sequence[str] | None = None,
    seed: int = 0,
) -> list[BenchScenario]:
    """The scenarios of the suite registered under ``name``."""
    try:
        factory = _SUITES[name]
    except KeyError:
        known = ", ".join(SUITE_NAMES)
        raise ParameterError(
            f"unknown bench suite {name!r}; known suites: {known}"
        ) from None
    return factory(backends=backends, seed=seed)
