"""Regression comparison between two ``BENCH.json`` documents.

Cells are matched by scenario key.  Two kinds of drift are reported:

* **Performance** — the seconds ratio ``current / prior``.  A cell whose
  ratio exceeds the regression threshold is flagged; machine noise on
  sub-millisecond cells is ignored via ``min_seconds``.
* **Results** — for deterministic algorithms the chosen filter sequence
  must be identical run-to-run; any difference is flagged regardless of
  timing (a correctness, not a speed, signal).

Typical use::

    filter-placement bench --suite default --out BENCH.json \
        --compare BENCH.prior.json --fail-on-regression 1.5
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.core.registry import DETERMINISTIC_ALGORITHM_NAMES

#: Cells faster than this are too noisy to call a regression on.
DEFAULT_MIN_SECONDS = 1e-3


@dataclass(frozen=True)
class CellComparison:
    """One matched scenario cell, prior vs current."""

    key: str
    algorithm: str
    prior_seconds: float
    current_seconds: float
    filters_changed: bool

    @property
    def ratio(self) -> float:
        """``current / prior`` wall-clock ratio (inf when prior was 0)."""
        if self.prior_seconds <= 0:
            return float("inf") if self.current_seconds > 0 else 1.0
        return self.current_seconds / self.prior_seconds


@dataclass
class ComparisonReport:
    """Outcome of diffing a current document against a prior one."""

    cells: list[CellComparison] = field(default_factory=list)
    regressions: list[CellComparison] = field(default_factory=list)
    result_drift: list[CellComparison] = field(default_factory=list)
    only_in_prior: list[str] = field(default_factory=list)
    only_in_current: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing regressed and no deterministic result moved."""
        return not self.regressions and not self.result_drift


def compare_documents(
    prior: dict[str, Any],
    current: dict[str, Any],
    *,
    regression_ratio: float = 1.5,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> ComparisonReport:
    """Diff two validated bench documents."""
    prior_rows = {row["key"]: row for row in prior["results"]}
    current_rows = {row["key"]: row for row in current["results"]}
    report = ComparisonReport(
        only_in_prior=sorted(set(prior_rows) - set(current_rows)),
        only_in_current=sorted(set(current_rows) - set(prior_rows)),
    )
    for key in sorted(set(prior_rows) & set(current_rows)):
        p, c = prior_rows[key], current_rows[key]
        deterministic = c["algorithm"] in DETERMINISTIC_ALGORITHM_NAMES
        cell = CellComparison(
            key=key,
            algorithm=c["algorithm"],
            prior_seconds=float(p["seconds"]),
            current_seconds=float(c["seconds"]),
            filters_changed=deterministic
            and list(p["filters"]) != list(c["filters"]),
        )
        report.cells.append(cell)
        if cell.filters_changed:
            report.result_drift.append(cell)
        slow_enough = max(cell.prior_seconds, cell.current_seconds) >= min_seconds
        if slow_enough and cell.ratio > regression_ratio:
            report.regressions.append(cell)
    return report


def format_comparison(report: ComparisonReport) -> str:
    """Human-readable comparison summary (CLI output)."""
    from repro.analysis.report import format_table

    lines: list[str] = []
    if report.cells:
        rows = [
            [
                cell.key,
                f"{cell.prior_seconds * 1e3:.1f}",
                f"{cell.current_seconds * 1e3:.1f}",
                f"{cell.ratio:.2f}x",
                "CHANGED" if cell.filters_changed else "",
            ]
            for cell in report.cells
        ]
        lines.append(
            format_table(
                ["scenario", "prior ms", "current ms", "ratio", "filters"],
                rows,
            )
        )
    else:
        lines.append("(no overlapping scenarios)")
    if report.only_in_prior:
        lines.append(f"dropped cells: {', '.join(report.only_in_prior)}")
    if report.only_in_current:
        lines.append(f"new cells: {', '.join(report.only_in_current)}")
    if report.result_drift:
        lines.append(
            f"RESULT DRIFT in {len(report.result_drift)} deterministic "
            "cell(s) — filter sets changed"
        )
    if report.regressions:
        worst = max(report.regressions, key=lambda c: c.ratio)
        lines.append(
            f"PERF REGRESSION in {len(report.regressions)} cell(s); "
            f"worst {worst.ratio:.2f}x on {worst.key}"
        )
    if report.ok:
        lines.append("comparison OK: no regressions, no result drift")
    return "\n".join(lines)


def lazy_savings(
    records_or_rows: Sequence[Any],
    *,
    eager: str = "G_All",
    lazy: str = "G_All_lazy",
) -> dict[str, float]:
    """Per-cell sweep-count ratio eager / lazy (higher = laziness paying).

    Matches cells that differ only in the algorithm axis and divides
    their full-graph *propagation evaluation* counts
    (:func:`repro.bench.instrument.sweep_count` — incremental session
    operations are deliberately excluded; they are the cheap currency the
    lazy strategy pays instead).  The acceptance bar for the ``lazy``
    suite is a ratio ≥ 5 on every cell at ``k ≥ 10``.

    Accepts :class:`~repro.bench.results.BenchRecord` objects or raw
    ``results`` rows; returns ``{lazy-cell-key: ratio}``.
    """
    from repro.bench.instrument import sweep_count

    rows = [
        r.to_json_dict() if hasattr(r, "to_json_dict") else r
        for r in records_or_rows
    ]
    sweeps = {
        row["key"]: sweep_count(row.get("evaluations", {})) for row in rows
    }
    ratios: dict[str, float] = {}
    for row in rows:
        if row["algorithm"] != lazy:
            continue
        key = row["key"]
        eager_key = key.replace(f"/{lazy}/", f"/{eager}/")
        if eager_key not in sweeps or eager_key == key:
            continue
        lazy_sweeps = sweeps[key]
        ratios[key] = (
            float("inf")
            if lazy_sweeps == 0
            else sweeps[eager_key] / lazy_sweeps
        )
    return ratios


def cache_speedup(
    records_or_rows: Sequence[Any],
) -> dict[str, float]:
    """Per-cell latency ratio cold-miss / cached-hit on service cells.

    Matches ``…/cold`` and ``…/hit`` key pairs produced by the
    ``service`` suite and divides their wall-clock seconds.  The
    acceptance bar is a ratio ≥ 50 on the default serving scenario —
    a cached placement must be at least 50× cheaper than computing one.

    Accepts :class:`~repro.bench.results.BenchRecord` objects or raw
    ``results`` rows; returns ``{hit-cell-key: ratio}``.
    """
    rows = [
        r.to_json_dict() if hasattr(r, "to_json_dict") else r
        for r in records_or_rows
    ]
    seconds = {row["key"]: float(row["seconds"]) for row in rows}
    ratios: dict[str, float] = {}
    for key, hit_seconds in seconds.items():
        if not key.endswith("/hit"):
            continue
        cold_key = key[: -len("/hit")] + "/cold"
        if cold_key not in seconds:
            continue
        ratios[key] = (
            float("inf")
            if hit_seconds == 0
            else seconds[cold_key] / hit_seconds
        )
    return ratios


def mc_speedup(
    records_or_rows: Sequence[Any],
    *,
    baseline: str = "python",
) -> dict[str, float]:
    """Per-cell Monte-Carlo speedup: per-trial python loop vs batched numpy.

    Restricted to probabilistic cells (``model != "deterministic"``) and
    matched across the backend axis only — dataset, algorithm, ``k``,
    model, ``edge_prob`` and ``trials`` all identical.  The ratio is
    ``baseline_seconds / other_seconds`` for each non-baseline backend:
    how many times faster the batched sample-axis sweeps evaluate the
    same worlds than the per-trial pure-Python loop.  The acceptance bar
    is ≥ 10 on the ``n≈2000 / 64 samples`` cell of the ``probabilistic``
    suite (recorded in the committed ``BENCH.json``).

    Accepts :class:`~repro.bench.results.BenchRecord` objects or raw
    ``results`` rows; returns ``{non-baseline-cell-key: ratio}``.
    """
    rows = [
        r.to_json_dict() if hasattr(r, "to_json_dict") else r
        for r in records_or_rows
    ]
    prob_rows = [
        row for row in rows
        if row.get("model", "deterministic") != "deterministic"
    ]
    # Probabilistic keys look like …/k10/<backend>/<model-pP-tT>: strip
    # the backend component (second-to-last) to get the match stem.
    base: dict[str, float] = {}
    others: dict[str, tuple[str, float]] = {}
    for row in prob_rows:
        head, _, model_part = row["key"].rpartition("/")
        stem_head, _, backend = head.rpartition("/")
        stem = f"{stem_head}/{model_part}"
        if backend == baseline:
            base[stem] = float(row["seconds"])
        else:
            others[row["key"]] = (stem, float(row["seconds"]))
    speedups: dict[str, float] = {}
    for key, (stem, seconds) in others.items():
        if stem in base and seconds > 0:
            speedups[key] = base[stem] / seconds
    return speedups


def bitpack_speedup(
    records_or_rows: Sequence[Any],
) -> dict[str, float]:
    """Per-cell sweep-tier speedup: per-source lanes vs bit-packed sweeps.

    Matches the ``…/tier-lanes`` cells produced by the ``bitpack`` suite
    against their default-tier twins (identical key with the suffix
    removed) and divides their wall-clock seconds:
    ``lanes_seconds / bitpack_seconds`` — how many times faster the
    aggregated bit-packed formulation evaluates the same many-source
    cell than one exact sweep per source.  The acceptance bar is ≥ 10
    on the largest deterministic cells of the committed ``BENCH.json``;
    CI's bench-smoke asserts > 1 on the toy cell.

    Accepts :class:`~repro.bench.results.BenchRecord` objects or raw
    ``results`` rows; returns ``{bitpack-cell-key: ratio}``.
    """
    rows = [
        r.to_json_dict() if hasattr(r, "to_json_dict") else r
        for r in records_or_rows
    ]
    seconds = {row["key"]: float(row["seconds"]) for row in rows}
    ratios: dict[str, float] = {}
    for key, lanes_seconds in seconds.items():
        if "/tier-lanes" not in key:
            continue
        fast_key = key.replace("/tier-lanes", "")
        fast_seconds = seconds.get(fast_key)
        if fast_seconds is None:
            continue
        ratios[fast_key] = (
            float("inf")
            if fast_seconds == 0
            else lanes_seconds / fast_seconds
        )
    return ratios


def sketch_speedup(
    records_or_rows: Sequence[Any],
    *,
    exact: str = "G_All",
    sketch: str = "G_All_sketch",
) -> dict[str, float]:
    """Per-cell end-to-end speedup of the sketch strategy over exact.

    Matches sketch cells against the exact cell that differs only on the
    algorithm axis and divides end-to-end cost — ``plan_seconds +
    seconds``, the time to an answer on a fresh graph.  Solve-only
    seconds would flatter exact: its one-time plan/warm lives in the
    ``plan_seconds`` column, which the ``scale`` suite's exact cells
    carry themselves via ``fresh_backend``.  Historically the warm was
    superquadratic in n and this ratio cleared 100× at n=3·10^4; the
    blocked reachability sweep flattened it, so on rungs exact can run
    the ratio now hovers near (or below) 1 — the sketch's remaining
    case is the n=10^6 rung, where one exact Φ sweep is the cost the
    estimator exists to avoid and exact has no cell at all.

    Accepts :class:`~repro.bench.results.BenchRecord` objects or raw
    ``results`` rows; returns ``{sketch-cell-key: ratio}``.
    """
    rows = [
        r.to_json_dict() if hasattr(r, "to_json_dict") else r
        for r in records_or_rows
    ]
    cost = {
        row["key"]: float(row["seconds"]) + float(row.get("plan_seconds", 0.0))
        for row in rows
    }
    ratios: dict[str, float] = {}
    for row in rows:
        if row["algorithm"] != sketch:
            continue
        key = row["key"]
        exact_key = key.replace(f"/{sketch}/", f"/{exact}/")
        if exact_key not in cost or exact_key == key:
            continue
        sketch_cost = cost[key]
        ratios[key] = (
            float("inf")
            if sketch_cost == 0
            else cost[exact_key] / sketch_cost
        )
    return ratios


def sketch_error(
    records_or_rows: Sequence[Any],
    *,
    exact: str = "G_All",
    sketch: str = "G_All_sketch",
) -> dict[str, float]:
    """Per-cell objective ratio ``F(sketch prefix) / F(exact prefix)``.

    Both objectives come from the harness's exact score phase, so the
    ratio measures *selection* quality — how much objective the
    estimator-driven prefix gives up against exact greedy — not
    estimator noise.  Cells without an exact twin (the rungs exact
    cannot run) and estimator-scored cells (``/est`` keys, whose
    recorded objective is itself an estimate) are skipped: this
    comparator only ever compares exactly-scored numbers.  The
    acceptance bar for the ``scale`` suite is a ratio ≥ ``1 − ε`` at
    the default sketch resolution on every cell where exact is
    available.

    Accepts :class:`~repro.bench.results.BenchRecord` objects or raw
    ``results`` rows; returns ``{sketch-cell-key: ratio}``.
    """
    rows = [
        r.to_json_dict() if hasattr(r, "to_json_dict") else r
        for r in records_or_rows
    ]
    objectives = {row["key"]: row["objective"] for row in rows}
    ratios: dict[str, float] = {}
    for row in rows:
        if row["algorithm"] != sketch or "/est" in row["key"]:
            continue
        key = row["key"]
        exact_key = key.replace(f"/{sketch}/", f"/{exact}/")
        if exact_key not in objectives or exact_key == key:
            continue
        exact_objective = objectives[exact_key]
        if exact_objective <= 0:
            continue
        ratios[key] = objectives[key] / exact_objective
    return ratios


def warm_speedup(
    prior: Any,
    current: Any,
    *,
    min_plan_seconds: float = DEFAULT_MIN_SECONDS,
) -> dict[str, float]:
    """Per-cell plan-cost ratio ``prior / current`` across two runs.

    Unlike the single-document comparators above, this one matches cells
    *between* a prior and a current document (each a ``BENCH.json`` dict
    or a sequence of records/rows) by scenario key and divides their
    ``plan_seconds`` — the column carrying the one-time warm cost the
    ``warm`` and ``scale`` suites attribute via ``fresh_backend``.  A
    ratio ≫ 1 means the warm got cheaper; the blocked reachability
    sweep's acceptance bar is ≥ 10 on the ``scale-dag`` n=5·10^4 cell
    against the pre-blocked baseline.  Cells whose prior plan cost is
    below ``min_plan_seconds`` are skipped — there is no warm wall to
    measure a cut of.

    Returns ``{cell-key: prior_plan_seconds / current_plan_seconds}``.
    """

    def _plans(doc: Any) -> dict[str, float]:
        rows = doc["results"] if isinstance(doc, dict) else [
            r.to_json_dict() if hasattr(r, "to_json_dict") else r
            for r in doc
        ]
        return {
            row["key"]: float(row.get("plan_seconds", 0.0)) for row in rows
        }

    prior_plans = _plans(prior)
    current_plans = _plans(current)
    ratios: dict[str, float] = {}
    for key in sorted(set(prior_plans) & set(current_plans)):
        before = prior_plans[key]
        if before < min_plan_seconds:
            continue
        after = current_plans[key]
        ratios[key] = float("inf") if after == 0 else before / after
    return ratios


def summarize_speedups(
    records_or_rows: Sequence[Any],
    *,
    baseline: str = "python",
) -> dict[str, float]:
    """Per-cell speedup of every non-baseline backend vs ``baseline``.

    Accepts either :class:`~repro.bench.results.BenchRecord` objects or
    raw ``results`` rows; returns ``{cell-key-sans-backend: speedup}``.
    """
    rows = [
        r.to_json_dict() if hasattr(r, "to_json_dict") else r
        for r in records_or_rows
    ]
    base: dict[str, float] = {}
    others: dict[str, float] = {}
    for row in rows:
        stem, _, backend = row["key"].rpartition("/")
        if backend == baseline:
            base[stem] = float(row["seconds"])
        else:
            others[f"{stem}/{backend}"] = float(row["seconds"])
    speedups: dict[str, float] = {}
    for key, seconds in others.items():
        stem = key.rpartition("/")[0]
        if stem in base and seconds > 0:
            speedups[key] = base[stem] / seconds
    return speedups
