"""Benchmark records and the ``BENCH.json`` interchange format.

One :class:`BenchRecord` per scenario cell; a document is::

    {
      "schema_version": 1,
      "meta": {"suite": ..., "created_unix": ..., "python": ..., ...},
      "results": [
        {
          "key": "citation@default/seed0/G_All/k10/numpy",
          "dataset": ..., "scale": ..., "seed": ..., "algorithm": ...,
          "k": ..., "backend": ..., "mode": ..., "nodes": ..., "edges": ...,
          "seconds": ..., "repeats": ...,
          "plan_seconds": ...,   # one-time plan/compile cost, never in seconds
          "phases": {"plan": ..., "solve": ..., "repeat_overhead": ...,
                     "score": ...},   # sums to wall_seconds
          "wall_seconds": ...,   # total in-harness wall-clock of the cell
          "evaluations": {"marginal_gains": 10, ...},
          "filters": ["'chain_0'", ...],     # repr()'d node ids
          "filters_found": ..., "objective": ..., "filter_ratio": ...
        }, ...
      ]
    }

``seconds`` is pure solve wall-clock: every cell's per-graph plan work
(the shared :class:`~repro.graphs.compiled.CompiledGraph` build plus any
backend adapter) happens before the timed region and is reported
separately in ``plan_seconds``.  Cells of the ``compile`` suite
(``mode = "compile"``) time *only* the plan build — there ``seconds ==
plan_seconds`` and ``evaluations["compiled_bytes"]`` records the
compiled tables' memory.

``BENCH.json`` at the repo root is the cross-PR trajectory file: each PR
re-runs the default suite and the comparator (:mod:`repro.bench.compare`)
diffs against the committed prior, so perf regressions and result drift
(changed filter sets on deterministic algorithms) surface in review.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.bench.scenarios import BenchScenario

#: Version of the document layout; bump on incompatible change.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BenchRecord:
    """Measurements for one scenario cell."""

    scenario: BenchScenario
    nodes: int
    edges: int
    seconds: float
    repeats: int
    #: One-time per-graph plan/compile cost paid outside the timed solve
    #: region (shared CompiledGraph build + backend plan adapter).
    plan_seconds: float = 0.0
    #: Wall-clock per harness phase — a true decomposition of the cell's
    #: in-harness wall-clock ``wall_seconds``: ``plan`` (in-cell plan
    #: work only — the amortized per-graph compile lives in
    #: ``plan_seconds``, which is ``phases["plan"] + compile share``),
    #: ``solve`` (the best-of-repeats timed region, == ``seconds``),
    #: ``repeat_overhead`` (the non-best repeats, present only when
    #: ``repeats > 1``) and ``score`` (the objective/FR pass).  The
    #: phases sum to ``wall_seconds`` within scheduling tolerance —
    #: a regression test holds the harness to it.  Optional: absent in
    #: pre-obs documents, and the comparator ignores it.
    phases: dict[str, float] = field(default_factory=dict)
    #: The cell's total in-harness wall-clock (every phase, including
    #: all ``repeats``).  0.0 in documents written before the field
    #: existed.
    wall_seconds: float = 0.0
    evaluations: dict[str, int] = field(default_factory=dict)
    filters: tuple[str, ...] = ()  # repr()'d node ids, selection order
    filters_found: int = 0
    objective: int = 0
    filter_ratio: float = 0.0

    def to_json_dict(self) -> dict[str, Any]:
        """The record as one ``results[]`` row of the BENCH.json schema."""
        doc = asdict(self)
        scenario = doc.pop("scenario")
        doc["filters"] = list(self.filters)
        return {"key": self.scenario.key(), **scenario, **doc}


def build_document(
    records: list[BenchRecord],
    *,
    meta: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the ``BENCH.json`` document for ``records``."""
    full_meta: dict[str, Any] = {
        "created_unix": round(time.time(), 3),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
    }
    if meta:
        full_meta.update(meta)
    return {
        "schema_version": SCHEMA_VERSION,
        "meta": full_meta,
        "results": [r.to_json_dict() for r in records],
    }


_REQUIRED_RESULT_FIELDS = (
    "key",
    "dataset",
    "algorithm",
    "k",
    "backend",
    "nodes",
    "edges",
    "seconds",
    "evaluations",
    "filters",
    "filter_ratio",
)


def validate_document(doc: Any) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed bench document."""
    if not isinstance(doc, dict):
        raise ValueError("bench document must be a JSON object")
    if doc.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema_version {doc.get('schema_version')!r}; "
            f"expected {SCHEMA_VERSION}"
        )
    results = doc.get("results")
    if not isinstance(results, list):
        raise ValueError("bench document must carry a 'results' list")
    for i, row in enumerate(results):
        if not isinstance(row, dict):
            raise ValueError(f"results[{i}] is not an object")
        missing = [f for f in _REQUIRED_RESULT_FIELDS if f not in row]
        if missing:
            raise ValueError(f"results[{i}] is missing fields: {missing}")
        if not isinstance(row["seconds"], (int, float)) or row["seconds"] < 0:
            raise ValueError(f"results[{i}].seconds must be non-negative")


def write_document(path: str, doc: dict[str, Any]) -> None:
    """Validate, then write an already-built document to ``path``."""
    validate_document(doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")


def write_bench_json(
    path: str,
    records: list[BenchRecord],
    *,
    meta: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Build, validate and write the document for ``records`` to ``path``."""
    doc = build_document(records, meta=meta)
    write_document(path, doc)
    return doc


def load_bench_json(path: str) -> dict[str, Any]:
    """Load and validate a bench document from ``path``."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    validate_document(doc)
    return doc
