"""Benchmarking the serving path: cold-miss vs cached-hit latency.

The algorithm suites time ``algorithm.place`` directly; these cells time
the *request* — everything :meth:`repro.service.app.ServiceApp.place_sync`
does between receiving a placement body and returning the response dict:

* ``service_cold`` — an empty placement cache, so the request pays job
  submission, the full placement computation, payload serialization and
  the cache insert.  Each repeat swaps in a fresh cache; graph
  registration, backend warming and the per-graph ``Φ`` constants are
  one-time costs paid outside the timed region (exactly as they are in a
  long-lived service).
* ``service_hit`` — the same request against a warm cache: validation,
  key resolution and an LRU lookup.  This is the latency every repeat
  customer of a placement sees, and the number the ≥50× acceptance bar
  compares against the cold cell.

Both cells return ordinary :class:`~repro.bench.results.BenchRecord`\\ s
(filters, objective, FR read from the response payload), so the
comparator, the BENCH.json schema and the CLI table need no special
cases beyond the ``/cold`` / ``/hit`` key suffix.
"""

from __future__ import annotations

import time

from repro.bench.results import BenchRecord
from repro.bench.scenarios import BenchScenario
from repro.exceptions import ParameterError
from repro.graphs.cgraph import CGraph

#: Timed hit requests per repeat (hits are microseconds; a small inner
#: population makes best-of robust without inflating suite runtime).
HIT_REQUESTS_PER_REPEAT = 20


def run_service_scenario(
    scenario: BenchScenario,
    *,
    graph: CGraph | None = None,
    repeats: int = 1,
    phi_constants: tuple[int, int] | None = None,
    compile_seconds: float | None = None,
) -> BenchRecord:
    """Measure one ``service_cold`` / ``service_hit`` cell.

    Mirrors :func:`repro.bench.harness.run_scenario`'s contract (same
    parameters, same best-of-``repeats`` seconds semantics) so the
    harness can dispatch on ``scenario.mode`` and treat the record
    uniformly.  ``compile_seconds`` (the graph's one-time compile cost)
    is carried into the record's ``plan_seconds`` — registration warms
    exactly that one shared plan.
    """
    from repro.bench.harness import _load_graph
    from repro.service.app import ServiceApp
    from repro.service.cache import PlacementCache

    if repeats <= 0:
        raise ParameterError("repeats must be positive")
    if scenario.mode not in ("service_cold", "service_hit"):
        raise ParameterError(
            f"not a service scenario mode: {scenario.mode!r}"
        )
    if graph is None:
        graph = _load_graph(scenario)

    app = ServiceApp(workers=1)
    try:
        entry, _ = app.store.register_graph(
            graph,
            name=scenario.key(),
            spec={
                "kind": "dataset",
                "dataset": scenario.dataset,
                "seed": scenario.seed,
                "scale": scenario.scale,
            },
        )
        if phi_constants is not None:
            entry.prime_phi_constants(phi_constants)
        else:
            entry.phi_constants()
        body = {
            "graph": entry.digest,
            "algorithm": scenario.algorithm,
            "strategy": "exact",
            "backend": scenario.backend,
            "k": scenario.k,
        }

        best = float("inf")
        total = 0.0
        payload = None
        if scenario.mode == "service_cold":
            for _ in range(repeats):
                app.cache = PlacementCache()  # every repeat misses
                start = time.perf_counter()
                status, doc = app.place_sync(body)
                elapsed = time.perf_counter() - start
                _check_response(status, doc)
                payload = doc["result"]
                total += elapsed
                best = min(best, elapsed)
            requests = repeats
        else:
            app.place_sync(body)  # prime the cache, untimed
            requests = repeats * HIT_REQUESTS_PER_REPEAT
            for _ in range(requests):
                start = time.perf_counter()
                status, doc = app.handle_placement(body)
                elapsed = time.perf_counter() - start
                _check_response(status, doc, expect_hit=True)
                payload = doc["result"]
                total += elapsed
                best = min(best, elapsed)
    finally:
        app.close()
    assert payload is not None  # repeats >= 1

    # Cache swaps and response checks between requests are untimed, so
    # the cell's wall-clock is the sum of the timed requests only.
    phases = {"solve": best}
    if total > best:
        phases["repeat_overhead"] = total - best
    return BenchRecord(
        scenario=scenario,
        nodes=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        seconds=best,
        repeats=repeats,
        plan_seconds=compile_seconds or 0.0,
        phases=phases,
        wall_seconds=total,
        evaluations={"requests": requests},
        filters=tuple(payload["filters"]),
        filters_found=payload["filters_found"],
        objective=payload["objective"],
        filter_ratio=payload["filter_ratio"],
    )


def _check_response(status, doc, *, expect_hit: bool = False) -> None:
    if status != 200:
        raise ParameterError(
            f"service bench request failed with {status}: {doc}"
        )
    if expect_hit and not doc["cache"]["hit"]:
        raise ParameterError(
            "service bench expected a cache hit but the request missed"
        )
