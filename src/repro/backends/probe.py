"""The shared overflow probe: bound in, narrowest safe representation out.

Every accelerated path in the repo faces the same question before it
commits to a fixed-width kernel: *can the numbers this sweep produces
exceed what the dtype holds?*  Historically each call site answered it
with its own copy of the same comparison against ``2**62``; this module
promotes that pattern into one "probe once, pick the narrowest safe
dtype/representation" helper so the numpy plan probe, the sampled-state
builder, and the bit-packed aggregate sweeps all walk the same ladder:

``int32`` → ``int64`` → ``exact``

* ``int32`` — bounds comfortably below ``2**30``; half the memory
  traffic of int64, which matters for the batched ``(trials, n)``
  sampled blocks.
* ``int64`` — bounds below ``2**62``.  The limit is two bits shy of the
  type's true ceiling so a whole *level's* worth of gather-adds (sums of
  values each ≤ the bound) still cannot wrap.
* ``exact`` — anything else, including non-finite bounds from a float64
  probe that itself overflowed.  "Exact" always means the same thing:
  delegate to the pure-python engine, whose big ints are unbounded.

The probe itself runs in float64 (see
``repro.backends.numpy_backend._probe_overflow``): float64 is exact for
integers up to ``2**53`` and monotonically *over*-approximates beyond,
so a finite probe value below the limit proves the true integer result
fits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Bounds at or above this (or non-finite) force the exact big-int
#: representation.  ``2**62`` leaves two bits of slack under int64 so a
#: per-level gather-add of in-range values cannot wrap.
OVERFLOW_LIMIT = float(2**62)

#: Bounds strictly below this fit int32 with the same two bits of
#: gather-add slack under ``2**31``.
NARROW_LIMIT = float(2**30)

#: The representation ladder, widest-compatibility last.
REPRESENTATIONS: tuple[str, ...] = ("int32", "int64", "exact")


@dataclass(frozen=True)
class ProbeVerdict:
    """The outcome of one overflow probe.

    ``representation`` is one of :data:`REPRESENTATIONS`; ``bound`` is
    the largest (finite or not) magnitude the probe saw, kept for
    diagnostics and for callers that refine the verdict with extra
    multipliers (e.g. a trial count) before acting on it.
    """

    representation: str
    bound: float

    @property
    def exact_only(self) -> bool:
        """True when only the big-int python engine is safe."""
        return self.representation == "exact"

    @property
    def narrow(self) -> bool:
        """True when the int32 half-width representation is safe."""
        return self.representation == "int32"


def pick_representation(
    *bounds: float,
    limit: float = OVERFLOW_LIMIT,
    narrow_limit: float = NARROW_LIMIT,
) -> ProbeVerdict:
    """Pick the narrowest safe representation for values bounded by
    ``max(bounds)``.

    Any non-finite bound (a float64 probe that itself overflowed, or a
    NaN from ``inf - inf`` arithmetic inside one) is conclusive evidence
    the fixed-width ladder is unsafe and yields ``exact``.  An empty
    ``bounds`` means nothing can overflow: ``int32`` with bound 0.
    """
    worst = 0.0
    for bound in bounds:
        if math.isnan(bound):
            return ProbeVerdict("exact", float("nan"))
        worst = max(worst, float(bound))
    if not math.isfinite(worst) or worst >= limit:
        return ProbeVerdict("exact", worst)
    if worst < narrow_limit:
        return ProbeVerdict("int32", worst)
    return ProbeVerdict("int64", worst)
