"""Backend registry: name-based lookup and the process-wide default.

Selection surface, smallest to largest scope:

* explicit argument — ``phi(graph, A, backend="numpy")`` or a backend
  instance (the bench harness passes a counting wrapper this way);
* :func:`use_backend` — a context manager scoping a default to one block;
* :func:`set_default_backend` — the process default, which the CLI's
  ``--backend`` flag sets before dispatching a command.

``"auto"`` (the initial default) resolves to the NumPy backend when
:mod:`numpy` is importable and to the exact Python backend otherwise, so
library users get the fast path for free while environments without NumPy
keep working unchanged.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager

from repro.backends.base import PropagationBackend
from repro.backends.numpy_backend import NumpyBackend, numpy_available
from repro.backends.python_backend import PythonBackend
from repro.exceptions import ParameterError
from repro.scoping import ScopedDefault

#: Every name accepted by ``get_backend`` / the CLI ``--backend`` flag.
BACKEND_NAMES: tuple[str, ...] = ("python", "numpy", "auto")

_instances: dict[str, PropagationBackend] = {}

# ``use_backend`` scopes are per-thread: the service runs concurrent jobs
# with different backends on one worker pool, and a process-wide scope
# would let one request's backend leak into another's timed region.
_default: ScopedDefault[str | PropagationBackend] = ScopedDefault("auto")


def available_backends() -> tuple[str, ...]:
    """Concrete backend names usable in this environment."""
    return ("python", "numpy") if numpy_available() else ("python",)


def get_backend(name: str) -> PropagationBackend:
    """The singleton backend registered under ``name``.

    ``"auto"`` picks the fastest available backend.  Raises
    :class:`~repro.exceptions.ParameterError` for unknown names or for
    ``"numpy"`` when NumPy is not installed.
    """
    if name == "auto":
        name = "numpy" if numpy_available() else "python"
    if name not in ("python", "numpy"):
        known = ", ".join(BACKEND_NAMES)
        raise ParameterError(
            f"unknown backend {name!r}; known backends: {known}"
        )
    instance = _instances.get(name)
    if instance is None:
        if name == "numpy":
            if not numpy_available():
                raise ParameterError(
                    "backend 'numpy' requested but numpy is not installed; "
                    "use --backend python (or auto)"
                )
            instance = NumpyBackend()
        else:
            instance = PythonBackend()
        _instances[name] = instance
    return instance


def build_backend(name: str, *, tier: str = "bitpack") -> PropagationBackend:
    """A fresh backend instance pinned to a sweep tier.

    Unlike :func:`get_backend` this never touches the singleton table —
    the registry's shared instances stay on the default tier, while
    tier-pinned callers (the bench's ``/tier-lanes`` cells, the fuzz
    harness's differential pairs) get their own instance.
    """
    if name == "auto":
        name = "numpy" if numpy_available() else "python"
    if name == "numpy":
        if not numpy_available():
            raise ParameterError(
                "backend 'numpy' requested but numpy is not installed; "
                "use backend 'python' (or 'auto')"
            )
        return NumpyBackend(tier=tier)
    if name == "python":
        return PythonBackend(tier=tier)
    known = ", ".join(BACKEND_NAMES)
    raise ParameterError(f"unknown backend {name!r}; known backends: {known}")


def resolve_backend(
    spec: str | PropagationBackend | None,
) -> PropagationBackend:
    """Turn a backend spec (name, instance, or None=default) into an instance.

    The default is the innermost :func:`use_backend` scope on the calling
    thread, falling back to the process-wide default.
    """
    if spec is None:
        spec = _default.get()
    if isinstance(spec, str):
        return get_backend(spec)
    return spec


def get_default_backend() -> PropagationBackend:
    """The backend used when no explicit one is supplied."""
    return resolve_backend(None)


def set_default_backend(spec: str | PropagationBackend) -> None:
    """Set the process-wide default backend (a name or an instance)."""
    if isinstance(spec, str) and spec not in BACKEND_NAMES:
        known = ", ".join(BACKEND_NAMES)
        raise ParameterError(
            f"unknown backend {spec!r}; known backends: {known}"
        )
    _default.set_global(spec)


@contextmanager
def use_backend(spec: str | PropagationBackend) -> Iterator[PropagationBackend]:
    """Scope the default backend to a ``with`` block, on this thread only.

    Yields the resolved instance so callers can also query it directly
    (the bench harness reads evaluation counters off its wrapper this way).
    Scopes nest, and being thread-local they cannot bleed between the
    service's concurrent placement jobs.
    """
    if isinstance(spec, str) and spec not in BACKEND_NAMES:
        known = ", ".join(BACKEND_NAMES)
        raise ParameterError(
            f"unknown backend {spec!r}; known backends: {known}"
        )
    with _default.scoped(spec):
        yield resolve_backend(spec)
